//! Offline stand-in for `serde_json`.
//!
//! Text encoding/decoding for the shim `serde` crate's [`Value`] model:
//! [`to_string`] / [`to_string_pretty`] / [`to_vec`] render, [`from_str`]
//! / [`from_slice`] parse. The grammar is standard JSON; integers wide
//! enough for `u64`/`i64` round-trip exactly.

// Vendored shim: exempt from the workspace unwrap/expect ban
// (clippy.toml), which targets diversify-des/diversify-core.
#![allow(clippy::disallowed_methods)]
pub use serde::{Error, Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Result alias matching upstream `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Never fails in this shim (kept fallible to match upstream's signature).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON text (two-space indent).
///
/// # Errors
///
/// Never fails in this shim (kept fallible to match upstream's signature).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
///
/// # Errors
///
/// Never fails in this shim (kept fallible to match upstream's signature).
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_json_value(&value)
}

/// Parses a value from JSON bytes.
///
/// # Errors
///
/// Returns [`Error`] on invalid UTF-8, malformed JSON, or a shape
/// mismatch with `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error::custom("invalid UTF-8"))?;
    from_str(s)
}

// -------------------------------------------------------------- rendering

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            indent,
            depth,
            ('[', ']'),
            |out, item, ind, d| {
                write_value(out, item, ind, d);
            },
        ),
        Value::Object(pairs) => write_seq(
            out,
            pairs.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, val), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, val, ind, d);
            },
        ),
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    delims: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, Option<usize>, usize),
{
    out.push(delims.0);
    let len = items.len();
    if len == 0 {
        out.push(delims.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(delims.1);
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F(v) => {
            if v.is_finite() {
                if v == v.trunc() && v.abs() < 1e15 {
                    // Keep a trailing `.0` so the value re-parses as float-y
                    // but stays readable.
                    let _ = write!(out, "{v:.1}");
                } else {
                    let _ = write!(out, "{v}");
                }
            } else {
                // Upstream serde_json errors on non-finite floats; emitting
                // null keeps rendering infallible and matches what readers
                // of the artifacts expect.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom("invalid keyword"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom("invalid keyword"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom("invalid keyword"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full character.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        let number = if is_float {
            Number::F(
                text.parse::<f64>()
                    .map_err(|_| Error::custom("invalid number"))?,
            )
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(v) => Number::I(v),
                Err(_) => Number::F(
                    text.parse::<f64>()
                        .map_err(|_| Error::custom("invalid number"))?,
                ),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Number::U(v),
                Err(_) => Number::F(
                    text.parse::<f64>()
                        .map_err(|_| Error::custom("invalid number"))?,
                ),
            }
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string("hi\n\"x\"").unwrap(), "\"hi\\n\\\"x\\\"\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<String>("\"a\\u0041b\"").unwrap(), "aAb");
    }

    #[test]
    fn u64_round_trip_exact() {
        let big: u64 = u64::MAX - 3;
        let text = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&text).unwrap(), big);
    }

    #[test]
    fn vec_round_trip() {
        let xs = vec![1u16, 2, 65535];
        let text = to_string(&xs).unwrap();
        assert_eq!(text, "[1,2,65535]");
        assert_eq!(from_str::<Vec<u16>>(&text).unwrap(), xs);
    }

    #[test]
    fn pretty_format_shape() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Number(Number::U(7))),
            (
                "b".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"a\": 7"), "{text}");
        assert!(text.contains("[\n"), "{text}");
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_slice::<Value>(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn nested_value_round_trip() {
        let text = r#"{"name":"x","xs":[1,2.5,null,{"k":true}]}"#;
        let v: Value = from_str(text).unwrap();
        let rendered = to_string(&v).unwrap();
        let back: Value = from_str(&rendered).unwrap();
        assert_eq!(v, back);
    }
}
