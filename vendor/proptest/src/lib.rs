//! Offline stand-in for `proptest`.
//!
//! Deterministic randomized property testing with the API surface this
//! workspace uses: the [`proptest!`] macro, [`Strategy`] with
//! [`Strategy::prop_map`], range and `any::<T>()` strategies, tuple
//! strategies, [`collection::vec`], [`prop_oneof!`] and
//! [`ProptestConfig::with_cases`]. Failing cases panic with the case
//! number; there is no shrinking. Case seeds are derived from the test
//! name, so runs are reproducible.

// Vendored shim: exempt from the workspace unwrap/expect ban
// (clippy.toml), which targets diversify-des/diversify-core.
#![allow(clippy::disallowed_methods)]
use std::ops::{Range, RangeInclusive};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for one test case, seeded from the test name and
    /// case index so reruns are reproducible.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform draw in `0..n`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy for use in heterogeneous lists ([`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Uniform choice among boxed strategies (the [`prop_oneof!`] backend).
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> std::fmt::Debug for OneOf<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OneOf({} options)", self.options.len())
    }
}

impl<V> OneOf<V> {
    /// Creates a uniform choice among `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Occasionally emit the exact endpoints, which ranges never would.
        match rng.below(64) {
            0 => lo,
            1 => hi,
            _ => lo + rng.unit_f64() * (hi - lo),
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type for `any::<Self>()`.
    type Strategy: Strategy<Value = Self>;
    /// The full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The strategy behind `any::<T>()`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Generates any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;
    fn arbitrary() -> Any<bool> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Sizes accepted by [`vec()`]: a fixed length or a length range.
    pub trait IntoSize {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSize for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSize for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// A strategy producing vectors of `element` with lengths in `size`.
    #[derive(Debug)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy, Z: IntoSize>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: IntoSize> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test body needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, boxed, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        OneOf, ProptestConfig, Strategy, TestRng,
    };

    /// Path alias so `prop::collection::vec(..)` resolves like upstream.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+); };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+); };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($strategy)),+])
    };
}

/// Declares property tests: each `name in strategy` argument is drawn
/// fresh for every case, and the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u16..19, y in 0.5f64..=2.0, k in 1usize..5) {
            prop_assert!((3..19).contains(&x));
            prop_assert!((0.5..=2.0).contains(&y));
            prop_assert!((1..5).contains(&k));
        }

        #[test]
        fn tuples_and_vecs(pair in (0u16..10, any::<bool>()), xs in collection::vec(0u8..4, 1..6)) {
            prop_assert!(pair.0 < 10);
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            prop_assert!(xs.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_covers_options(v in prop_oneof![(0u32..1).prop_map(|_| 1u32), (0u32..1).prop_map(|_| 2u32)]) {
            prop_assert!(v == 1 || v == 2);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
