//! Offline stand-in for `rayon`.
//!
//! The build environment has no network access, so this workspace vendors
//! the subset of the rayon API its members use: `into_par_iter()` on
//! ranges and vectors, `map`, `for_each`, `sum` and `collect` into a
//! `Vec`. Execution is genuinely parallel: items are claimed from an
//! atomic work counter by `available_parallelism()` scoped threads
//! (dynamic scheduling, so uneven per-item cost still load-balances), and
//! results are written back by index so output order — and therefore
//! every deterministic aggregation downstream — is identical to the
//! serial order.

// Vendored shim: exempt from the workspace unwrap/expect ban
// (clippy.toml), which targets diversify-des/diversify-core.
#![allow(clippy::disallowed_methods)]
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads a parallel operation will use: the
/// `RAYON_NUM_THREADS` environment variable if set (like upstream
/// rayon), otherwise `available_parallelism()`.
#[must_use]
pub fn current_num_threads() -> usize {
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// How many chunks each worker gets on average. More chunks → better
/// load balance for uneven work; fewer → less synchronization. Eight is
/// rayon's own adaptive-splitting ballpark.
const CHUNKS_PER_WORKER: usize = 8;

/// Maps `f` over `items` on multiple threads, preserving input order in
/// the output.
///
/// Work is claimed at *chunk* granularity from an atomic counter
/// (dynamic scheduling, so uneven per-item cost still load-balances)
/// and synchronization is two lock round-trips per chunk — not per
/// item — so fine-grained tasks (e.g. a handful of RNG draws per
/// replication) keep their parallel speedup.
fn parallel_map<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = n.div_ceil(workers * CHUNKS_PER_WORKER).max(1);
    let mut items = items;
    let mut input: Vec<Mutex<Option<Vec<T>>>> = Vec::with_capacity(n.div_ceil(chunk_size));
    while !items.is_empty() {
        let tail = items.split_off(items.len().saturating_sub(chunk_size));
        input.push(Mutex::new(Some(tail)));
    }
    // split_off takes from the back, so chunks were pushed in reverse.
    input.reverse();
    let chunks = input.len();
    let output: Vec<Mutex<Option<Vec<U>>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= chunks {
                    break;
                }
                let chunk = input[c]
                    .lock()
                    .expect("input chunk poisoned")
                    .take()
                    .expect("chunk claimed twice");
                let mapped: Vec<U> = chunk.into_iter().map(f).collect();
                *output[c].lock().expect("output chunk poisoned") = Some(mapped);
            });
        }
    });
    let mut out = Vec::with_capacity(n);
    for slot in output {
        out.extend(
            slot.into_inner()
                .expect("output chunk poisoned")
                .expect("missing chunk result"),
        );
    }
    out
}

/// A parallel iterator pipeline. All sources materialize their items, so
/// this is suitable for the coarse-grained Monte-Carlo workloads in this
/// workspace, not for huge lazy streams.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;

    /// Executes the pipeline, returning items in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps each item through `f` in parallel.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collects the results.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Runs `f` on every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _ = self.map(f).run();
    }

    /// Sums the items.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.run().into_iter().sum()
    }
}

/// Conversion into a [`ParallelIterator`], mirroring rayon's trait.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Collection from a parallel iterator, mirroring rayon's trait.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection from the pipeline.
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self {
        iter.run()
    }
}

/// A materialized parallel source.
#[derive(Debug)]
pub struct IterBridge<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IterBridge<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

/// The result of [`ParallelIterator::map`].
#[derive(Debug)]
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    U: Send,
    F: Fn(P::Item) -> U + Sync + Send,
{
    type Item = U;

    fn run(self) -> Vec<U> {
        parallel_map(self.base.run(), &self.f)
    }
}

macro_rules! range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = IterBridge<$t>;
            fn into_par_iter(self) -> IterBridge<$t> {
                IterBridge { items: self.collect() }
            }
        }
    )*};
}

range_into_par_iter!(u8, u16, u32, u64, usize, i32, i64);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IterBridge<T>;
    fn into_par_iter(self) -> IterBridge<T> {
        IterBridge { items: self }
    }
}

/// The rayon prelude: everything needed for `into_par_iter` pipelines.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * i).collect();
        let expected: Vec<u64> = (0u64..1000).map(|i| i * i).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn vec_source() {
        let v = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn sum_matches_serial() {
        let total: u64 = (0u64..10_000).into_par_iter().sum();
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = (0u32..0).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn multithreaded_path_preserves_order() {
        // Force real worker threads even on single-core machines so the
        // scheduling path is exercised, not just the serial fallback.
        std::env::set_var("RAYON_NUM_THREADS", "4");
        let out: Vec<u64> = (0u64..500).into_par_iter().map(|i| i * 3).collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(out, (0u64..500).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_load_balances() {
        // Items with wildly different cost still come back in order.
        let out: Vec<u64> = (0u64..64)
            .into_par_iter()
            .map(|i| {
                let spins = if i % 7 == 0 { 100_000 } else { 10 };
                let mut acc = i;
                for _ in 0..spins {
                    acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                }
                std::hint::black_box(acc);
                i
            })
            .collect();
        assert_eq!(out, (0u64..64).collect::<Vec<_>>());
    }
}
