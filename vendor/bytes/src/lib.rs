//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset the workspace's protocol codec uses: a growable
//! [`BytesMut`] write buffer implementing [`BufMut`], and a [`Buf`] read
//! cursor implemented for `&[u8]`. Multi-byte integers are big-endian,
//! matching the upstream crate (and the Modbus wire convention the codec
//! mirrors).

// Vendored shim: exempt from the workspace unwrap/expect ban
// (clippy.toml), which targets diversify-des/diversify-core.
#![allow(clippy::disallowed_methods)]
use std::ops::{Deref, DerefMut};

/// Read cursor over a byte source.
///
/// # Panics
///
/// Like upstream `bytes`, the `get_*` and `advance` methods panic when the
/// buffer has fewer bytes than requested; callers bounds-check with
/// [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Advances the cursor by `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16;

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32;

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        assert!(!self.is_empty(), "get_u8 on empty buffer");
        let b = self[0];
        *self = &self[1..];
        b
    }

    fn get_u16(&mut self) -> u16 {
        assert!(self.len() >= 2, "get_u16 past end of buffer");
        let v = u16::from_be_bytes([self[0], self[1]]);
        *self = &self[2..];
        v
    }

    fn get_u32(&mut self) -> u32 {
        assert!(self.len() >= 4, "get_u32 past end of buffer");
        let v = u32::from_be_bytes([self[0], self[1], self[2], self[3]]);
        *self = &self[4..];
        v
    }
}

/// Write sink for byte data.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);

    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// A growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// The number of bytes written.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a plain `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Consumes the buffer, returning the underlying `Vec<u8>`.
    #[must_use]
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut w = BytesMut::with_capacity(8);
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_slice(&[1, 2, 3]);
        let bytes = w.to_vec();
        let mut r: &[u8] = &bytes;
        assert_eq!(r.remaining(), 10);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        r.advance(1);
        assert_eq!(r, &[2, 3]);
    }

    #[test]
    fn big_endian_layout() {
        let mut w = BytesMut::new();
        w.put_u16(0x0102);
        assert_eq!(w.to_vec(), vec![0x01, 0x02]);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn get_u16_on_short_buffer_panics() {
        let mut r: &[u8] = &[1];
        let _ = r.get_u16();
    }
}
