//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the shim `serde` crate's `Value` data model, using only the compiler's
//! built-in `proc_macro` token API (the real `syn`/`quote` stack is not
//! available offline).
//!
//! Supported item shapes — exactly what this workspace defines:
//!
//! * non-generic structs with named fields (`#[serde(skip)]` honored:
//!   skipped on serialize, filled from `Default` on deserialize);
//! * non-generic tuple structs (serialized as arrays);
//! * non-generic enums with unit, tuple and struct variants, using
//!   upstream serde's externally-tagged representation: `"Variant"`,
//!   `{"Variant": payload}`, `{"Variant": {..fields..}}`.
//!
//! Generics and lifetimes are rejected with a compile error.

// Vendored shim: exempt from the workspace unwrap/expect ban
// (clippy.toml), which targets diversify-des/diversify-core.
#![allow(clippy::disallowed_methods)]
use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate(&item)
            .parse()
            .expect("serde_derive shim generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error is valid Rust"),
    }
}

// ---------------------------------------------------------------- parsing

/// Consumes leading `#[...]` attributes, reporting whether any of them is
/// `#[serde(skip)]`.
fn take_attrs(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut skip = false;
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let mut inner = g.stream().into_iter();
                if let Some(TokenTree::Ident(tag)) = inner.next() {
                    if tag.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.next() {
                            let text = args.stream().to_string();
                            if text.split(',').any(|part| part.trim() == "skip") {
                                skip = true;
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    skip
}

/// Consumes an optional visibility qualifier (`pub`, `pub(crate)`, ...).
fn take_vis(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

/// Skips type tokens until a top-level comma (tracking `<`/`>` depth so
/// commas inside generics don't split fields). Consumes the comma.
fn skip_type(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut angle_depth: i32 = 0;
    for tree in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Parses the fields of a named-field body (`{ ... }`).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let skip = take_attrs(&mut tokens);
        take_vis(&mut tokens);
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(name) = tree else {
            return Err(format!("expected field name, found `{tree}`"));
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        skip_type(&mut tokens);
        fields.push(Field {
            name: name.to_string(),
            skip,
        });
    }
    Ok(fields)
}

/// Counts the fields of a tuple body (`( ... )`).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth: i32 = 0;
    let mut commas = 0usize;
    let mut saw_any = false;
    let mut tail_tokens = false;
    for tree in stream {
        saw_any = true;
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    commas += 1;
                    tail_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        tail_tokens = true;
    }
    if !saw_any {
        0
    } else if tail_tokens {
        commas + 1
    } else {
        commas // trailing comma
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        take_attrs(&mut tokens);
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(name) = tree else {
            return Err(format!("expected variant name, found `{tree}`"));
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(count)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                tokens.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        let mut angle_depth: i32 = 0;
        while let Some(tree) = tokens.peek() {
            if let TokenTree::Punct(p) = tree {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        tokens.next();
                        break;
                    }
                    _ => {}
                }
            }
            tokens.next();
        }
        variants.push(Variant {
            name: name.to_string(),
            kind,
        });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    take_attrs(&mut tokens);
    take_vis(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }
    match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                shape: Shape::NamedStruct(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item {
                name,
                shape: Shape::TupleStruct(count_tuple_fields(g.stream())),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
                name,
                shape: Shape::UnitStruct,
            }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                shape: Shape::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut code =
                String::from("let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                code.push_str(&format!(
                    "fields.push((String::from({:?}), ::serde::Serialize::to_json_value(&self.{})));\n",
                    f.name, f.name
                ));
            }
            code.push_str("::serde::Value::Object(fields)");
            code
        }
        Shape::TupleStruct(count) => {
            let items: Vec<String> = (0..*count)
                .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(String::from({vname:?})),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(f0) => ::serde::Value::Object(vec![(String::from({vname:?}), ::serde::Serialize::to_json_value(f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![(String::from({vname:?}), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    f.name.clone()
                                }
                            })
                            .collect();
                        let pairs: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(String::from({:?}), ::serde::Serialize::to_json_value({}))",
                                    f.name, f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(vec![(String::from({vname:?}), ::serde::Value::Object(vec![{}]))]),\n",
                            binds.join(", "),
                            pairs.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_field_read(container: &str, source: &str, f: &Field) -> String {
    if f.skip {
        format!("{}: ::std::default::Default::default(),\n", f.name)
    } else {
        format!(
            "{0}: match {source}.get({1:?}) {{\n\
             Some(x) => ::serde::Deserialize::from_json_value(x)?,\n\
             None => return Err(::serde::Error::custom(concat!(\"missing field `\", {1:?}, \"` of `\", {container:?}, \"`\"))),\n\
             }},\n",
            f.name, f.name
        )
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut code = format!(
                "if v.as_object().is_none() {{\n\
                 return Err(::serde::Error::custom(concat!(\"expected object for `\", {name:?}, \"`\")));\n\
                 }}\nOk({name} {{\n"
            );
            for f in fields {
                code.push_str(&gen_field_read(name, "v", f));
            }
            code.push_str("})");
            code
        }
        Shape::TupleStruct(count) => {
            let reads: Vec<String> = (0..*count)
                .map(|i| format!("::serde::Deserialize::from_json_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| ::serde::Error::custom(concat!(\"expected array for `\", {name:?}, \"`\")))?;\n\
                 if arr.len() != {count} {{\n\
                 return Err(::serde::Error::custom(concat!(\"wrong arity for `\", {name:?}, \"`\")));\n\
                 }}\nOk({name}({}))",
                reads.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::from_json_value(inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let reads: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_json_value(&arr[{i}])?")
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                             let arr = inner.as_array().ok_or_else(|| ::serde::Error::custom(concat!(\"expected array for variant `\", {vname:?}, \"`\")))?;\n\
                             if arr.len() != {n} {{\n\
                             return Err(::serde::Error::custom(concat!(\"wrong arity for variant `\", {vname:?}, \"`\")));\n\
                             }}\nOk({name}::{vname}({}))\n}},\n",
                            reads.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut reads = String::new();
                        for f in fields {
                            reads.push_str(&gen_field_read(name, "inner", f));
                        }
                        tagged_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                             if inner.as_object().is_none() {{\n\
                             return Err(::serde::Error::custom(concat!(\"expected object for variant `\", {vname:?}, \"`\")));\n\
                             }}\nOk({name}::{vname} {{\n{reads}}})\n}},\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                 }},\n\
                 ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, inner) = &pairs[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\
                 other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                 }}\n}},\n\
                 other => Err(::serde::Error::custom(format!(\"invalid value of kind {{}} for enum `{name}`\", other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_json_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
