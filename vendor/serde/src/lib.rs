//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so this workspace vendors
//! a minimal serde look-alike. The data model is a single JSON-shaped
//! [`Value`] tree: [`Serialize`] renders into it, [`Deserialize`] parses
//! out of it, and the companion `serde_json` shim handles text. The
//! `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! `serde_derive` shim) follow upstream serde's externally-tagged
//! conventions — structs become objects, unit enum variants become
//! strings, payload variants become single-key objects — and honor
//! `#[serde(skip)]` on struct fields.

// Vendored shim: exempt from the workspace unwrap/expect ban
// (clippy.toml), which targets diversify-des/diversify-core.
#![allow(clippy::disallowed_methods)]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number, kept wide enough to round-trip `u64`/`i64` exactly
/// (important for 64-bit seeds, which would lose precision through `f64`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// An unsigned integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A float.
    F(f64),
}

impl Number {
    /// The value as `f64` (lossy for huge integers).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// The value as `u64`, if exactly representable.
    #[must_use]
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(v) => {
                if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 {
                    Some(v as u64)
                } else {
                    None
                }
            }
        }
    }

    /// The value as `i64`, if exactly representable.
    #[must_use]
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(v) => {
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 {
                    Some(v as i64)
                } else {
                    None
                }
            }
        }
    }
}

/// The in-memory data model: a JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Key order is preserved (insertion order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object key/value pairs, if it is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_number(&self) -> Option<Number> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// A short name for the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_json_value(&self) -> Value;
}

/// Types that can be parsed back out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match `Self`.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!(
        "expected {expected}, got {}",
        got.kind()
    )))
}

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                v.as_number()
                    .and_then(Number::as_u64)
                    .and_then(|n| <$t>::try_from(n).ok())
                    .map_or_else(|| type_err(stringify!($t), v), Ok)
            }
        }
    )*};
}

uint_impls!(u8, u16, u32, u64, usize);

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::I(v))
                } else {
                    Value::Number(Number::U(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                v.as_number()
                    .and_then(Number::as_i64)
                    .and_then(|n| <$t>::try_from(n).ok())
                    .map_or_else(|| type_err(stringify!($t), v), Ok)
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::F(f64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                v.as_number()
                    .map_or_else(|| type_err(stringify!($t), v), |n| Ok(n.as_f64() as $t))
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().map_or_else(|| type_err("bool", v), Ok)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map_or_else(|| type_err("string", v), |s| Ok(s.to_string()))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v.as_str() {
            Some(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => type_err("single-character string", v),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_array().map_or_else(
            || type_err("array", v),
            |items| items.iter().map(T::from_json_value).collect(),
        )
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_json_value(a)?, B::from_json_value(b)?)),
            _ => type_err("two-element array", v),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b, c]) => Ok((
                A::from_json_value(a)?,
                B::from_json_value(b)?,
                C::from_json_value(c)?,
            )),
            _ => type_err("three-element array", v),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_object().map_or_else(
            || type_err("object", v),
            |pairs| {
                pairs
                    .iter()
                    .map(|(k, val)| Ok((k.clone(), V::from_json_value(val)?)))
                    .collect()
            },
        )
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        assert_eq!(Some(3u32).to_json_value(), Value::Number(Number::U(3)));
        assert_eq!(None::<u32>.to_json_value(), Value::Null);
        assert_eq!(Option::<u32>::from_json_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_json_value(&Value::Number(Number::U(9))).unwrap(),
            Some(9)
        );
    }

    #[test]
    fn u64_precision_preserved() {
        let big: u64 = 0x5EED_0000_0000_0001;
        let v = big.to_json_value();
        assert_eq!(u64::from_json_value(&v).unwrap(), big);
    }

    #[test]
    fn negative_int_round_trip() {
        let v = (-42i32).to_json_value();
        assert_eq!(i32::from_json_value(&v).unwrap(), -42);
    }

    #[test]
    fn vec_round_trip() {
        let xs = vec![1.5f64, -2.0, 0.0];
        let v = xs.to_json_value();
        assert_eq!(Vec::<f64>::from_json_value(&v).unwrap(), xs);
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(u32::from_json_value(&Value::String("x".into())).is_err());
        assert!(bool::from_json_value(&Value::Number(Number::U(1))).is_err());
        assert!(u8::from_json_value(&Value::Number(Number::U(300))).is_err());
    }
}
