//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the *minimal* subset of the `rand 0.8` API that its members actually
//! use: [`RngCore`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] /
//! [`Rng::gen_range`], [`rngs::SmallRng`] and [`seq::SliceRandom`].
//!
//! The generator behind [`rngs::SmallRng`] is xoshiro256++ seeded via
//! SplitMix64 — the same family upstream `SmallRng` uses on 64-bit
//! targets. Sequences are deterministic for a given seed but are not
//! guaranteed to match upstream `rand` bit-for-bit; nothing in this
//! workspace depends on the exact upstream streams.

// Vendored shim: exempt from the workspace unwrap/expect ban
// (clippy.toml), which targets diversify-des/diversify-core.
#![allow(clippy::disallowed_methods)]
use std::fmt;
use std::ops::Range;

/// Error type for fallible RNG operations (never produced by the
/// deterministic generators in this shim, but part of the `RngCore`
/// contract that downstream code implements).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RNG error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

/// Seedable generators, mirroring the subset of `rand::SeedableRng` the
/// workspace uses.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling of a "standard" value for `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit mantissa construction for an unbiased double in [0,1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer draw in `0..n` by rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring the subset of `rand::Rng` the
/// workspace uses.
pub trait Rng: RngCore {
    /// Draws a standard value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state is the one degenerate case for xoshiro.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..40).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
