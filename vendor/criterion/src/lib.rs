//! Offline stand-in for `criterion`.
//!
//! A small wall-clock benchmark harness exposing the API surface this
//! workspace's benches use: [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `finish`, [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each target runs
//! one warm-up iteration plus `sample_size` timed iterations and prints
//! mean/min/max to stdout. No statistics beyond that — the goal is a
//! regenerable timing record, not upstream criterion's analysis.

// Vendored shim: exempt from the workspace unwrap/expect ban
// (clippy.toml), which targets diversify-des/diversify-core.
#![allow(clippy::disallowed_methods)]
use std::time::{Duration, Instant};

/// Times one benchmark target.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once for warm-up and `sample_size` timed times.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        std::hint::black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

fn run_target(full_name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{full_name:<40} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = *bencher.samples.iter().min().expect("non-empty");
    let max = *bencher.samples.iter().max().expect("non-empty");
    println!(
        "{full_name:<40} mean {:>12}   min {:>12}   max {:>12}   ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        bencher.samples.len()
    );
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default sample size for subsequent targets.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of benchmark targets.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benches one stand-alone target.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_target(name, self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmark targets.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample size for subsequent targets in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benches one target in this group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_target(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("t", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // One warm-up + three samples.
        assert_eq!(runs, 4);
    }
}
