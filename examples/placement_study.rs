//! Placement study: the paper's "small, strategically distributed, number
//! of highly attack-resilient components" claim, with deployment costs.
//!
//! ```text
//! cargo run --release --example placement_study
//! ```

use diversify::attack::campaign::{CampaignConfig, ThreatModel};
use diversify::core::runner::measure_configuration;
use diversify::diversity::metrics::deployment_cost;
use diversify::diversity::placement::{apply_placement, PlacementStrategy};
use diversify::scada::components::ComponentProfile;
use diversify::scada::scope::{ScopeConfig, ScopeSystem};

fn measure(strategy: PlacementStrategy) -> (f64, f64) {
    let mut net = ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone();
    apply_placement(&mut net, strategy, ComponentProfile::hardened());
    let cost = deployment_cost(&net, 2.0, 5.0);
    let m = measure_configuration(
        &net,
        &ThreatModel::stuxnet_like(),
        CampaignConfig {
            max_ticks: 24 * 30,
            detection_stops_attack: false,
        },
        2,
        30,
        99,
    );
    (m.summary.p_success, cost)
}

fn main() {
    println!("{:<28} {:>8} {:>10}", "placement", "P_SA", "cost");
    let (p, c) = measure(PlacementStrategy::None);
    println!("{:<28} {p:>8.3} {c:>10.1}", "none (monoculture)");
    for k in [1usize, 2, 3, 4, 6] {
        let (pr, cr) = measure(PlacementStrategy::Random { k, seed: 7 });
        println!("{:<28} {pr:>8.3} {cr:>10.1}", format!("random k={k}"));
        let (ps, cs) = measure(PlacementStrategy::Strategic { k });
        println!("{:<28} {ps:>8.3} {cs:>10.1}", format!("strategic k={k}"));
    }
    println!();
    println!("expected shape: strategic placement reaches a given P_SA reduction");
    println!("with fewer hardened nodes (lower cost) than random placement.");
}
