//! Protocol-dialect diversification at the wire level.
//!
//! ```text
//! cargo run --release --example protocol_diversity
//! ```
//!
//! Shows the concrete mechanism behind experiment R7: a Stuxnet-style
//! `DownloadLogic` payload is framed for the Classic dialect; endpoints
//! speaking any other dialect reject the very same bytes, so one crafted
//! exploit no longer fits every segment of a diversified plant.

use diversify::scada::components::PlcFirmware;
use diversify::scada::plc::{sabotage_program, Plc};
use diversify::scada::protocol::dialect::ProtocolDialect;
use diversify::scada::protocol::frame::{Pdu, Request};

fn main() {
    // The attacker crafts the malicious logic-download frame once, for the
    // dialect their payload was engineered against.
    let payload = Pdu::Request(Request::DownloadLogic {
        image: sabotage_program().to_image(),
    });
    let key = 0; // Classic carries no authentication
    let wire = ProtocolDialect::Classic.encode(&payload, key);
    println!("crafted payload: {} bytes (Classic framing)\n", wire.len());

    println!("{:<16} {:>12} {:>28}", "endpoint", "frame", "PLC result");
    for dialect in ProtocolDialect::ALL {
        let decoded = dialect.decode(&wire, key);
        let result = match decoded {
            Ok(Pdu::Request(req)) => {
                // Frame accepted — deliver to the PLC and see what the
                // firmware does with it.
                let mut plc = Plc::new(1, PlcFirmware::VendorAStock);
                let resp = plc.serve(&req);
                if plc.is_logic_tampered() {
                    "LOGIC REPLACED (sabotaged)".to_string()
                } else {
                    format!("refused: {resp:?}")
                }
            }
            Ok(Pdu::Response(_)) => "unexpected response".to_string(),
            Err(e) => format!("rejected: {e}"),
        };
        println!(
            "{:<16} {:>12} {:>28}",
            dialect.to_string(),
            "classic",
            result
        );
    }

    println!();
    println!("=> only the Classic endpoint accepts the frame; every other dialect");
    println!("   rejects it at the wire, which is why rotating dialects across the");
    println!("   field network (experiment R7) slows PLC payload delivery.");
}
