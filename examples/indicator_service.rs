//! The sharded indicator service: supervised workers, chaos-tolerant
//! retry, and a content-addressed memo store.
//!
//! ```text
//! cargo run --release --example indicator_service
//! ```
//!
//! Part 1 stands up an in-process service (coordinator + loopback
//! workers), answers a measurement request, and replays it from the
//! memo store with zero new replications. Part 2 arms worker and
//! transport faults and shows the merged indicators are still
//! bit-identical to a fault-free local run. Part 3 asks for a precision
//! goal and lets the service double the served depth until it is met or
//! capped.

// Example code: the unwrap/expect ban (clippy.toml) applies to the
// non-test library code of diversify-des/diversify-core.
#![allow(clippy::disallowed_methods)]
use diversify::attack::campaign::{CampaignConfig, CampaignSimulator, ThreatModel};
use diversify::core::exec::{campaign_plan, Executor, MeasurementsCollector, RetryPolicy};
use diversify::core::indicators::PrecisionResponse;
use diversify::des::faults::{silence_injected_panics, FaultKind, FaultPlan};
use diversify::scada::scope::{ScopeConfig, ScopeSystem};
use diversify::serve::service::{
    IndicatorRequest, IndicatorService, PrecisionGoal, ServiceOptions,
};
use diversify::serve::worker::WorkerOptions;
use std::sync::Arc;

const SEED: u64 = 0x5E27E;
const BATCHES: u32 = 4;
const BATCH_SIZE: u32 = 5;

fn request() -> IndicatorRequest {
    IndicatorRequest::fixed(
        ScopeConfig::default(),
        ThreatModel::stuxnet_like(),
        CampaignConfig::default(),
        BATCHES,
        BATCH_SIZE,
        SEED,
    )
}

fn main() {
    silence_injected_panics();

    // Part 1 — serve, then replay from the memo store.
    println!("— memoized serving —");
    let service = IndicatorService::in_process(3, ServiceOptions::default());
    let first = service.request(&request());
    let summary = &first.measurements.as_ref().expect("clean run").summary;
    println!(
        "  cold:   {} replications run, P_SA = {:.3}, compromised = {:.3}",
        first.new_replications, summary.p_success, summary.mean_compromised_ratio
    );
    let replay = service.request(&request());
    println!(
        "  replay: {} replications run (from_cache: {})",
        replay.new_replications, replay.from_cache
    );

    // Part 2 — chaos: a worker that panics a replication once, next to
    // healthy peers. The coordinator re-deals the shard; the merged
    // indicators match a local unsharded run bit for bit.
    println!("— chaos-tolerant sharding —");
    let faults = Arc::new(
        FaultPlan::none(BATCHES * BATCH_SIZE)
            .with_fault(7, FaultKind::Panic)
            .transient(1),
    );
    let chaotic = IndicatorService::in_process_with(
        3,
        |i| WorkerOptions {
            retry: RetryPolicy::none(),
            faults: (i == 0).then(|| Arc::clone(&faults)),
            ..WorkerOptions::default()
        },
        ServiceOptions::default(),
    );
    let response = chaotic.request(&request());
    let sharded = response.measurements.as_ref().expect("recovered run");

    let scope = ScopeConfig::default();
    let system = ScopeSystem::build(&scope);
    let sim = CampaignSimulator::new(
        system.network(),
        ThreatModel::stuxnet_like(),
        CampaignConfig::default(),
    );
    let local = Executor::default().run_ws(
        &campaign_plan(BATCHES, BATCH_SIZE, SEED),
        || sim.workspace(),
        |ws, rep| sim.run_into(ws, rep.seed),
        &MeasurementsCollector,
    );
    println!(
        "  degraded: {}, P_SA sharded = {:.6} vs local = {:.6}, batch means equal: {}",
        response.degraded,
        sharded.summary.p_success,
        local.summary.p_success,
        sharded.batch_compromised == local.batch_compromised,
    );

    // Part 3 — precision-goal serving: double the depth until the CI
    // half-width target is met (or the cap says stop).
    println!("— precision goal —");
    let goal = IndicatorRequest {
        goal: Some(PrecisionGoal {
            response: PrecisionResponse::CompromisedRatio,
            level: 0.95,
            relative_half_width: 0.25,
        }),
        batches: 2,
        max_batches: 16,
        ..request()
    };
    let response = service.request(&goal);
    match response.precision {
        Some(p) => println!(
            "  served {} replications, met: {}, rel. half-width = {:.4}",
            response.replications,
            response.target_met,
            p.relative_half_width()
        ),
        None => println!("  precision not computable at this depth"),
    }
}
