//! Physical impact of a Stuxnet-like campaign on the SCoPE cooling plant.
//!
//! ```text
//! cargo run --release --example scope_sabotage
//! ```
//!
//! 1. Simulate the cyber campaign on the plant network to find out *which*
//!    PLCs the attacker reprograms and when.
//! 2. Replay the physical consequence: inject the sabotage logic into the
//!    reprogrammed PLCs of the closed-loop cooling runtime, spoof the
//!    temperature sensors (Stuxnet's "emulate regular monitoring
//!    signals"), and watch rack temperatures climb while alarms stay
//!    silent.

use diversify::attack::campaign::{CampaignConfig, CampaignSimulator, ThreatModel};
use diversify::attack::stage::NodeCompromise;
use diversify::scada::plc::sabotage_program;
use diversify::scada::scope::{ScopeConfig, ScopeSystem};

fn main() {
    let scope_cfg = ScopeConfig::default();
    let system = ScopeSystem::build(&scope_cfg);
    println!("{}", system.network());

    // --- Cyber phase -----------------------------------------------------
    let sim = CampaignSimulator::new(
        system.network(),
        ThreatModel::stuxnet_like(),
        CampaignConfig::default(),
    );
    let outcome = sim.run(2026);
    println!(
        "campaign: success={} TTA={:?}h detection={:?}h deepest={}",
        outcome.succeeded(),
        outcome.time_to_attack,
        outcome.time_to_detection,
        outcome.deepest_stage
    );

    let reprogrammed: Vec<usize> = system
        .plc_nodes()
        .iter()
        .enumerate()
        .filter(|(_, node)| outcome.final_states[node.index()] == NodeCompromise::Reprogrammed)
        .map(|(crac, _)| crac)
        .collect();
    println!("reprogrammed PLCs (CRAC indices): {reprogrammed:?}");

    // --- Physical phase ---------------------------------------------------
    let mut rt = ScopeSystem::build(&scope_cfg).into_runtime();
    rt.run_for(1800.0); // reach normal steady-state operation
    println!(
        "before sabotage: max rack temp = {:.1} °C, alarms = {}",
        rt.max_rack_temperature(),
        rt.any_alarm()
    );

    for &crac in &reprogrammed {
        rt.plc_mut(crac).install_program(sabotage_program());
        rt.sensor_mut(crac).compromise(22.0); // spoof a comfortable reading
    }
    rt.run_for(4.0 * 3600.0);

    println!(
        "after  sabotage: max rack temp = {:.1} °C, tripped racks = {}, alarms = {}",
        rt.max_rack_temperature(),
        rt.tripped_count(),
        rt.any_alarm()
    );
    if rt.tripped_count() > 0 && !rt.any_alarm() {
        println!(
            "=> device impairment achieved while monitoring stayed green — the Stuxnet signature"
        );
    }
}
