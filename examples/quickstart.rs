//! Quickstart: run the paper's three-step pipeline end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Step 1 formalizes the Stuxnet-like staged attack against the SCoPE-like
//! cooling system; Step 2 measures the security indicators over a 2^(6−2)
//! fractional factorial of diversity configurations; Step 3 runs ANOVA to
//! rank which component classes are worth diversifying.

use diversify::core::pipeline::{Pipeline, PipelineConfig};

fn main() {
    // A small but meaningful run: 3 replicate batches × 10 campaigns per
    // design point (16 points) = 480 simulated campaigns.
    let config = PipelineConfig {
        batches: 3,
        batch_size: 10,
        ..PipelineConfig::default()
    };
    let pipeline = Pipeline::new(config);
    let report = pipeline.run();
    println!("{report}");

    let top = &report.assessment.ranking[0];
    println!(
        "=> diversify '{}' first: it explains {:.1}% of the P_SA variance",
        top.0,
        top.1 * 100.0
    );
}
