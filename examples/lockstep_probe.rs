//! Interleaved scalar-vs-lockstep throughput probe.
//!
//! ```text
//! cargo run --release --example lockstep_probe [trials]
//! ```
//!
//! Criterion times the scalar and lockstep campaign paths in separate
//! blocks, so on a shared 1-core runner the block-to-block drift can
//! exceed the effect being measured. This probe interleaves them — each
//! trial runs the same seed schedule once through `run_into` and once
//! through `run_batch_into`, back to back — and reports the min-of-N
//! wall per path, the same noise-immune technique the experiments
//! binary's `--harden-guard` uses. Both paths produce bit-identical
//! per-seed stats (`tests/lockstep_differential.rs`), so the ratio is
//! pure execution cost. The numbers recorded in `BENCH_8.json` come
//! from this probe.

use std::time::Instant;

use diversify::attack::campaign::{CampaignConfig, CampaignSimulator, ThreatModel};
use diversify::scada::fleet::{FleetConfig, FleetSystem};
use diversify::scada::scope::{ScopeConfig, ScopeSystem};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let campaign = CampaignConfig {
        max_ticks: 24 * 30,
        detection_stops_attack: false,
    };
    let scope_net = ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone();
    let fleet = FleetSystem::build(&FleetConfig::sized(10_000, 0x5CA1E));
    // Lane width per workload mirrors benches/engine.rs: SCoPE lanes
    // are tiny so the whole schedule is one wide batch; a fleet
    // campaign compromises ~half the plant, so each lane's per-tick
    // working set is ~100 KB and 2-lane groups keep the round-robin
    // L2-resident (wider groups measurably thrash).
    let workloads: [(&str, &diversify::scada::network::ScadaNetwork, u64, usize); 2] = [
        ("scope", &scope_net, 64, 64),
        ("fleet_10000", fleet.network(), 16, 2),
    ];
    println!("lockstep probe: min of {trials} interleaved trials per workload\n");
    for (label, net, reps, lanes) in workloads {
        let sim = CampaignSimulator::new(net, ThreatModel::stuxnet_like(), campaign);
        let seeds: Vec<u64> = (0..reps).map(|i| 0x10C5u64.wrapping_mul(i + 1)).collect();
        let mut scalar_ws = sim.workspace();
        let mut batched_ws = sim.batched_workspace();
        // Warm both paths so lane buffers and curves are sized.
        for &seed in &seeds {
            std::hint::black_box(sim.run_into(&mut scalar_ws, seed));
        }
        for chunk in seeds.chunks(lanes) {
            std::hint::black_box(sim.run_batch_into(&mut batched_ws, chunk));
        }
        let mut scalar_min = f64::INFINITY;
        let mut lockstep_min = f64::INFINITY;
        for _ in 0..trials {
            let t = Instant::now();
            for &seed in &seeds {
                std::hint::black_box(sim.run_into(&mut scalar_ws, seed));
            }
            scalar_min = scalar_min.min(t.elapsed().as_secs_f64() * 1e6);
            let t = Instant::now();
            for chunk in seeds.chunks(lanes) {
                std::hint::black_box(sim.run_batch_into(&mut batched_ws, chunk));
            }
            lockstep_min = lockstep_min.min(t.elapsed().as_secs_f64() * 1e6);
        }
        #[allow(clippy::cast_precision_loss)]
        let per_rep = reps as f64;
        println!(
            "{label}: {} nodes, {reps} replications, {lanes} lanes\n  \
             scalar   {scalar_min:9.1} us ({:7.2} us/rep)\n  \
             lockstep {lockstep_min:9.1} us ({:7.2} us/rep)\n  \
             speedup  {:9.3}x\n",
            net.node_count(),
            scalar_min / per_rep,
            lockstep_min / per_rep,
            scalar_min / lockstep_min
        );
    }
}
