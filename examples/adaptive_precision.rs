//! Adaptive-precision replication: spend campaigns only where the
//! variance demands them.
//!
//! ```text
//! cargo run --release --example adaptive_precision
//! ```
//!
//! Part 1 measures one SCoPE design point twice — under the fixed
//! default replication budget and adaptively with a relative
//! confidence-interval target on P_SA — and compares the spend. Part 2
//! runs the full three-step pipeline with a precision target, so every
//! design point of the 2^(6−2) sweep sizes its own replication count
//! and the report shows the per-run spend and achieved half-widths.

use diversify::attack::campaign::{CampaignConfig, ThreatModel};
use diversify::core::exec::{campaign_plan, Executor};
use diversify::core::pipeline::{Pipeline, PipelineConfig};
use diversify::core::runner::{
    achieved_relative_half_width, measure_configuration_adaptive, measure_configuration_with,
    PrecisionTarget,
};
use diversify::scada::scope::{ScopeConfig, ScopeSystem};

fn main() {
    let net = ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone();
    let threat = ThreatModel::stuxnet_like();
    let campaign = CampaignConfig {
        max_ticks: 24 * 30,
        detection_stops_attack: false,
    };

    // Part 1 — one design point, fixed vs adaptive. The fixed default
    // spends 4 × 25 = 100 campaigns blindly; the adaptive run executes
    // 25-campaign rounds until the 95% Wilson interval on P_SA is
    // within 5% of the estimate (bounded to [50, 400] replications).
    let fixed = measure_configuration_with(
        &net,
        &threat,
        campaign,
        &campaign_plan(4, 25, 0xD1CE),
        Executor::default(),
    );
    let fixed_hw = fixed
        .summary
        .p_success_ci(0.95)
        .map_or(f64::NAN, |ci| ci.half_width());
    println!(
        "fixed:    {:>4} campaigns  P_SA={:.3}  half-width={:.4}",
        fixed.summary.replications, fixed.summary.p_success, fixed_hw
    );

    let target = PrecisionTarget::p_success(0.05, 50, 400);
    let adaptive = measure_configuration_adaptive(
        &net,
        &threat,
        campaign,
        &campaign_plan(1, 25, 0xD1CE),
        Executor::default(),
        &target,
    );
    println!(
        "adaptive: {:>4} campaigns  P_SA={:.3}  half-width={:.4}  (target met: {}, rel {:.3})",
        adaptive.replications,
        adaptive.output.summary.p_success,
        adaptive.precision.map_or(f64::NAN, |p| p.half_width),
        adaptive.target_met,
        achieved_relative_half_width(&adaptive).unwrap_or(f64::NAN)
    );
    // The first N replications of the adaptive run use exactly the seeds
    // of the fixed plan of N — the run is a fixed plan whose size was
    // chosen on the fly.
    println!(
        "adaptive run == fixed plan of {} batches x {} campaigns\n",
        adaptive.plan.batches(),
        adaptive.plan.batch_size()
    );

    // Part 2 — a precision-targeted DoE sweep: each of the 16 design
    // points stops at its own replication count (low-variance points
    // early, high-variance points at the cap), and the step-2 report
    // carries the per-run spend.
    let pipeline = Pipeline::new(PipelineConfig {
        batch_size: 10,
        precision: Some(PrecisionTarget::p_success(0.10, 20, 200)),
        ..PipelineConfig::default()
    });
    let report = pipeline.run();
    println!("{report}");

    if let Some(points) = &report.doe.adaptive {
        let total: u32 = points.iter().map(|p| p.replications).sum();
        let fixed_total = 16 * 4 * 25;
        println!(
            "=> adaptive sweep spent {total} campaigns ({} per fixed default of {fixed_total})",
            format_args!(
                "{:.0}%",
                100.0 * f64::from(total) / f64::from(fixed_total as u32)
            ),
        );
    }
}
