//! Fault-tolerant execution: panic isolation, deterministic retry, run
//! budgets, and graceful degradation to partial results.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```
//!
//! Part 1 injects panics into a campaign sweep and shows the survivors
//! are bit-identical to the fault-free run. Part 2 arms the same faults
//! as transients and lets seed-preserving retry erase them completely.
//! Part 3 truncates a run with a replication budget and a cancel token
//! and shows the partial result equals the shorter fixed plan. Part 4
//! runs the full pipeline with a per-design-point budget and prints the
//! per-cell health table from the degraded report.

// Example code: the unwrap/expect ban (clippy.toml) applies to the
// non-test library code of diversify-des/diversify-core.
#![allow(clippy::disallowed_methods)]
use diversify::attack::campaign::{CampaignConfig, CampaignSimulator, ThreatModel};
use diversify::core::exec::{
    Budget, BudgetOutcome, CancelToken, Executor, ReplicationPlan, RetryPolicy, RunPolicy,
    VecCollector,
};
use diversify::core::pipeline::{Pipeline, PipelineConfig};
use diversify::des::faults::{silence_injected_panics, FaultKind, FaultPlan};
use diversify::scada::scope::{ScopeConfig, ScopeSystem};

fn main() {
    // Injected panics are expected here; keep them off stderr.
    silence_injected_panics();
    let net = ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone();
    let sim = CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
    let plan = ReplicationPlan::new(4, 5, 0xFA171);
    let task = |ws: &mut diversify::attack::campaign::CampaignWorkspace,
                rep: diversify::core::exec::Replication| {
        sim.run_into(ws, rep.seed).final_compromised_ratio
    };
    let clean: Vec<f64> =
        Executor::parallel().run_ws(&plan, || sim.workspace(), task, &VecCollector);

    // Part 1 — panic isolation. Replications 3 and 7 panic; the other
    // 18 finish and match the fault-free run bit for bit.
    let faults = FaultPlan::none(plan.total())
        .with_fault(3, FaultKind::Panic)
        .with_fault(7, FaultKind::Panic);
    let part = Executor::parallel().run_ws_budgeted(
        &plan,
        || sim.workspace(),
        faults.wrap(task, |v| v),
        &VecCollector,
        &RunPolicy::new(),
    );
    println!("— panic isolation —");
    println!(
        "  {} attempted, {} completed, outcome: {}",
        part.attempted, part.completed, part.budget_outcome
    );
    for failure in &part.failed {
        println!(
            "  replication {} (seed {:#x}) failed: {:?}",
            failure.index, failure.seed, failure.cause
        );
    }
    let survivors = part.output().expect("18 survivors");
    let expected: Vec<f64> = clean
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 3 && *i != 7)
        .map(|(_, v)| *v)
        .collect();
    assert_eq!(survivors, &expected, "survivors are bit-identical");
    println!("  survivors bit-identical to the fault-free run: yes");

    // Part 2 — deterministic retry. The same faults armed as transient
    // (they fire once, then clear) plus one retry from each failed
    // replication's own seed: the run finishes whole and equals the
    // fault-free run exactly.
    faults.reset();
    let transient = FaultPlan::none(plan.total())
        .with_fault(3, FaultKind::Panic)
        .with_fault(7, FaultKind::Panic)
        .transient(1);
    let retried = Executor::parallel().run_ws_budgeted(
        &plan,
        || sim.workspace(),
        transient.wrap(task, |v| v),
        &VecCollector,
        &RunPolicy::new().with_retry(RetryPolicy::retries(1)),
    );
    println!("— deterministic retry —");
    println!(
        "  {} completed, {} failures after 1 retry",
        retried.completed,
        retried.failed.len()
    );
    assert_eq!(retried.output().expect("whole run"), &clean);
    println!("  retried run bit-identical to the fault-free run: yes");

    // Part 3 — budgets and cancellation. A replication cap truncates to
    // whole rounds; the partial result equals the shorter fixed plan.
    let token = CancelToken::new();
    let policy = RunPolicy::new().with_budget(
        Budget::unlimited()
            .with_max_replications(10)
            .with_cancel(&token),
    );
    let budgeted = Executor::parallel().run_ws_budgeted(
        &plan,
        || sim.workspace(),
        task,
        &VecCollector,
        &policy,
    );
    let shorter: Vec<f64> = Executor::parallel().run_ws(
        &ReplicationPlan::new(2, 5, 0xFA171),
        || sim.workspace(),
        task,
        &VecCollector,
    );
    println!("— run budgets —");
    println!(
        "  cap 10 of 20: {} rounds kept, outcome: {}",
        budgeted.rounds, budgeted.budget_outcome
    );
    assert_eq!(budgeted.budget_outcome, BudgetOutcome::ReplicationBudget);
    assert_eq!(budgeted.output().expect("clean prefix"), &shorter);
    println!("  truncated run bit-identical to the 2-round plan: yes");
    token.cancel();
    let cancelled = Executor::parallel().run_ws_budgeted(
        &plan,
        || sim.workspace(),
        task,
        &VecCollector,
        &policy,
    );
    println!(
        "  after cancel(): {} completed, outcome: {}",
        cancelled.completed, cancelled.budget_outcome
    );

    // Part 4 — graceful degradation in the pipeline. Every design point
    // of the 2^(6−2) sweep gets a per-cell budget that truncates it;
    // the report still carries the full assessment plus a health table
    // flagging each degraded cell.
    let config = PipelineConfig {
        batches: 3,
        batch_size: 4,
        campaign: CampaignConfig {
            max_ticks: 24 * 5,
            detection_stops_attack: false,
        },
        resilience: Some(
            RunPolicy::new().with_budget(Budget::unlimited().with_max_replications(8)),
        ),
        ..PipelineConfig::default()
    };
    let report = Pipeline::new(config).run();
    println!("— degraded pipeline —");
    let health = report.doe.health.as_ref().expect("resilient sweep");
    let degraded = health.iter().filter(|c| c.is_degraded()).count();
    println!(
        "  {} of {} design points degraded (cap 8 of 12 per cell)",
        degraded,
        health.len()
    );
    let text = report.to_string();
    let table_from = text.find("cell health").expect("health table rendered");
    for line in text[table_from..].lines().take(6) {
        println!("  {line}");
    }
    println!(
        "  ... assessment still ranks {} factors",
        report.assessment.ranking.len()
    );
}
