//! # diversify
//!
//! Facade crate for the reproduction of *"Towards Secure Monitoring and
//! Control Systems: Diversify!"* (Cotroneo, Pecchia, Russo — DSN 2013).
//!
//! Re-exports every workspace crate under a stable path. See the README for
//! the architecture overview and `examples/` for runnable entry points.

pub use diversify_attack as attack;
pub use diversify_core as core;
pub use diversify_des as des;
pub use diversify_diversity as diversity;
pub use diversify_doe as doe;
pub use diversify_san as san;
pub use diversify_scada as scada;
pub use diversify_serve as serve;
pub use diversify_stats as stats;
