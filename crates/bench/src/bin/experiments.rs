//! Regenerates every experiment table/series from DESIGN.md §3.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p diversify-bench --bin experiments [quick|full] \
//!     [--guard <baseline.json> [--guard-factor <f>]]
//! ```
//!
//! With `--guard`, the binary times the whole suite and exits non-zero if
//! the wall time exceeds `guard-factor ×` the `suite_wall_ms` recorded in
//! the baseline JSON (default factor 3 — a coarse regression tripwire
//! that tolerates CI-runner noise but catches order-of-magnitude
//! slowdowns).

use diversify_bench::{run_all, Scale};
use std::time::Instant;

/// Extracts `"suite_wall_ms": <number>` from a BENCH_*.json file without
/// a full JSON parse (the field is flat and unique).
fn suite_wall_ms(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"suite_wall_ms\"";
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let guard = args
        .iter()
        .position(|a| a == "--guard")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let factor: f64 = args
        .iter()
        .position(|a| a == "--guard-factor")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);

    println!("diversify reproduction — experiment suite ({scale:?} scale)\n");
    let start = Instant::now();
    for (id, output) in run_all(scale) {
        println!("==== {id} ====");
        println!("{output}");
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("suite wall: {wall_ms:.1} ms");

    if let Some(baseline_path) = guard {
        let Some(baseline_ms) = suite_wall_ms(&baseline_path) else {
            eprintln!("guard: no suite_wall_ms in {baseline_path}");
            std::process::exit(2);
        };
        let limit = baseline_ms * factor;
        if wall_ms > limit {
            eprintln!(
                "guard: suite wall {wall_ms:.1} ms exceeds {factor}x baseline \
                 ({baseline_ms:.1} ms from {baseline_path}) — performance regression"
            );
            std::process::exit(1);
        }
        println!("guard: within {factor}x baseline ({baseline_ms:.1} ms from {baseline_path})");
    }
}
