//! Regenerates every experiment table/series from DESIGN.md §3.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p diversify-bench --bin experiments [quick|full]
//! ```

use diversify_bench::{run_all, Scale};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("full") => Scale::Full,
        _ => Scale::Quick,
    };
    println!("diversify reproduction — experiment suite ({scale:?} scale)\n");
    for (id, output) in run_all(scale) {
        println!("==== {id} ====");
        println!("{output}");
    }
}
