//! Regenerates every experiment table/series from DESIGN.md §3.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p diversify-bench --bin experiments [quick|full] \
//!     [--guard <baseline.json> [--guard-factor <f>]] \
//!     [--harden-guard <baseline.json> [--harden-factor <f>]]
//! ```
//!
//! With `--guard`, the binary times the whole suite and exits non-zero if
//! the wall time exceeds `guard-factor ×` the `suite_wall_ms` recorded in
//! the baseline JSON (default factor 3 — a coarse regression tripwire
//! that tolerates CI-runner noise but catches order-of-magnitude
//! slowdowns).
//!
//! With `--harden-guard`, the binary times the campaign replication
//! workload on the hardened executor paths and exits non-zero if the
//! explicitly budgeted path costs more than `harden-factor ×` (default
//! 1.05, i.e. 5%) the strict path measured in the same process, or if
//! the strict path itself drifts past `guard-factor ×` the
//! `campaign_replication_throughput_us` recorded in the baseline.

use diversify_bench::{hardened_overhead_probe, run_all, Scale};
use std::time::Instant;

/// Extracts `"<key>": <number>` from a BENCH_*.json file without a full
/// JSON parse (the guarded fields are flat and unique).
fn json_number(path: &str, key: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn suite_wall_ms(path: &str) -> Option<f64> {
    json_number(path, "suite_wall_ms")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let guard = args
        .iter()
        .position(|a| a == "--guard")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let factor: f64 = args
        .iter()
        .position(|a| a == "--guard-factor")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    let harden_guard = args
        .iter()
        .position(|a| a == "--harden-guard")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let harden_factor: f64 = args
        .iter()
        .position(|a| a == "--harden-factor")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.05);

    println!("diversify reproduction — experiment suite ({scale:?} scale)\n");
    let start = Instant::now();
    for (id, output) in run_all(scale) {
        println!("==== {id} ====");
        println!("{output}");
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("suite wall: {wall_ms:.1} ms");

    if let Some(baseline_path) = guard {
        let Some(baseline_ms) = suite_wall_ms(&baseline_path) else {
            eprintln!("guard: no suite_wall_ms in {baseline_path}");
            std::process::exit(2);
        };
        let limit = baseline_ms * factor;
        if wall_ms > limit {
            eprintln!(
                "guard: suite wall {wall_ms:.1} ms exceeds {factor}x baseline \
                 ({baseline_ms:.1} ms from {baseline_path}) — performance regression"
            );
            std::process::exit(1);
        }
        println!("guard: within {factor}x baseline ({baseline_ms:.1} ms from {baseline_path})");
    }

    if let Some(baseline_path) = harden_guard {
        let probe = hardened_overhead_probe(scale, 15);
        println!(
            "harden-guard: strict {:.1} us/rep, budgeted {:.1} us/rep \
             (ratio {:.3}) over {} replications",
            probe.strict_us,
            probe.budgeted_us,
            probe.ratio(),
            probe.replications
        );
        // The 5% claim is a same-process comparison — immune to runner
        // speed — so it gets the tight default factor.
        if probe.ratio() > harden_factor {
            eprintln!(
                "harden-guard: budgeted path costs {:.1}% over strict \
                 (allowed {:.1}%) — hardening overhead regression",
                (probe.ratio() - 1.0) * 100.0,
                (harden_factor - 1.0) * 100.0
            );
            std::process::exit(1);
        }
        // The absolute check reuses the coarse suite factor: it exists
        // to catch the hardened strict path slowing down outright, not
        // to re-litigate runner-to-runner speed differences.
        if let Some(baseline_us) = json_number(&baseline_path, "campaign_replication_throughput_us")
        {
            // The recorded criterion number is per bench iteration of
            // 100 replications; normalize to per-replication.
            let baseline_per_rep = baseline_us / 100.0;
            let limit = baseline_per_rep * factor;
            if probe.strict_us > limit {
                eprintln!(
                    "harden-guard: strict path {:.2} us/rep exceeds {factor}x baseline \
                     ({baseline_per_rep:.2} us/rep from {baseline_path}) — performance regression",
                    probe.strict_us
                );
                std::process::exit(1);
            }
            println!(
                "harden-guard: within {harden_factor}x of strict and {factor}x of \
                 baseline ({baseline_per_rep:.2} us/rep from {baseline_path})"
            );
        } else {
            eprintln!("harden-guard: no campaign_replication_throughput_us in {baseline_path}");
            std::process::exit(2);
        }
    }
}
