//! # diversify-bench
//!
//! The experiment harness: one function per experiment in DESIGN.md §3.
//! Each returns a rendered text block, so the `experiments` binary, the
//! Criterion benches and the integration tests all share one
//! implementation.
//!
//! Every experiment accepts a [`Scale`] so benches can run a trimmed
//! version while the binary reproduces the full tables.

#![warn(missing_docs)]
// The unwrap/expect ban (clippy.toml `disallowed-methods`) is the
// fault-tolerance discipline of `diversify-des`/`diversify-core`; this
// crate predates it and is exercised through those hardened seams.
#![allow(clippy::disallowed_methods)]

use diversify_attack::campaign::{
    CampaignConfig, CampaignSimulator, ThreatModel, CAMPAIGN_RUN_NAMESPACE,
};
use diversify_attack::chain::{chain_success_probability, simulate_chain, MachineChain};
use diversify_attack::to_san::{
    compile_machine_chain, compile_stage_chain, success_place, StageParams,
};
use diversify_attack::tree::stuxnet_tree;
use diversify_core::exec::{campaign_plan, Executor, IndicatorsCollector, ReplicationPlan};
use diversify_core::pipeline::{Pipeline, PipelineConfig};
use diversify_core::report::render_series;
use diversify_core::runner::{
    measure_configuration_adaptive, measure_configuration_with, PrecisionTarget,
};
use diversify_des::SimTime;
use diversify_diversity::config::DiversityConfig;
use diversify_diversity::placement::{apply_placement, PlacementStrategy};
use diversify_san::{solve, Method, RewardSpec, TransientSolver};
use diversify_scada::components::{ComponentClass, ComponentProfile};
use diversify_scada::scope::{ScopeConfig, ScopeSystem};
use std::fmt::Write as _;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Trimmed sizes for Criterion benches and CI.
    Quick,
    /// The full experiment as recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    fn reps(self, quick: u32, full: u32) -> u32 {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// R1 — the Sec. I motivating example: P_SA for identical vs diverse
/// machine chains, analytic and Monte-Carlo.
#[must_use]
pub fn r1_motivating(scale: Scale) -> String {
    let reps = scale.reps(5_000, 100_000);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>3} {:>6} {:>14} {:>14} {:>14}",
        "k", "p_m", "P_SA identical", "P_SA diverse", "diverse (MC)"
    );
    for k in [2usize, 4, 8] {
        for p in [0.2, 0.5, 0.8] {
            let same = chain_success_probability(&MachineChain::identical(k, p));
            let diff = chain_success_probability(&MachineChain::diverse(k, p));
            let mc = simulate_chain(&MachineChain::diverse(k, p), reps, 42);
            let _ = writeln!(out, "{k:>3} {p:>6.2} {same:>14.6} {diff:>14.6} {mc:>14.6}");
        }
    }
    out
}

/// R2 — security indicators on the SCoPE model: homogeneous vs fully
/// rotated diversity, Stuxnet-like threat.
#[must_use]
pub fn r2_indicators(scale: Scale) -> String {
    let batch = scale.reps(10, 100);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>9} {:>10} {:>12}",
        "config", "P_SA", "TTA(h)", "TTSF(h)", "compromised"
    );
    for (name, cfg) in [
        ("monoculture", DiversityConfig::monoculture()),
        ("full-rotation", DiversityConfig::full_rotation()),
    ] {
        let mut net = ScopeSystem::build(&ScopeConfig::default())
            .network()
            .clone();
        cfg.apply(&mut net);
        let m = measure_configuration_with(
            &net,
            &ThreatModel::stuxnet_like(),
            CampaignConfig {
                max_ticks: 24 * 30,
                detection_stops_attack: false,
            },
            &campaign_plan(4, batch, 7),
            Executor::default(),
        );
        let s = &m.summary;
        let _ = writeln!(
            out,
            "{name:<16} {:>8.3} {:>9} {:>10} {:>12.3}",
            s.p_success,
            s.mean_tta
                .map_or("-".to_string(), |v: f64| format!("{v:.1}")),
            s.mean_ttsf
                .map_or("-".to_string(), |v: f64| format!("{v:.1}")),
            s.mean_compromised_ratio
        );
    }
    out
}

/// R3+R4+F1 — the full three-step pipeline: DoE measurement table and the
/// ANOVA diversity assessment.
#[must_use]
pub fn r3_r4_pipeline(scale: Scale) -> String {
    let cfg = PipelineConfig {
        batches: 3,
        batch_size: scale.reps(5, 40),
        ..PipelineConfig::default()
    };
    Pipeline::new(cfg).run().to_string()
}

/// R5 — the paper's preliminary sensitivity analysis: k hardened nodes,
/// random vs strategic placement, against P_SA.
///
/// The observation window is bounded (48 h): with unbounded persistence
/// every configuration eventually falls and P_SA saturates at 1; the
/// paper's argument is about raising the attacker's *effort and time*, so
/// the indicator of interest is the success chance within a fixed window.
#[must_use]
pub fn r5_sensitivity(scale: Scale) -> String {
    let batch = scale.reps(8, 60);
    let mut random_series = Vec::new();
    let mut strategic_series = Vec::new();
    for k in [0usize, 1, 2, 3, 4, 6, 8] {
        let p_for = |strategy: PlacementStrategy, seed: u64| {
            let mut net = ScopeSystem::build(&ScopeConfig::default())
                .network()
                .clone();
            apply_placement(&mut net, strategy, ComponentProfile::hardened());
            measure_configuration_with(
                &net,
                &ThreatModel::stuxnet_like(),
                CampaignConfig {
                    max_ticks: 48,
                    detection_stops_attack: false,
                },
                &campaign_plan(2, batch, seed),
                Executor::default(),
            )
            .summary
            .p_success
        };
        let rand_p = if k == 0 {
            p_for(PlacementStrategy::None, 11)
        } else {
            // Average over three random draws.
            (0..3)
                .map(|s| p_for(PlacementStrategy::Random { k, seed: s }, 11 + s))
                .sum::<f64>()
                / 3.0
        };
        let strat_p = if k == 0 {
            p_for(PlacementStrategy::None, 11)
        } else {
            p_for(PlacementStrategy::Strategic { k }, 11)
        };
        random_series.push((k as f64, rand_p));
        strategic_series.push((k as f64, strat_p));
    }
    let mut out = String::new();
    out.push_str(&render_series(
        "R5a: P_SA vs k hardened nodes (random placement)",
        "k",
        "P_SA",
        &random_series,
    ));
    out.push_str(&render_series(
        "R5b: P_SA vs k hardened nodes (strategic placement)",
        "k",
        "P_SA",
        &strategic_series,
    ));
    out
}

/// R6 — wider threat models: Stuxnet-, Duqu- and Flame-like campaigns on
/// the same plant.
#[must_use]
pub fn r6_threats(scale: Scale) -> String {
    let reps = scale.reps(20, 200);
    let net = ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>9} {:>10} {:>12}",
        "threat", "P_SA", "TTA(h)", "TTSF(h)", "compromised"
    );
    for threat in [
        ThreatModel::stuxnet_like(),
        ThreatModel::duqu_like(),
        ThreatModel::flame_like(),
    ] {
        let sim = CampaignSimulator::new(
            &net,
            threat.clone(),
            CampaignConfig {
                max_ticks: 24 * 30,
                detection_stops_attack: false,
            },
        );
        // The workspace fold over the historical 0xCA_0000 `run_many`
        // seed schedule: each worker reuses one campaign workspace and
        // streams scalar stats — no materialized outcome, no
        // per-replication allocation.
        let plan = ReplicationPlan::flat(reps, 17).with_namespace(CAMPAIGN_RUN_NAMESPACE);
        let s = campaign_workspace_summary(&sim, &plan, Executor::default());
        let _ = writeln!(
            out,
            "{:<14} {:>8.3} {:>9} {:>10} {:>12.3}",
            threat.name,
            s.p_success,
            s.mean_tta
                .map_or("-".to_string(), |v: f64| format!("{v:.1}")),
            s.mean_ttsf
                .map_or("-".to_string(), |v: f64| format!("{v:.1}")),
            s.mean_compromised_ratio
        );
    }
    out
}

/// R7 — protocol-dialect ablation: rotate only the protocol dialect and
/// measure the Stuxnet-like campaign.
#[must_use]
pub fn r7_protocol(scale: Scale) -> String {
    let batch = scale.reps(10, 80);
    let mut out = String::new();
    let _ = writeln!(out, "{:<22} {:>8} {:>9}", "config", "P_SA", "TTA(h)");
    for (name, cfg) in [
        ("single-dialect", DiversityConfig::monoculture()),
        (
            "rotated-dialects",
            DiversityConfig::rotate_only(ComponentClass::ProtocolDialect),
        ),
    ] {
        let mut net = ScopeSystem::build(&ScopeConfig::default())
            .network()
            .clone();
        cfg.apply(&mut net);
        let m = measure_configuration_with(
            &net,
            &ThreatModel::stuxnet_like(),
            CampaignConfig {
                max_ticks: 24 * 30,
                detection_stops_attack: false,
            },
            &campaign_plan(2, batch, 23),
            Executor::default(),
        );
        let s = &m.summary;
        let _ = writeln!(
            out,
            "{name:<22} {:>8.3} {:>9}",
            s.p_success,
            s.mean_tta
                .map_or("-".to_string(), |v: f64| format!("{v:.1}")),
        );
    }
    out
}

/// R8 — formalism cross-check: the same four-transition stage chain as a
/// SAN (Monte-Carlo **and** exact CTMC), an attack tree (closed form),
/// and a Bayesian network (exact inference); plus the Sec. I machine
/// chain, where the analytic SAN backend must reproduce the paper's
/// closed form (`P_M` identical vs `P_M1 × P_M2` diverse).
#[must_use]
pub fn r8_formalisms(scale: Scale) -> String {
    let reps = scale.reps(500, 5_000);
    let p = 0.5f64;
    let tree = stuxnet_tree(p, 0.0, p, p, 0.0, p);
    let tree_p = tree.success_probability();

    let (net, ids) = diversify_attack::bayes::stage_chain_network(&[p, p, p, p]);
    let bn_p = net
        .marginal(*ids.last().expect("non-empty"))
        .expect("valid query");

    let params = vec![
        StageParams {
            success_probability: p,
            attempt_rate_per_hour: 1.0,
        };
        4
    ];
    let model = compile_stage_chain(&params).expect("valid stage chain");
    let success = success_place(&model);
    let solver = TransientSolver::new(SimTime::from_secs(1e7), reps, 3);
    let r = solver.solve(
        &model,
        &[RewardSpec::first_passage("tta", move |m| {
            m.tokens(success) == 1
        })],
    );
    let est = r.estimate("tta").expect("reward present");
    let san_eventual = est.probability(reps);
    let san_mean_tta = est.stats.mean();

    // The same stage chain on the exact CTMC backend: a horizon of 2000
    // mean stage times makes the truncation error invisible at the
    // printed precision.
    let analytic = solve(
        &model,
        &[RewardSpec::first_passage("tta", move |m| {
            m.tokens(success) == 1
        })],
        Method::Analytic {
            horizon: SimTime::from_secs(2_000.0),
            tol: 1e-12,
            max_states: 1_000,
        },
    )
    .expect("stage chain is analytic-solvable");
    let a_est = analytic.estimate("tta").expect("reward present");
    let ctmc_eventual = a_est.probability(0);
    let ctmc_mean_tta = a_est.stats.mean();

    // Sec. I machine chains, analytic vs closed form.
    let k = 4usize;
    let identical = MachineChain::identical(k, p);
    let diverse = MachineChain::diverse(k, p);
    let chain_p = |chain: &MachineChain| -> f64 {
        let san = compile_machine_chain(chain, 1.0).expect("chain compiles");
        let win = san.success;
        solve(
            &san.model,
            &[RewardSpec::first_passage("win", move |m| {
                m.tokens(win) == 1
            })],
            Method::Analytic {
                horizon: SimTime::from_secs(200.0 * k as f64),
                tol: 1e-13,
                max_states: 1_000,
            },
        )
        .expect("chain SAN is analytic-solvable")
        .estimate("win")
        .expect("reward present")
        .probability(0)
    };

    let mut out = String::new();
    let _ = writeln!(out, "stage chain, per-attempt success p = {p}");
    let _ = writeln!(
        out,
        "attack tree  P(all 4 stages in one attempt) = {tree_p:.6}"
    );
    let _ = writeln!(
        out,
        "bayes net    P(all 4 stages in one attempt) = {bn_p:.6}"
    );
    let _ = writeln!(
        out,
        "closed form  p^4                            = {:.6}",
        p.powi(4)
    );
    let _ = writeln!(
        out,
        "SAN solver   P(eventual success)            = {san_eventual:.6}"
    );
    let _ = writeln!(
        out,
        "SAN solver   mean TTA (hours, retries allowed) = {san_mean_tta:.3} (expected {})",
        4.0 / p
    );
    let _ = writeln!(
        out,
        "SAN analytic P(success within horizon)      = {ctmc_eventual:.6}"
    );
    let _ = writeln!(
        out,
        "SAN analytic mean TTA (hours)               = {ctmc_mean_tta:.3} (expected {})",
        4.0 / p
    );
    let _ = writeln!(
        out,
        "machine chain k={k}: identical closed form {:.6} / analytic {:.6}",
        chain_success_probability(&identical),
        chain_p(&identical)
    );
    let _ = writeln!(
        out,
        "machine chain k={k}: diverse   closed form {:.6} / analytic {:.6}",
        chain_success_probability(&diverse),
        chain_p(&diverse)
    );
    out
}

/// R9 — adaptive-precision replication: fixed replication budget vs
/// [`measure_configuration_adaptive`] with a relative CI half-width
/// target of 0.05 on P_SA (95% Wilson), on two SCoPE design points. The
/// low-variance monoculture point reaches the target in a fraction of
/// the fixed budget; the diversified point spends its replications where
/// the variance actually is. Wall-clock per mode is printed so the
/// record lands in BENCH_3.json.
#[must_use]
pub fn r9_adaptive(scale: Scale) -> String {
    let batch = scale.reps(10, 25);
    let fixed_batches = 4; // the fixed default: 4 × batch replications
    let min_reps = 2 * batch;
    let max_reps = scale.reps(120, 400);
    let threat = ThreatModel::stuxnet_like();
    let campaign = CampaignConfig {
        max_ticks: 24 * 30,
        detection_stops_attack: false,
    };
    let target = PrecisionTarget::p_success(0.05, min_reps, max_reps);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "precision target: rel. half-width <= 0.05 on P_SA @95% (min {min_reps}, max {max_reps})"
    );
    let _ = writeln!(
        out,
        "{:<16} {:<9} {:>5} {:>8} {:>10} {:>9} {:>5}",
        "config", "mode", "reps", "P_SA", "halfwidth", "wall(ms)", "met"
    );
    for (name, cfg) in [
        ("monoculture", DiversityConfig::monoculture()),
        ("full-rotation", DiversityConfig::full_rotation()),
    ] {
        let mut net = ScopeSystem::build(&ScopeConfig::default())
            .network()
            .clone();
        cfg.apply(&mut net);

        let start = std::time::Instant::now();
        let fixed = measure_configuration_with(
            &net,
            &threat,
            campaign,
            &campaign_plan(fixed_batches, batch, 31),
            Executor::default(),
        );
        let fixed_ms = start.elapsed().as_secs_f64() * 1e3;
        let fixed_hw = fixed
            .summary
            .p_success_ci(0.95)
            .map_or(f64::NAN, |ci| ci.half_width());
        let fixed_met = fixed_hw <= 0.05 * fixed.summary.p_success;
        let _ = writeln!(
            out,
            "{name:<16} {:<9} {:>5} {:>8.3} {:>10.4} {:>9.2} {:>5}",
            "fixed",
            fixed.summary.replications,
            fixed.summary.p_success,
            fixed_hw,
            fixed_ms,
            if fixed_met { "yes" } else { "no" }
        );

        let start = std::time::Instant::now();
        let adaptive = measure_configuration_adaptive(
            &net,
            &threat,
            campaign,
            &campaign_plan(1, batch, 31),
            Executor::default(),
            &target,
        );
        let adaptive_ms = start.elapsed().as_secs_f64() * 1e3;
        let hw = adaptive.precision.map_or(f64::NAN, |p| p.half_width);
        let _ = writeln!(
            out,
            "{name:<16} {:<9} {:>5} {:>8.3} {:>10.4} {:>9.2} {:>5}",
            "adaptive",
            adaptive.replications,
            adaptive.output.summary.p_success,
            hw,
            adaptive_ms,
            if adaptive.target_met { "yes" } else { "cap" }
        );
    }
    out
}

/// R11 — rare-event estimation: multilevel splitting vs brute-force
/// Monte-Carlo on an all-exponential stage chain whose attack-success
/// probability (≈ 1e-7) sits far below the reach of any plain
/// replication budget, cross-checked against the exact CTMC
/// first-passage value. The brute-force cost for the splitting run's
/// achieved half-width is Wald-sized at the exact probability and
/// priced in empirical ticks per walk, so the printed speedup compares
/// equal-precision tick budgets. A campaign-milestone splitting
/// measurement on the SCoPE plant rides along to record the
/// end-to-end path.
#[must_use]
pub fn r11_rare_event(scale: Scale) -> String {
    use diversify_attack::split::StageChainTask;
    use diversify_core::runner::measure_configuration_splitting;
    use diversify_des::splitting::Splitting;
    use diversify_stats::product_proportion_ci;

    let population = scale.reps(600, 4_000);
    let params = vec![
        StageParams {
            success_probability: 0.02,
            attempt_rate_per_hour: 1.0,
        };
        4
    ];
    let horizon = 2.0;

    // The exact CTMC value — the oracle the estimate must bracket.
    let model = compile_stage_chain(&params).expect("valid stage chain");
    let success = success_place(&model);
    let exact = solve(
        &model,
        &[RewardSpec::first_passage("tta", move |m| {
            m.tokens(success) == 1
        })],
        Method::Analytic {
            horizon: SimTime::from_secs(horizon),
            tol: 1e-13,
            max_states: 64,
        },
    )
    .expect("stage chain is analytic-solvable")
    .estimate("tta")
    .expect("reward present")
    .probability(0);

    let task = StageChainTask::new(params, horizon);
    let start = std::time::Instant::now();
    let run = Splitting::try_new(population, 0x5EED_2013)
        .expect("population > 0")
        .run(&task, &Executor::default())
        .expect("chain task has levels");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let ci = product_proportion_ci(&run.conditionals(), 0.95).expect("executed levels");
    let inside = ci.lower <= exact && exact <= ci.upper;

    // Equal-precision brute-force cost: Wald replication count for the
    // splitting run's relative half-width, priced at the empirical mean
    // ticks per full-chain walk.
    let sample = 2_000u64;
    #[allow(clippy::cast_precision_loss)]
    let ticks_per_walk =
        (0..sample).map(|s| task.walk(0xAB ^ s).1).sum::<u64>() as f64 / sample as f64;
    let rel_half = (ci.upper - ci.lower) / 2.0 / run.estimate.max(f64::MIN_POSITIVE);
    let z = 1.96;
    let brute_reps = z * z * (1.0 - exact) / (exact * rel_half * rel_half);
    let brute_ticks = brute_reps * ticks_per_walk;
    #[allow(clippy::cast_precision_loss)]
    let speedup = brute_ticks / run.total_ticks as f64;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "stage chain: 4 stages, p=0.02, rate=1.0/h, horizon {horizon}h"
    );
    let _ = writeln!(out, "exact CTMC P_SA            = {exact:.4e}");
    let _ = writeln!(
        out,
        "splitting estimate         = {:.4e}  (population {population}, {} levels)",
        run.estimate,
        run.levels.len()
    );
    let _ = writeln!(
        out,
        "splitting 95% CI           = [{:.4e}, {:.4e}]  exact inside: {}",
        ci.lower,
        ci.upper,
        if inside { "yes" } else { "NO" }
    );
    let survivors = run
        .levels
        .iter()
        .map(|l| l.survivors.to_string())
        .collect::<Vec<_>>()
        .join("/");
    let _ = writeln!(
        out,
        "survivors per level        = {survivors}  ({} ticks, {wall_ms:.2} ms)",
        run.total_ticks
    );
    let _ = writeln!(
        out,
        "equal-precision brute force = {brute_reps:.3e} reps ~ {brute_ticks:.3e} ticks"
    );
    let _ = writeln!(
        out,
        "splitting tick speedup      = {speedup:.0}x (>=20x required)"
    );

    // End-to-end campaign path: goal-implied milestones on SCoPE.
    let net = ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone();
    let campaign = measure_configuration_splitting(
        &net,
        &ThreatModel::stuxnet_like(),
        CampaignConfig::default(),
        scale.reps(200, 600),
        0x5EED,
        Executor::default(),
        0.95,
    )
    .expect("valid splitting configuration");
    let trace = campaign
        .levels
        .iter()
        .map(|l| l.survivors.to_string())
        .collect::<Vec<_>>()
        .join("/");
    let _ = writeln!(
        out,
        "campaign splitting (SCoPE)  = {:.3} in [{:.3}, {:.3}], survivors {trace}",
        campaign.estimate, campaign.ci.lower, campaign.ci.upper
    );
    out
}

/// R12 — the sharded indicator service: cold request vs memoized
/// replay, with the bit-identity check against a local unsharded run.
#[must_use]
pub fn r12_indicator_service(scale: Scale) -> String {
    use diversify_serve::service::{IndicatorRequest, IndicatorService, ServiceOptions};

    let batches = scale.reps(4, 16);
    let batch_size = scale.reps(5, 25);
    let request = IndicatorRequest::fixed(
        ScopeConfig::default(),
        ThreatModel::stuxnet_like(),
        CampaignConfig::default(),
        batches,
        batch_size,
        0x5E27E,
    );

    let service = IndicatorService::in_process(2, ServiceOptions::default());
    let start = std::time::Instant::now();
    let cold = service.request(&request);
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = std::time::Instant::now();
    let replay = service.request(&request);
    let replay_ms = start.elapsed().as_secs_f64() * 1e3;

    let net = ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone();
    let sim = CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
    let local = Executor::default().run_ws(
        &campaign_plan(batches, batch_size, 0x5E27E),
        || sim.workspace(),
        |ws, rep| sim.run_into(ws, rep.seed),
        &diversify_core::exec::MeasurementsCollector,
    );
    let served = cold.measurements.as_ref().expect("clean sweep");
    let identical = served.batch_p_success == local.batch_p_success
        && served.batch_compromised == local.batch_compromised;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "cold request     = {} replications over 2 workers, {cold_ms:.2} ms",
        cold.new_replications
    );
    let _ = writeln!(
        out,
        "memoized replay  = {} replications (from_cache: {}), {replay_ms:.3} ms",
        replay.new_replications, replay.from_cache
    );
    let _ = writeln!(
        out,
        "sharded == local = {identical} (P_SA {:.3}, compromised {:.3})",
        served.summary.p_success, served.summary.mean_compromised_ratio
    );
    out
}

/// A cyclic three-queue SAN with `tokens` circulating customers — the
/// configurable-size workload behind the `san_analytic_throughput`
/// bench: `(tokens+1)(tokens+2)/2` tangible states, all exponential.
#[must_use]
pub fn analytic_bench_model(tokens: u32) -> diversify_san::SanModel {
    let mut b = diversify_san::SanBuilder::new();
    let q0 = b.place("q0", tokens);
    let q1 = b.place("q1", 0);
    let q2 = b.place("q2", 0);
    for (name, from, to, rate) in [
        ("move01", q0, q1, 1.0),
        ("move12", q1, q2, 1.5),
        ("move20", q2, q0, 2.0),
    ] {
        b.timed_activity(
            name,
            diversify_san::FiringDistribution::Exponential { rate },
        )
        .input_arc(from, 1)
        .output_arc(to, 1)
        .build();
    }
    b.build().expect("queue model is valid")
}

/// Explores `model` and runs one uniformization transient to `horizon` —
/// the workload timed by `san_analytic_throughput`. Returns the state
/// count and the number of uniformization steps so the bench can report
/// workload size.
///
/// # Panics
///
/// Panics if the model is not analytic-solvable (a bench-setup bug).
#[must_use]
pub fn analytic_throughput(model: &diversify_san::SanModel, horizon: f64) -> (usize, usize) {
    let space = diversify_san::explore(model, &[], diversify_san::ExploreOptions::default())
        .expect("bench model explores");
    let chain = diversify_san::Ctmc::from_state_space(&space);
    let sol = chain.transient(space.initial(), horizon, 1e-9);
    (space.state_count(), sol.steps)
}

/// Compiles the default SCoPE plant against the Stuxnet-like threat into
/// a SAN — the mid-size model behind `san_sim_throughput`. Build it once
/// outside any timed loop so benches measure simulation, not compilation.
///
/// # Panics
///
/// Panics if the SCoPE network fails to compile into a SAN (a build bug).
#[must_use]
pub fn scope_campaign_san() -> diversify_attack::to_san::NetworkCampaignSan {
    let net = ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone();
    diversify_attack::to_san::compile_network_campaign(&net, &ThreatModel::stuxnet_like())
        .expect("SCoPE network compiles")
}

/// Runs `reps` replications of `model` on the given engine and returns
/// the total number of activity firings — the workload behind the
/// `san_sim_throughput` bench (divide by wall time for events/sec).
/// One [`SimState`](diversify_san::SimState) is recycled through every
/// replication, so the loop measures simulation, not setup.
#[must_use]
pub fn san_throughput_events(
    model: &diversify_san::SanModel,
    engine: diversify_san::Engine,
    reps: u32,
    horizon_hours: f64,
) -> u64 {
    let mut events = 0u64;
    let mut state = diversify_san::SimState::new(model);
    for rep in 0..reps {
        let mut sim =
            diversify_san::Simulator::with_state(model, u64::from(rep) + 1, engine, state);
        sim.run_until(SimTime::from_secs(horizon_hours));
        events += sim.firings();
        state = sim.into_state();
    }
    events
}

/// The campaign replication-throughput workload on the **workspace
/// executor**: every worker keeps one
/// [`CampaignWorkspace`](diversify_attack::campaign::CampaignWorkspace)
/// across its replications and folds scalar
/// [`CampaignStats`](diversify_attack::campaign::CampaignStats) into the
/// streaming [`IndicatorsCollector`] — the allocation-free hot path the
/// `campaign_replication_throughput` bench times.
#[must_use]
pub fn campaign_workspace_summary(
    sim: &CampaignSimulator<'_>,
    plan: &ReplicationPlan,
    executor: Executor,
) -> diversify_core::indicators::IndicatorSummary {
    executor.run_ws(
        plan,
        || sim.workspace(),
        |ws, rep| sim.run_into(ws, rep.seed),
        &IndicatorsCollector,
    )
}

/// The pre-workspace reference path for the same workload
/// ([`CampaignSimulator::run_reference`]): every replication allocates
/// fresh state/curve/rooted buffers (curve eagerly reserved for
/// `max_ticks + 1`), rescans the rooted set every tick, and
/// materializes a full
/// [`CampaignOutcome`](diversify_attack::campaign::CampaignOutcome)
/// before the collector reduces it to scalars. Kept as the baseline the
/// `campaign_replication_throughput` bench compares against; results
/// are bit-identical to [`campaign_workspace_summary`].
#[must_use]
pub fn campaign_alloc_reference_summary(
    sim: &CampaignSimulator<'_>,
    plan: &ReplicationPlan,
    executor: Executor,
) -> diversify_core::indicators::IndicatorSummary {
    executor.collect(
        plan,
        |rep| sim.run_reference(rep.seed),
        &IndicatorsCollector,
    )
}

/// What [`hardened_overhead_probe`] measured: per-replication wall time
/// of the campaign replication workload on the strict workspace path
/// (`run_ws` — itself routed through the hardened executor core) and on
/// the explicitly budgeted path (`run_ws_budgeted` with an unlimited
/// [`RunPolicy`](diversify_core::exec::RunPolicy)), plus the ratio
/// between them. Both paths fold bit-identical summaries; the probe
/// asserts it.
#[derive(Debug, Clone, Copy)]
pub struct HardenedOverhead {
    /// Replications per timed pass.
    pub replications: u32,
    /// Strict (`run_ws`) per-replication microseconds.
    pub strict_us: f64,
    /// Budgeted (`run_ws_budgeted`) per-replication microseconds.
    pub budgeted_us: f64,
}

impl HardenedOverhead {
    /// `budgeted / strict` — the marginal cost of explicit budget and
    /// failure accounting on top of the (already hardened) strict path.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.budgeted_us / self.strict_us
    }
}

/// Times the `campaign_replication_throughput` workload on the strict
/// and on the budgeted executor paths in one process so the comparison
/// is immune to machine-to-machine drift. Passes alternate
/// strict/budgeted (so slow drift — thermal, co-tenant — hits both
/// paths equally) and the best (minimum) pass per path is reported,
/// which is the standard way to strip scheduler noise from a
/// throughput probe.
///
/// # Panics
///
/// Panics if the two paths disagree (they fold the same seeds through
/// the same collector, so disagreement is an executor bug).
#[must_use]
pub fn hardened_overhead_probe(scale: Scale, passes: u32) -> HardenedOverhead {
    use diversify_core::exec::RunPolicy;
    let reps = scale.reps(100, 400);
    let net = ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone();
    let sim = CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
    let plan = ReplicationPlan::flat(reps, 17).with_namespace(CAMPAIGN_RUN_NAMESPACE);
    let policy = RunPolicy::new();
    let time_one = |f: &dyn Fn() -> diversify_core::indicators::IndicatorSummary| -> f64 {
        let start = std::time::Instant::now();
        let out = f();
        let us = start.elapsed().as_secs_f64() * 1e6;
        std::hint::black_box(out);
        us
    };
    // Warm both paths once (sizes workspace pools and lazy state).
    let strict_out = campaign_workspace_summary(&sim, &plan, Executor::default());
    let budgeted_run = Executor::default().run_ws_budgeted(
        &plan,
        || sim.workspace(),
        |ws, rep| sim.run_into(ws, rep.seed),
        &IndicatorsCollector,
        &policy,
    );
    let budgeted_out = budgeted_run.output().expect("unbudgeted run completes");
    assert_eq!(
        strict_out.p_success.to_bits(),
        budgeted_out.p_success.to_bits(),
        "strict and budgeted paths must fold identically"
    );
    let (mut strict_best, mut budgeted_best) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..passes.max(1) {
        strict_best = strict_best.min(time_one(&|| {
            campaign_workspace_summary(&sim, &plan, Executor::default())
        }));
        budgeted_best = budgeted_best.min(time_one(&|| {
            Executor::default()
                .run_ws_budgeted(
                    &plan,
                    || sim.workspace(),
                    |ws, rep| sim.run_into(ws, rep.seed),
                    &IndicatorsCollector,
                    &policy,
                )
                .output
                .expect("unbudgeted run completes")
        }));
    }
    HardenedOverhead {
        replications: reps,
        strict_us: strict_best / f64::from(reps),
        budgeted_us: budgeted_best / f64::from(reps),
    }
}

/// Runs every experiment at the given scale, returning `(id, output)`
/// pairs.
#[must_use]
pub fn run_all(scale: Scale) -> Vec<(&'static str, String)> {
    vec![
        ("R1 motivating example", r1_motivating(scale)),
        ("R2 security indicators", r2_indicators(scale)),
        ("F1+R3+R4 pipeline (DoE + ANOVA)", r3_r4_pipeline(scale)),
        ("R5 sensitivity (placement)", r5_sensitivity(scale)),
        ("R6 threat models", r6_threats(scale)),
        ("R7 protocol-dialect ablation", r7_protocol(scale)),
        ("R8 formalism cross-check", r8_formalisms(scale)),
        ("R9 adaptive-precision replication", r9_adaptive(scale)),
        ("R11 rare-event splitting", r11_rare_event(scale)),
        ("R12 indicator service", r12_indicator_service(scale)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r1_table_shape() {
        let out = r1_motivating(Scale::Quick);
        assert_eq!(out.lines().count(), 10); // header + 9 rows
        assert!(out.contains("P_SA identical"));
    }

    #[test]
    fn r8_formalisms_agree() {
        let out = r8_formalisms(Scale::Quick);
        // 0.5^4 = 0.0625 appears from tree, BN, closed form, and the
        // analytic diverse machine chain (closed form + analytic).
        assert!(out.matches("0.062500").count() >= 5, "{out}");
        // Identical chain: one fresh exploit, P = 0.5 from both paths.
        assert!(out.contains("identical closed form 0.500000 / analytic 0.500000"));
    }

    #[test]
    fn analytic_bench_workload_shape() {
        let model = analytic_bench_model(20);
        let (states, steps) = analytic_throughput(&model, 50.0);
        assert_eq!(states, 21 * 22 / 2);
        assert!(steps > 0);
    }

    #[test]
    fn workspace_and_reference_campaign_paths_agree() {
        let net = ScopeSystem::build(&ScopeConfig::default())
            .network()
            .clone();
        let sim = CampaignSimulator::new(
            &net,
            ThreatModel::stuxnet_like(),
            CampaignConfig {
                max_ticks: 24 * 10,
                detection_stops_attack: false,
            },
        );
        let plan = ReplicationPlan::flat(30, 17).with_namespace(CAMPAIGN_RUN_NAMESPACE);
        for exec in [Executor::serial(), Executor::parallel()] {
            let ws = campaign_workspace_summary(&sim, &plan, exec);
            let reference = campaign_alloc_reference_summary(&sim, &plan, exec);
            assert_eq!(ws.replications, reference.replications);
            assert_eq!(ws.successes, reference.successes);
            assert_eq!(ws.detections, reference.detections);
            assert_eq!(ws.p_success.to_bits(), reference.p_success.to_bits());
            assert_eq!(ws.mean_tta, reference.mean_tta);
            assert_eq!(ws.mean_ttsf, reference.mean_ttsf);
            assert_eq!(
                ws.mean_compromised_ratio.to_bits(),
                reference.mean_compromised_ratio.to_bits()
            );
        }
    }

    #[test]
    fn r7_runs() {
        let out = r7_protocol(Scale::Quick);
        assert!(out.contains("single-dialect"));
        assert!(out.contains("rotated-dialects"));
    }

    #[test]
    fn r11_meets_the_rare_event_efficiency_bar() {
        let out = r11_rare_event(Scale::Quick);
        assert!(out.contains("exact inside: yes"), "{out}");
        let speedup: f64 = out
            .lines()
            .find(|l| l.starts_with("splitting tick speedup"))
            .and_then(|l| l.split('=').nth(1))
            .and_then(|v| v.trim().split('x').next())
            .and_then(|v| v.parse().ok())
            .expect("speedup line present");
        assert!(speedup >= 20.0, "tick speedup {speedup} below 20x\n{out}");
        assert!(out.contains("campaign splitting (SCoPE)"), "{out}");
    }

    #[test]
    fn r9_compares_fixed_and_adaptive() {
        let out = r9_adaptive(Scale::Quick);
        assert!(out.contains("fixed"));
        assert!(out.contains("adaptive"));
        assert!(out.contains("monoculture"));
        // Two modes per design point.
        assert_eq!(out.lines().count(), 2 + 4, "{out}");
    }
}
