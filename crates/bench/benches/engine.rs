//! Engine-level microbenchmarks, independent of the experiment suite, so
//! regressions inside the SAN simulation core are visible even when the
//! end-to-end experiments mask them.
//!
//! `san_sim_throughput` drives the mid-size SCoPE-derived network-campaign
//! SAN (≈32 places, ≈53 activities with declared-gate enablement) on both
//! engines. The model is compiled once, outside the timed loop, so the
//! samples measure simulation only; the printed mean time divided by the
//! events-per-iteration line gives the per-event cost.

// Bench harness: the unwrap/expect ban (clippy.toml) is the library
// discipline of diversify-des/diversify-core; a bench aborting on a
// malformed workload is the right behavior.
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, criterion_main, Criterion};
use diversify_attack::campaign::{
    CampaignConfig, CampaignSimulator, ThreatModel, CAMPAIGN_RUN_NAMESPACE,
};
use diversify_attack::split::StageChainTask;
use diversify_attack::to_san::StageParams;
use diversify_bench::{
    analytic_bench_model, analytic_throughput, campaign_alloc_reference_summary,
    campaign_workspace_summary, san_throughput_events, scope_campaign_san,
};
use diversify_core::exec::{
    campaign_plan, Executor, IndicatorsCollector, ReplicationPlan, RunPolicy,
};
use diversify_core::runner::{measure_configuration_adaptive, PrecisionTarget};
use diversify_san::Engine;
use diversify_scada::fleet::{FleetConfig, FleetSystem};
use diversify_scada::scope::{ScopeConfig, ScopeSystem};
use std::hint::black_box;

const REPS: u32 = 40;
const HORIZON_HOURS: f64 = 5_000.0;
/// Tokens in the cyclic-queue analytic workload: 1326 tangible states.
const ANALYTIC_TOKENS: u32 = 50;
const ANALYTIC_HORIZON: f64 = 200.0;
/// Replications per iteration of the campaign-throughput benches (full
/// scale: the one-year default horizon).
const CAMPAIGN_REPS: u32 = 100;

fn bench_engine(c: &mut Criterion) {
    let san = scope_campaign_san();
    // Report the workload size once so timings translate to events/sec.
    let events = san_throughput_events(&san.model, Engine::Incremental, REPS, HORIZON_HOURS);
    println!("san_sim_throughput workload: {events} events per iteration");

    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("san_sim_throughput", |b| {
        b.iter(|| {
            black_box(san_throughput_events(
                &san.model,
                Engine::Incremental,
                REPS,
                HORIZON_HOURS,
            ))
        })
    });
    g.bench_function("san_sim_throughput_full_rescan", |b| {
        b.iter(|| {
            black_box(san_throughput_events(
                &san.model,
                Engine::FullRescan,
                REPS,
                HORIZON_HOURS,
            ))
        })
    });

    // Exact backend: state-space exploration plus one uniformization
    // transient over the cyclic-queue workload.
    let model = analytic_bench_model(ANALYTIC_TOKENS);
    let (states, steps) = analytic_throughput(&model, ANALYTIC_HORIZON);
    println!("san_analytic_throughput workload: {states} states, {steps} uniformization steps");
    g.bench_function("san_analytic_throughput", |b| {
        b.iter(|| black_box(analytic_throughput(black_box(&model), ANALYTIC_HORIZON)))
    });

    // Campaign replication throughput, full scale (default one-year
    // horizon): the workspace executor (per-worker CampaignWorkspace,
    // scalar CampaignStats fold, zero steady-state allocation) against
    // the reference per-replication-allocation path (fresh workspace +
    // materialized CampaignOutcome each seed). Identical seeds, identical
    // results — the ratio is pure allocation/locality overhead.
    let net = ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone();
    let campaign_sim =
        CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
    let campaign_plan_full =
        ReplicationPlan::flat(CAMPAIGN_REPS, 17).with_namespace(CAMPAIGN_RUN_NAMESPACE);
    println!(
        "campaign_replication_throughput workload: {CAMPAIGN_REPS} replications per iteration"
    );
    g.bench_function("campaign_replication_throughput", |b| {
        b.iter(|| {
            black_box(campaign_workspace_summary(
                black_box(&campaign_sim),
                &campaign_plan_full,
                Executor::default(),
            ))
        })
    });
    // The same workload through the explicitly budgeted entry point
    // (unwind catch + budget check + failure accounting per
    // replication). The strict path above already routes through the
    // hardened core, so this bench isolates the marginal cost of the
    // budget/retry bookkeeping — the PR's "within 5%" claim.
    let unlimited = RunPolicy::new();
    g.bench_function("campaign_replication_budgeted", |b| {
        b.iter(|| {
            black_box(
                Executor::default()
                    .run_ws_budgeted(
                        &campaign_plan_full,
                        || campaign_sim.workspace(),
                        |ws, rep| campaign_sim.run_into(ws, rep.seed),
                        &IndicatorsCollector,
                        &unlimited,
                    )
                    .output,
            )
        })
    });
    g.bench_function("campaign_replication_alloc_reference", |b| {
        b.iter(|| {
            black_box(campaign_alloc_reference_summary(
                black_box(&campaign_sim),
                &campaign_plan_full,
                Executor::default(),
            ))
        })
    });

    // The adaptive-precision measurement path on the default SCoPE
    // monoculture: batch-sized rounds, streaming fold, Wilson-interval
    // stop rule on P_SA. Regressions in the round/merge machinery (or a
    // stop rule that suddenly runs to the cap) show up here.
    let threat = ThreatModel::stuxnet_like();
    let campaign = CampaignConfig {
        max_ticks: 24 * 30,
        detection_stops_attack: false,
    };
    let target = PrecisionTarget::p_success(0.05, 20, 120);
    let plan = campaign_plan(1, 10, 31);
    let probe = measure_configuration_adaptive(
        &net,
        &threat,
        campaign,
        &plan,
        Executor::default(),
        &target,
    );
    println!(
        "measure_adaptive workload: {} replications to rel. half-width 0.05 (met: {})",
        probe.replications, probe.target_met
    );
    g.bench_function("measure_adaptive", |b| {
        b.iter(|| {
            black_box(measure_configuration_adaptive(
                black_box(&net),
                &threat,
                campaign,
                &plan,
                Executor::default(),
                &target,
            ))
        })
    });
    g.finish();
}

/// Fleet-scaling axis: replications/s of the event-driven frontier
/// engine across four decades of generated plant-family size, plus the
/// dense O(nodes)-per-tick reference sweep at 10^4 and 10^5 nodes for
/// the headline comparison recorded in `BENCH_5.json`. The horizon is
/// bounded (30 simulated days) so the workload is the same at every
/// size; fleets are built outside the timed loops.
fn bench_fleet_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign_fleet_scaling");
    g.sample_size(10);
    for &target in &[100usize, 1_000, 10_000, 100_000, 1_000_000] {
        let fleet = FleetSystem::build(&FleetConfig::sized(target, 0x5CA1E));
        let n = fleet.network().node_count();
        let campaign = CampaignConfig {
            max_ticks: 24 * 30,
            detection_stops_attack: false,
        };
        let sim = CampaignSimulator::new(fleet.network(), ThreatModel::stuxnet_like(), campaign);
        let mut ws = sim.workspace();
        let reps: u64 = if target <= 10_000 { 10 } else { 2 };
        println!("campaign_fleet_frontier_{target}: {n} nodes, {reps} replications/iteration");
        g.bench_function(&format!("campaign_fleet_frontier_{target}"), |b| {
            b.iter(|| {
                for seed in 0..reps {
                    black_box(sim.run_into(&mut ws, seed));
                }
            })
        });
        if target == 10_000 || target == 100_000 {
            let dense_reps: u64 = if target == 10_000 { 2 } else { 1 };
            g.bench_function(&format!("campaign_fleet_dense_{target}"), |b| {
                b.iter(|| {
                    for seed in 0..dense_reps {
                        black_box(sim.run_reference(seed));
                    }
                })
            });
        }
    }
    g.finish();
}

/// Lockstep-batching axis: replications/s of the scalar `run_into` loop
/// against the K-lane `run_batch_into` lockstep path over the *same*
/// seed schedule, at SCoPE scale and on a generated 10^4-node plant
/// family. Both paths produce bit-identical per-seed stats (guarded by
/// `tests/lockstep_differential.rs`), so the ratio is pure per-tick
/// amortization: one probability-table fill per batch against a catalog
/// recomputation per draw. Headline recorded in `BENCH_8.json`.
fn bench_lockstep(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign_lockstep_throughput");
    g.sample_size(10);
    let campaign = CampaignConfig {
        max_ticks: 24 * 30,
        detection_stops_attack: false,
    };
    let scope_net = ScopeSystem::build(&ScopeConfig::default())
        .network()
        .clone();
    let fleet = FleetSystem::build(&FleetConfig::sized(10_000, 0x5CA1E));
    // Lane width per workload: SCoPE lanes are tiny, so one wide batch;
    // a fleet campaign compromises ~half the 10^4-node plant, so each
    // lane round-robins a ~100 KB working set per tick — 2-lane groups
    // keep that L2-resident on the 1-core record host (wider groups
    // measurably thrash; see examples/lockstep_probe.rs to re-sweep).
    let workloads: [(&str, &diversify_scada::network::ScadaNetwork, u64, usize); 2] = [
        ("scope", &scope_net, 64, 64),
        ("fleet_10000", fleet.network(), 16, 2),
    ];
    for (label, net, reps, lanes) in workloads {
        let sim = CampaignSimulator::new(net, ThreatModel::stuxnet_like(), campaign);
        let seeds: Vec<u64> = (0..reps).map(|i| 0x10C5u64.wrapping_mul(i + 1)).collect();
        println!(
            "campaign_lockstep_{label}: {} nodes, {reps} replications/iteration, {lanes} lanes",
            net.node_count()
        );
        let mut scalar_ws = sim.workspace();
        g.bench_function(&format!("campaign_scalar_{label}"), |b| {
            b.iter(|| {
                for &seed in &seeds {
                    black_box(sim.run_into(&mut scalar_ws, seed));
                }
            })
        });
        let mut batched_ws = sim.batched_workspace();
        g.bench_function(&format!("campaign_lockstep_{label}"), |b| {
            b.iter(|| {
                for chunk in seeds.chunks(lanes) {
                    black_box(sim.run_batch_into(&mut batched_ws, chunk));
                }
            })
        });
    }
    g.finish();
}

/// Rare-event estimation cost: one multilevel-splitting pass over the
/// all-exponential four-stage rare chain (P_SA ≈ 1e-7, the R11 design
/// point) next to a brute-force batch of full-chain walks at a
/// comparable tick count. The bench tracks the per-tick cost of the
/// level machinery (checkpoint clone + survivor resample); the
/// statistical efficiency claim itself lives in R11/BENCH_7.json.
fn bench_rare_event_splitting(c: &mut Criterion) {
    use diversify_des::splitting::Splitting;
    let params = vec![
        StageParams {
            success_probability: 0.02,
            attempt_rate_per_hour: 1.0,
        };
        4
    ];
    let task = StageChainTask::new(params, 2.0);
    let mut g = c.benchmark_group("rare_event_splitting");
    g.sample_size(10);
    g.bench_function("splitting_population_500", |b| {
        b.iter(|| {
            black_box(
                Splitting::try_new(500, 0x5EED)
                    .expect("population > 0")
                    .run(black_box(&task), &Executor::default())
                    .expect("chain task has levels"),
            )
        })
    });
    g.bench_function("brute_force_walks_2000", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for seed in 0..2_000u64 {
                hits += u64::from(task.walk(black_box(seed)).0);
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn bench_indicator_service(c: &mut Criterion) {
    use diversify_attack::campaign::ThreatModel as Threat;
    use diversify_serve::service::{IndicatorRequest, IndicatorService, ServiceOptions};

    let request = IndicatorRequest::fixed(
        ScopeConfig::default(),
        Threat::stuxnet_like(),
        CampaignConfig::default(),
        4,
        25,
        0x5E27E,
    );
    let mut g = c.benchmark_group("service_request_throughput");
    g.sample_size(10);
    // Cold: a fresh service per iteration, so every request shards and
    // executes all 100 replications over the loopback workers.
    g.bench_function("service_request_cold", |b| {
        b.iter(|| {
            let service = IndicatorService::in_process(2, ServiceOptions::default());
            black_box(service.request(black_box(&request)))
        })
    });
    // Memoized: one service, the cell computed once up front; each
    // iteration is a content-addressed replay with zero replications.
    let service = IndicatorService::in_process(2, ServiceOptions::default());
    let warm = service.request(&request);
    assert!(!warm.degraded);
    g.bench_function("service_request_memoized", |b| {
        b.iter(|| {
            let response = service.request(black_box(&request));
            assert!(response.from_cache);
            black_box(response)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_engine,
    bench_fleet_scaling,
    bench_lockstep,
    bench_rare_event_splitting,
    bench_indicator_service
);
criterion_main!(benches);
