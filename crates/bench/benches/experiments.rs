//! Criterion benches: one target per experiment in DESIGN.md §3.
//!
//! Benches run the Quick scale — the goal is a regenerable, timed record
//! of every table/figure, not micro-optimization.

use criterion::{criterion_group, criterion_main, Criterion};
use diversify_bench::{
    r1_motivating, r2_indicators, r3_r4_pipeline, r5_sensitivity, r6_threats, r7_protocol,
    r8_formalisms, r9_adaptive, Scale,
};
use std::hint::black_box;

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("r1_motivating", |b| {
        b.iter(|| black_box(r1_motivating(Scale::Quick)))
    });
    g.bench_function("r2_indicators", |b| {
        b.iter(|| black_box(r2_indicators(Scale::Quick)))
    });
    g.bench_function("r3_r4_pipeline", |b| {
        b.iter(|| black_box(r3_r4_pipeline(Scale::Quick)))
    });
    g.bench_function("r5_sensitivity", |b| {
        b.iter(|| black_box(r5_sensitivity(Scale::Quick)))
    });
    g.bench_function("r6_threats", |b| {
        b.iter(|| black_box(r6_threats(Scale::Quick)))
    });
    g.bench_function("r7_protocol", |b| {
        b.iter(|| black_box(r7_protocol(Scale::Quick)))
    });
    g.bench_function("r8_formalisms", |b| {
        b.iter(|| black_box(r8_formalisms(Scale::Quick)))
    });
    g.bench_function("r9_adaptive", |b| {
        b.iter(|| black_box(r9_adaptive(Scale::Quick)))
    });
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
