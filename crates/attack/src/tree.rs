//! Attack trees: one of the paper's candidate attack-modeling formalisms.
//!
//! A tree combines basic attack steps (leaves, each with an independent
//! success probability) through AND and OR gates. Besides the success
//! probability of the root goal, the module computes **minimal cut sets**
//! — the irreducible combinations of basic steps that achieve the goal —
//! which identify the components whose diversification breaks the most
//! attack paths.

use std::collections::BTreeSet;
use std::fmt;

/// A node of an attack tree.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeNode {
    /// A basic attack step with a name and success probability.
    Leaf {
        /// Step name (e.g. `"exploit print spooler"`).
        name: String,
        /// Independent success probability.
        probability: f64,
    },
    /// Every child must succeed.
    And(Vec<TreeNode>),
    /// At least one child must succeed.
    Or(Vec<TreeNode>),
}

impl TreeNode {
    /// A leaf step.
    #[must_use]
    pub fn leaf(name: impl Into<String>, probability: f64) -> Self {
        TreeNode::Leaf {
            name: name.into(),
            probability,
        }
    }

    /// An AND gate.
    #[must_use]
    pub fn and(children: Vec<TreeNode>) -> Self {
        TreeNode::And(children)
    }

    /// An OR gate.
    #[must_use]
    pub fn or(children: Vec<TreeNode>) -> Self {
        TreeNode::Or(children)
    }
}

/// A validated attack tree.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackTree {
    root: TreeNode,
}

/// Error for invalid attack trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// A leaf probability was outside `[0, 1]`.
    BadProbability,
    /// A gate had no children.
    EmptyGate,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::BadProbability => write!(f, "leaf probability out of [0,1]"),
            TreeError::EmptyGate => write!(f, "gate with no children"),
        }
    }
}

impl std::error::Error for TreeError {}

impl AttackTree {
    /// Creates a tree after validation.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError`] for out-of-range leaf probabilities or empty
    /// gates.
    pub fn new(root: TreeNode) -> Result<Self, TreeError> {
        fn validate(node: &TreeNode) -> Result<(), TreeError> {
            match node {
                TreeNode::Leaf { probability, .. } => {
                    if !(0.0..=1.0).contains(probability) || probability.is_nan() {
                        Err(TreeError::BadProbability)
                    } else {
                        Ok(())
                    }
                }
                TreeNode::And(children) | TreeNode::Or(children) => {
                    if children.is_empty() {
                        return Err(TreeError::EmptyGate);
                    }
                    children.iter().try_for_each(validate)
                }
            }
        }
        validate(&root)?;
        Ok(AttackTree { root })
    }

    /// The root node.
    #[must_use]
    pub fn root(&self) -> &TreeNode {
        &self.root
    }

    /// Success probability of the root goal, assuming independent leaves.
    #[must_use]
    pub fn success_probability(&self) -> f64 {
        fn eval(node: &TreeNode) -> f64 {
            match node {
                TreeNode::Leaf { probability, .. } => *probability,
                TreeNode::And(children) => children.iter().map(eval).product(),
                TreeNode::Or(children) => {
                    1.0 - children.iter().map(|c| 1.0 - eval(c)).product::<f64>()
                }
            }
        }
        eval(&self.root)
    }

    /// Minimal cut sets: every irreducible set of leaf names whose joint
    /// success achieves the goal.
    #[must_use]
    pub fn minimal_cut_sets(&self) -> Vec<BTreeSet<String>> {
        fn cut_sets(node: &TreeNode) -> Vec<BTreeSet<String>> {
            match node {
                TreeNode::Leaf { name, .. } => {
                    vec![BTreeSet::from([name.clone()])]
                }
                TreeNode::Or(children) => children.iter().flat_map(cut_sets).collect(),
                TreeNode::And(children) => {
                    let mut acc: Vec<BTreeSet<String>> = vec![BTreeSet::new()];
                    for child in children {
                        let child_sets = cut_sets(child);
                        let mut next = Vec::with_capacity(acc.len() * child_sets.len());
                        for a in &acc {
                            for c in &child_sets {
                                let mut merged = a.clone();
                                merged.extend(c.iter().cloned());
                                next.push(merged);
                            }
                        }
                        acc = next;
                    }
                    acc
                }
            }
        }
        // Minimize: drop supersets.
        let mut sets = cut_sets(&self.root);
        sets.sort_by_key(BTreeSet::len);
        let mut minimal: Vec<BTreeSet<String>> = Vec::new();
        for s in sets {
            if !minimal.iter().any(|m| m.is_subset(&s)) {
                minimal.push(s);
            }
        }
        minimal
    }

    /// Recomputes the success probability with one leaf's probability
    /// replaced — the sensitivity hook used when assessing which step to
    /// harden/diversify.
    #[must_use]
    pub fn with_leaf_probability(&self, leaf_name: &str, p: f64) -> AttackTree {
        fn rewrite(node: &TreeNode, name: &str, p: f64) -> TreeNode {
            match node {
                TreeNode::Leaf {
                    name: n,
                    probability,
                } => TreeNode::Leaf {
                    name: n.clone(),
                    probability: if n == name { p } else { *probability },
                },
                TreeNode::And(ch) => {
                    TreeNode::And(ch.iter().map(|c| rewrite(c, name, p)).collect())
                }
                TreeNode::Or(ch) => TreeNode::Or(ch.iter().map(|c| rewrite(c, name, p)).collect()),
            }
        }
        AttackTree {
            root: rewrite(&self.root, leaf_name, p.clamp(0.0, 1.0)),
        }
    }
}

/// Builds the Stuxnet-like attack tree over the five-stage progression:
///
/// ```text
/// GOAL = AND(entry, escalation, reach-field, plc-payload)
/// entry = OR(usb, spear-phish)
/// reach-field = OR(via-gateway, via-engineering)
/// ```
///
/// Leaf probabilities are supplied by the caller (they come from the
/// exploit catalog evaluated against the system's component profiles).
#[must_use]
pub fn stuxnet_tree(
    p_usb: f64,
    p_phish: f64,
    p_escalate: f64,
    p_gateway: f64,
    p_engineering: f64,
    p_payload: f64,
) -> AttackTree {
    AttackTree::new(TreeNode::and(vec![
        TreeNode::or(vec![
            TreeNode::leaf("usb-infection", p_usb),
            TreeNode::leaf("spear-phish", p_phish),
        ]),
        TreeNode::leaf("privilege-escalation", p_escalate),
        TreeNode::or(vec![
            TreeNode::leaf("via-gateway", p_gateway),
            TreeNode::leaf("via-engineering", p_engineering),
        ]),
        TreeNode::leaf("plc-payload", p_payload),
    ]))
    .expect("statically valid tree")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_probability_is_identity() {
        let t = AttackTree::new(TreeNode::leaf("x", 0.42)).unwrap();
        assert!((t.success_probability() - 0.42).abs() < 1e-12);
    }

    #[test]
    fn and_multiplies_or_complements() {
        let and = AttackTree::new(TreeNode::and(vec![
            TreeNode::leaf("a", 0.5),
            TreeNode::leaf("b", 0.4),
        ]))
        .unwrap();
        assert!((and.success_probability() - 0.2).abs() < 1e-12);
        let or = AttackTree::new(TreeNode::or(vec![
            TreeNode::leaf("a", 0.5),
            TreeNode::leaf("b", 0.4),
        ]))
        .unwrap();
        assert!((or.success_probability() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn stuxnet_tree_reference_value() {
        let t = stuxnet_tree(0.6, 0.3, 0.5, 0.7, 0.4, 0.8);
        // entry = 1-(0.4*0.7) = 0.72; reach = 1-(0.3*0.6) = 0.82;
        // goal = 0.72 * 0.5 * 0.82 * 0.8 = 0.23616.
        assert!((t.success_probability() - 0.236_16).abs() < 1e-10);
    }

    #[test]
    fn minimal_cut_sets_of_stuxnet_tree() {
        let t = stuxnet_tree(0.5, 0.5, 0.5, 0.5, 0.5, 0.5);
        let cuts = t.minimal_cut_sets();
        // 2 entry options × 2 reach options = 4 minimal cut sets, each of
        // size 4 (entry, escalation, reach, payload).
        assert_eq!(cuts.len(), 4);
        for c in &cuts {
            assert_eq!(c.len(), 4);
            assert!(c.contains("privilege-escalation"));
            assert!(c.contains("plc-payload"));
        }
    }

    #[test]
    fn shared_subtree_cut_sets_minimize_across_branches() {
        // AND(OR(a, b), OR(a, c)): the shared leaf `a` makes the raw
        // product {a}, {a,c}, {a,b}, {b,c} — everything containing `a`
        // collapses into the singleton {a}, leaving exactly {a} and
        // {b,c}.
        let shared_a = || TreeNode::leaf("a", 0.5);
        let t = AttackTree::new(TreeNode::and(vec![
            TreeNode::or(vec![shared_a(), TreeNode::leaf("b", 0.5)]),
            TreeNode::or(vec![shared_a(), TreeNode::leaf("c", 0.5)]),
        ]))
        .unwrap();
        let cuts = t.minimal_cut_sets();
        assert_eq!(cuts.len(), 2, "cuts: {cuts:?}");
        assert!(cuts.contains(&BTreeSet::from(["a".to_string()])));
        assert!(cuts.contains(&BTreeSet::from(["b".to_string(), "c".to_string()])));

        // Deeper sharing: the whole AND(x, y) subtree appears under two
        // OR branches; its cut set must be reported once, and the
        // superset {x, y, z} from the sibling branch must be dropped.
        let shared = || TreeNode::and(vec![TreeNode::leaf("x", 0.4), TreeNode::leaf("y", 0.6)]);
        let t2 = AttackTree::new(TreeNode::or(vec![
            shared(),
            TreeNode::and(vec![shared(), TreeNode::leaf("z", 0.9)]),
        ]))
        .unwrap();
        let cuts2 = t2.minimal_cut_sets();
        assert_eq!(
            cuts2,
            vec![BTreeSet::from(["x".to_string(), "y".to_string()])]
        );
    }

    #[test]
    fn cut_sets_drop_supersets() {
        // OR(a, AND(a, b)) — {a} subsumes {a, b}.
        let t = AttackTree::new(TreeNode::or(vec![
            TreeNode::leaf("a", 0.5),
            TreeNode::and(vec![TreeNode::leaf("a", 0.5), TreeNode::leaf("b", 0.5)]),
        ]))
        .unwrap();
        let cuts = t.minimal_cut_sets();
        assert_eq!(cuts.len(), 1);
        assert!(cuts[0].contains("a"));
    }

    #[test]
    fn hardening_the_single_point_of_failure_matters_most() {
        let t = stuxnet_tree(0.6, 0.3, 0.5, 0.7, 0.4, 0.8);
        let base = t.success_probability();
        // Halve the payload step (in every cut set) vs halving one entry
        // option (in half the cut sets).
        let harden_payload = t
            .with_leaf_probability("plc-payload", 0.4)
            .success_probability();
        let harden_usb = t
            .with_leaf_probability("usb-infection", 0.3)
            .success_probability();
        assert!(harden_payload < harden_usb);
        assert!(harden_payload < base && harden_usb < base);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            AttackTree::new(TreeNode::leaf("x", 1.5)).unwrap_err(),
            TreeError::BadProbability
        );
        assert_eq!(
            AttackTree::new(TreeNode::and(vec![])).unwrap_err(),
            TreeError::EmptyGate
        );
        assert_eq!(
            AttackTree::new(TreeNode::or(vec![TreeNode::leaf("x", f64::NAN)])).unwrap_err(),
            TreeError::BadProbability
        );
    }

    #[test]
    fn probability_bounds_hold() {
        // Deep random-ish tree: probability stays in [0,1].
        let t = AttackTree::new(TreeNode::or(vec![
            TreeNode::and(vec![
                TreeNode::leaf("a", 0.99),
                TreeNode::or(vec![TreeNode::leaf("b", 0.7), TreeNode::leaf("c", 0.8)]),
            ]),
            TreeNode::leaf("d", 0.25),
        ]))
        .unwrap();
        let p = t.success_probability();
        assert!((0.0..=1.0).contains(&p));
    }
}
