//! The paper's Sec. I motivating example.
//!
//! *"Let us consider an attack that requires compromising two machines in
//! order to be successful. If the machines are identical, it suffices to
//! compromise one machine and then repeating the exploit for the other
//! (P_SA ≈ P_M). When the machines are different, P_SA ≈ P_M1 × P_M2."*
//!
//! [`chain_success_probability`] computes the closed form for a chain of
//! `k` machines with an arbitrary variant assignment;
//! [`simulate_chain`] estimates the same probability by Monte Carlo so
//! experiment R1 can show agreement.

use diversify_des::exec::MeanCollector;
use diversify_des::{Executor, ReplicationPlan, RngStream, StreamId};

/// A chain of machines the attacker must compromise in order. Each entry
/// is `(variant id, per-machine compromise probability)`.
///
/// Identical variant ids model the paper's "repeat the exploit" effect:
/// once the exploit works on a variant, later machines of the same variant
/// fall deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineChain {
    machines: Vec<(u32, f64)>,
}

impl MachineChain {
    /// Creates a chain.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or the chain is
    /// empty.
    #[must_use]
    pub fn new(machines: Vec<(u32, f64)>) -> Self {
        assert!(!machines.is_empty(), "chain needs at least one machine");
        for &(_, p) in &machines {
            assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        }
        MachineChain { machines }
    }

    /// A homogeneous chain: `k` identical machines with probability `p`.
    #[must_use]
    pub fn identical(k: usize, p: f64) -> Self {
        Self::new(vec![(0, p); k])
    }

    /// A fully diverse chain: `k` machines, all distinct variants, all
    /// with probability `p`.
    #[must_use]
    pub fn diverse(k: usize, p: f64) -> Self {
        Self::new((0..k).map(|i| (i as u32, p)).collect())
    }

    /// Chain length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the chain is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// The machines as `(variant, probability)` pairs.
    #[must_use]
    pub fn machines(&self) -> &[(u32, f64)] {
        &self.machines
    }
}

/// Exact success probability of compromising every machine in the chain,
/// under the paper's exploit-reuse semantics: the first machine of each
/// *distinct variant* must be compromised fresh (probability `p`); every
/// later machine of an already-broken variant falls with probability 1.
///
/// Identical machines: `P_SA = p` (one fresh exploit). Fully diverse:
/// `P_SA = Π pᵢ`.
///
/// # Examples
///
/// ```
/// use diversify_attack::{chain_success_probability, MachineChain};
///
/// let same = MachineChain::identical(2, 0.3);
/// assert!((chain_success_probability(&same) - 0.3).abs() < 1e-12);
///
/// let diff = MachineChain::diverse(2, 0.3);
/// assert!((chain_success_probability(&diff) - 0.09).abs() < 1e-12);
/// ```
#[must_use]
pub fn chain_success_probability(chain: &MachineChain) -> f64 {
    let mut broken: Vec<u32> = Vec::new();
    let mut p_total = 1.0;
    for &(variant, p) in chain.machines() {
        if broken.contains(&variant) {
            continue; // exploit reuse: free
        }
        p_total *= p;
        broken.push(variant);
    }
    p_total
}

/// Monte-Carlo estimate of the chain success probability, replicated on
/// the unified [`Executor`] layer (each replication draws from its own
/// plan-derived stream, so the estimate is independent of scheduling).
///
/// Each replication walks the chain; a fresh variant is broken with its
/// probability, a previously broken variant falls for free, and any
/// failure aborts the attack.
///
/// # Panics
///
/// Panics if `replications` is zero.
#[must_use]
pub fn simulate_chain(chain: &MachineChain, replications: u32, seed: u64) -> f64 {
    let plan = ReplicationPlan::flat(replications, seed).with_namespace(CHAIN_STREAM_NAMESPACE);
    Executor::default().collect(
        &plan,
        |rep| {
            let mut rng = RngStream::new(rep.seed, StreamId(0xC4A1));
            let mut broken: Vec<u32> = Vec::new();
            for &(variant, p) in chain.machines() {
                if broken.contains(&variant) {
                    continue;
                }
                if rng.bernoulli(p) {
                    broken.push(variant);
                } else {
                    return 0.0;
                }
            }
            1.0
        },
        &MeanCollector,
    )
}

/// Stream namespace for chain-walk replication seeds.
const CHAIN_STREAM_NAMESPACE: u64 = 0xC4A1_0000_0000_0000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_machines_cost_one_exploit() {
        for k in 1..8 {
            let chain = MachineChain::identical(k, 0.4);
            assert!((chain_success_probability(&chain) - 0.4).abs() < 1e-12);
        }
    }

    #[test]
    fn diverse_machines_multiply() {
        let chain = MachineChain::diverse(3, 0.5);
        assert!((chain_success_probability(&chain) - 0.125).abs() < 1e-12);
        let chain4 = MachineChain::diverse(4, 0.9);
        assert!((chain_success_probability(&chain4) - 0.9f64.powi(4)).abs() < 1e-12);
    }

    #[test]
    fn mixed_chain_counts_distinct_variants() {
        // Variants [A, B, A, B]: only two fresh exploits needed.
        let chain = MachineChain::new(vec![(0, 0.5), (1, 0.5), (0, 0.5), (1, 0.5)]);
        assert!((chain_success_probability(&chain) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_probabilities() {
        let chain = MachineChain::new(vec![(0, 0.8), (1, 0.25)]);
        assert!((chain_success_probability(&chain) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form() {
        for chain in [
            MachineChain::identical(4, 0.3),
            MachineChain::diverse(4, 0.3),
            MachineChain::new(vec![(0, 0.7), (1, 0.5), (0, 0.9), (2, 0.4)]),
        ] {
            let exact = chain_success_probability(&chain);
            let mc = simulate_chain(&chain, 200_000, 9);
            assert!(
                (exact - mc).abs() < 0.01,
                "exact {exact} vs Monte-Carlo {mc}"
            );
        }
    }

    #[test]
    fn diversity_strictly_helps_for_k_ge_2() {
        for k in 2..6 {
            let same = chain_success_probability(&MachineChain::identical(k, 0.6));
            let diff = chain_success_probability(&MachineChain::diverse(k, 0.6));
            assert!(diff < same, "k={k}: diversity must lower P_SA");
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_chain_rejected() {
        let _ = MachineChain::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_probability_rejected() {
        let _ = MachineChain::new(vec![(0, 1.5)]);
    }
}
