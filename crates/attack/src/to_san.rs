//! Compiles a five-stage attack progression into a stochastic activity
//! network, so the SAN solver can cross-check the other formalisms
//! (experiment R8).
//!
//! Each stage becomes a place; a timed activity moves the attack token
//! forward with a case distribution `{success: p, abort-and-retry: 1-p}`.
//! Failed attempts loop back to the same stage after the attempt delay, so
//! the SAN models *time* (geometric number of attempts × attempt
//! duration), not just eventual success.

use crate::stage::AttackStage;
use diversify_san::{FiringDistribution, SanBuilder, SanError, SanModel};

/// Per-stage parameters for the SAN compilation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageParams {
    /// Probability that one attempt completes the stage.
    pub success_probability: f64,
    /// Mean time between attempts, hours (exponential).
    pub attempt_rate_per_hour: f64,
}

/// Compiles stage parameters (one entry per transition between the five
/// stages, i.e. exactly 4 entries) into a SAN.
///
/// Place layout: `stage-0` … `stage-4`, with one token starting in
/// `stage-0`; place `stage-4` marks attack success.
///
/// # Errors
///
/// Returns [`SanError`] if parameters are out of domain.
///
/// # Panics
///
/// Panics if `params.len() != 4` (the five-stage model has four
/// transitions).
pub fn compile_stage_chain(params: &[StageParams]) -> Result<SanModel, SanError> {
    assert_eq!(
        params.len(),
        AttackStage::ALL.len() - 1,
        "five stages have four transitions"
    );
    let mut b = SanBuilder::new();
    let places: Vec<_> = AttackStage::ALL
        .iter()
        .enumerate()
        .map(|(i, s)| b.place(format!("stage-{i}-{s}"), u32::from(i == 0)))
        .collect();
    for (i, p) in params.iter().enumerate() {
        let from = places[i];
        let to = places[i + 1];
        b.timed_activity(
            format!("attempt-{i}"),
            FiringDistribution::Exponential {
                rate: p.attempt_rate_per_hour,
            },
        )
        .input_arc(from, 1)
        .case(p.success_probability.max(1e-12), vec![(to, 1)])
        .case((1.0 - p.success_probability).max(1e-12), vec![(from, 1)])
        .build();
    }
    b.build()
}

/// Returns the id of the success place (`stage-4`).
///
/// # Panics
///
/// Panics if `model` was not produced by [`compile_stage_chain`].
#[must_use]
pub fn success_place(model: &SanModel) -> diversify_san::PlaceId {
    model
        .place_by_name("stage-4-device-impairment")
        .expect("model built by compile_stage_chain")
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversify_des::SimTime;
    use diversify_san::{RewardSpec, TransientSolver};

    fn params(p: f64, rate: f64) -> Vec<StageParams> {
        vec![
            StageParams {
                success_probability: p,
                attempt_rate_per_hour: rate,
            };
            4
        ]
    }

    #[test]
    fn compiles_and_simulates() {
        let model = compile_stage_chain(&params(0.5, 1.0)).unwrap();
        assert_eq!(model.place_count(), 5);
        assert_eq!(model.activity_count(), 4);
        let success = success_place(&model);
        let solver = TransientSolver::new(SimTime::from_secs(1e6), 500, 3);
        let r = solver.solve(
            &model,
            &[RewardSpec::first_passage("tta", move |m| {
                m.tokens(success) == 1
            })],
        );
        // With an unbounded horizon every replication eventually succeeds.
        assert_eq!(r.estimate("tta").unwrap().occurrences, 500);
    }

    #[test]
    fn mean_time_matches_geometric_expectation() {
        // Each stage: attempts ~ Geometric(p), attempt gap ~ Exp(rate).
        // E[stage time] = 1/(p·rate) hours; 4 stages chain additively.
        let p = 0.25;
        let rate = 2.0; // per hour
        let model = compile_stage_chain(&params(p, rate)).unwrap();
        let success = success_place(&model);
        let solver = TransientSolver::new(SimTime::from_secs(1e9), 3000, 11);
        let r = solver.solve(
            &model,
            &[RewardSpec::first_passage("tta", move |m| {
                m.tokens(success) == 1
            })],
        );
        let mean_hours = r.estimate("tta").unwrap().stats.mean(); // seconds? no: rate is per hour → times are in "hours" since rate unit defines time
        let expected = 4.0 / (p * rate);
        assert!(
            (mean_hours - expected).abs() < 0.5,
            "mean {mean_hours} vs expected {expected}"
        );
    }

    #[test]
    fn higher_success_probability_is_faster() {
        let run = |p: f64| {
            let model = compile_stage_chain(&params(p, 1.0)).unwrap();
            let success = success_place(&model);
            TransientSolver::new(SimTime::from_secs(1e9), 1000, 5)
                .solve(
                    &model,
                    &[RewardSpec::first_passage("tta", move |m| {
                        m.tokens(success) == 1
                    })],
                )
                .estimate("tta")
                .unwrap()
                .stats
                .mean()
        };
        assert!(run(0.8) < run(0.2));
    }

    #[test]
    #[should_panic(expected = "four transitions")]
    fn wrong_transition_count_panics() {
        let _ = compile_stage_chain(&params(0.5, 1.0)[..2]);
    }
}
