//! Compiles a five-stage attack progression into a stochastic activity
//! network, so the SAN solver can cross-check the other formalisms
//! (experiment R8).
//!
//! Each stage becomes a place; a timed activity moves the attack token
//! forward with a case distribution `{success: p, abort-and-retry: 1-p}`.
//! Failed attempts loop back to the same stage after the attempt delay, so
//! the SAN models *time* (geometric number of attempts × attempt
//! duration), not just eventual success.

use crate::campaign::{AttackGoal, ThreatModel};
use crate::chain::MachineChain;
use crate::stage::AttackStage;
use diversify_san::{FiringDistribution, PlaceId, SanBuilder, SanError, SanModel};
use diversify_scada::network::{NodeRole, ScadaNetwork};

/// Per-stage parameters for the SAN compilation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageParams {
    /// Probability that one attempt completes the stage.
    pub success_probability: f64,
    /// Mean time between attempts, hours (exponential).
    pub attempt_rate_per_hour: f64,
}

/// Compiles stage parameters (one entry per transition between the five
/// stages, i.e. exactly 4 entries) into a SAN.
///
/// Place layout: `stage-0` … `stage-4`, with one token starting in
/// `stage-0`; place `stage-4` marks attack success.
///
/// # Errors
///
/// Returns [`SanError`] if parameters are out of domain.
///
/// # Panics
///
/// Panics if `params.len() != 4` (the five-stage model has four
/// transitions).
pub fn compile_stage_chain(params: &[StageParams]) -> Result<SanModel, SanError> {
    assert_eq!(
        params.len(),
        AttackStage::ALL.len() - 1,
        "five stages have four transitions"
    );
    let mut b = SanBuilder::new();
    let places: Vec<_> = AttackStage::ALL
        .iter()
        .enumerate()
        .map(|(i, s)| b.place(format!("stage-{i}-{s}"), u32::from(i == 0)))
        .collect();
    for (i, p) in params.iter().enumerate() {
        let from = places[i];
        let to = places[i + 1];
        b.timed_activity(
            format!("attempt-{i}"),
            FiringDistribution::Exponential {
                rate: p.attempt_rate_per_hour,
            },
        )
        .input_arc(from, 1)
        .case(p.success_probability.max(1e-12), vec![(to, 1)])
        .case((1.0 - p.success_probability).max(1e-12), vec![(from, 1)])
        .build();
    }
    b.build()
}

/// Returns the id of the success place (`stage-4`).
///
/// # Panics
///
/// Panics if `model` was not produced by [`compile_stage_chain`].
#[must_use]
pub fn success_place(model: &SanModel) -> diversify_san::PlaceId {
    model
        .place_by_name("stage-4-device-impairment")
        .expect("model built by compile_stage_chain")
}

/// A SAN compiled from a [`MachineChain`] by [`compile_machine_chain`],
/// plus the absorbing places reward queries need.
#[derive(Debug)]
pub struct MachineChainSan {
    /// The compiled model (all-exponential, so the analytic CTMC backend
    /// applies).
    pub model: SanModel,
    /// Absorbing place holding a token once every machine fell.
    pub success: PlaceId,
    /// Absorbing place holding a token once any fresh exploit failed.
    pub aborted: PlaceId,
}

/// Compiles the Sec. I machine chain into an all-exponential SAN, the
/// analytic-backend counterpart of
/// [`simulate_chain`](crate::chain::simulate_chain).
///
/// One position place per machine plus two absorbing places. A machine
/// whose variant is *fresh* at its position gets a timed exploit attempt
/// (`Exp(attempt_rate_per_hour)`) with cases `{p: advance, 1-p: abort}`
/// — any failure aborts the whole attack, exactly like the chain walk. A
/// machine whose variant already fell earlier in the chain is crossed by
/// an instantaneous activity (exploit reuse is free *and* immediate), so
/// the compiled model also exercises vanishing-state elimination.
///
/// The eventual probability of reaching `success` equals
/// [`chain_success_probability`](crate::chain::chain_success_probability)
/// exactly — the closed form the differential tests assert against.
///
/// # Errors
///
/// Returns [`SanError`] if `attempt_rate_per_hour` is out of domain.
pub fn compile_machine_chain(
    chain: &MachineChain,
    attempt_rate_per_hour: f64,
) -> Result<MachineChainSan, SanError> {
    let k = chain.len();
    let mut b = SanBuilder::new();
    let pos: Vec<PlaceId> = (0..=k)
        .map(|i| b.place(format!("pos-{i}"), u32::from(i == 0)))
        .collect();
    let aborted = b.place("aborted", 0);
    let mut broken: Vec<u32> = Vec::new();
    for (i, &(variant, p)) in chain.machines().iter().enumerate() {
        if broken.contains(&variant) {
            b.instantaneous_activity(format!("reuse-{i}"))
                .input_arc(pos[i], 1)
                .output_arc(pos[i + 1], 1)
                .build();
            continue;
        }
        broken.push(variant);
        let ab = b
            .timed_activity(
                format!("exploit-{i}"),
                FiringDistribution::Exponential {
                    rate: attempt_rate_per_hour,
                },
            )
            .input_arc(pos[i], 1);
        if p >= 1.0 {
            ab.output_arc(pos[i + 1], 1).build();
        } else if p <= 0.0 {
            ab.output_arc(aborted, 1).build();
        } else {
            ab.case(p, vec![(pos[i + 1], 1)])
                .case(1.0 - p, vec![(aborted, 1)])
                .build();
        }
    }
    let model = b.build()?;
    let success = pos[k];
    Ok(MachineChainSan {
        model,
        success,
        aborted,
    })
}

/// A SAN compiled from a plant network and a threat model by
/// [`compile_network_campaign`], plus the handles needed to pose reward
/// queries against it.
#[derive(Debug)]
pub struct NetworkCampaignSan {
    /// The compiled model.
    pub model: SanModel,
    /// Per-node "infected" places, in node order.
    pub infected: Vec<PlaceId>,
    /// Per-node "rooted" places, in node order.
    pub rooted: Vec<PlaceId>,
    /// Counter place incremented per reprogrammed PLC.
    pub impaired: PlaceId,
    /// Place marked when the defenders first perceive the attack.
    pub detected: PlaceId,
    /// Tokens `impaired` must reach for the campaign goal (sabotage
    /// threats; 0 for espionage threats, whose goal lives on `rooted`
    /// data-layer nodes).
    pub goal_tokens: u32,
}

impl NetworkCampaignSan {
    /// Marking predicate for campaign success (the paper's P_SA / TTA
    /// target state): `Some((impaired, needed))` for sabotage threats,
    /// `None` for espionage threats — their goal is data access, queried
    /// via [`Self::data_access_places`] instead (no activity ever feeds
    /// `impaired` under an espionage catalog, so an impairment predicate
    /// would silently never hold).
    #[must_use]
    pub fn success_tokens(&self) -> Option<(PlaceId, u32)> {
        (self.goal_tokens > 0).then_some((self.impaired, self.goal_tokens))
    }

    /// The `rooted` places of the data-layer nodes (historian and
    /// engineering workstations) in `net` — the espionage success
    /// targets: an exfiltration campaign succeeds once any of them holds
    /// a token.
    #[must_use]
    pub fn data_access_places(&self, net: &ScadaNetwork) -> Vec<PlaceId> {
        net.node_ids()
            .filter(|&id| {
                matches!(
                    net.role(id),
                    NodeRole::Historian | NodeRole::EngineeringWorkstation
                )
            })
            .map(|id| self.rooted[id.index()])
            .collect()
    }
}

/// Compiles a plant network plus a threat model into a continuous-time
/// SAN: per node an `inf`/`root` place pair, per directed link a lateral
/// activity, per PLC a payload activity, plus entry seeding and a
/// detection race. Attempt probabilities become exponential rates per
/// hour (probability × attempts/tick), the continuous-time analogue of
/// the tick-based [`CampaignSimulator`](crate::campaign::CampaignSimulator).
///
/// Every gate declares its read and write sets, so the compiled model
/// exercises the simulator's dependency-indexed fast path end to end —
/// this is the mid-size workload behind the `san_sim_throughput` bench
/// and the engine differential tests.
///
/// # Errors
///
/// Returns [`SanError`] if the network is empty of activities (e.g. no
/// entry points and no links).
pub fn compile_network_campaign(
    net: &ScadaNetwork,
    threat: &ThreatModel,
) -> Result<NetworkCampaignSan, SanError> {
    let cat = &threat.catalog;
    let attempts = f64::from(threat.attempts_per_tick.max(1));
    // An attempt probability p at one attempt per tick (hour) maps to a
    // hazard of -ln(1-p) per hour; clamp away from 0 and 1 so rates stay
    // finite and the model stays live.
    let rate_of =
        |p: f64, per_tick: f64| -> f64 { (-(1.0 - p.clamp(1e-9, 0.999)).ln()) * per_tick };

    let mut b = SanBuilder::new();
    let dormant = b.place("dormant", 1);
    let active = b.place("active", 0);
    let detected = b.place("detected", 0);
    let impaired = b.place("impaired", 0);
    let infected: Vec<PlaceId> = net
        .node_ids()
        .map(|id| b.place(format!("inf-{}", net.name(id)), 0))
        .collect();
    let rooted: Vec<PlaceId> = net
        .node_ids()
        .map(|id| b.place(format!("root-{}", net.name(id)), 0))
        .collect();

    // Entry seeding: the entry-point nodes race for the single dormant
    // token (USB stick / spear-phish, per the Stuxnet dossier).
    for id in net.node_ids() {
        if !net.role(id).is_entry_point() {
            continue;
        }
        b.timed_activity(
            format!("seed-{}", net.name(id)),
            FiringDistribution::Exponential {
                rate: rate_of(cat.infection_probability(net.profile(id)), 1.0),
            },
        )
        .input_arc(dormant, 1)
        .output_arc(infected[id.index()], 1)
        .output_arc(active, 1)
        .build();
    }

    // Privilege escalation per node: infected -> rooted.
    for id in net.node_ids() {
        b.timed_activity(
            format!("escalate-{}", net.name(id)),
            FiringDistribution::Exponential {
                rate: rate_of(cat.escalation_probability(net.profile(id)), 1.0),
            },
        )
        .input_arc(infected[id.index()], 1)
        .output_arc(rooted[id.index()], 1)
        .build();
    }

    // Lateral movement per directed link: a rooted source infects a
    // still-clean destination. Zone crossings fold in the firewall pass
    // probability, field targets the dialect-mismatch factor.
    for src in net.node_ids() {
        for &dst in net.neighbors(src) {
            let dst_profile = net.profile(dst);
            let mut p = cat.infection_probability(dst_profile);
            if net.crosses_zone(src, dst) {
                p *= cat.firewall_pass_probability(dst_profile);
            }
            let src_dialect = net.profile(src).dialect;
            let needs_dialect = matches!(net.role(dst), NodeRole::Plc | NodeRole::FieldGateway);
            if needs_dialect && src_dialect != dst_profile.dialect {
                p *= 0.05;
            }
            let (r_src, i_dst, r_dst) = (
                rooted[src.index()],
                infected[dst.index()],
                rooted[dst.index()],
            );
            b.timed_activity(
                format!("hop-{}-{}", net.name(src), net.name(dst)),
                FiringDistribution::Exponential {
                    rate: rate_of(p, attempts),
                },
            )
            .guard_reading(vec![r_src, i_dst, r_dst], move |m| {
                m.tokens(r_src) > 0 && m.tokens(i_dst) == 0 && m.tokens(r_dst) == 0
            })
            .output_arc(i_dst, 1)
            .build();
        }
    }

    // PLC payload delivery: needs a rooted foothold on the PLC itself or
    // a neighbor (gateway / engineering path). Sabotage threats only —
    // espionage catalogs have a zero payload probability.
    for id in net.node_ids() {
        if net.role(id) != NodeRole::Plc {
            continue;
        }
        let p = cat.plc_payload_probability(net.profile(id));
        if p == 0.0 {
            continue;
        }
        let pwn = b.place(format!("pwn-{}", net.name(id)), 0);
        let mut reads = vec![pwn, rooted[id.index()]];
        let mut footholds = vec![rooted[id.index()]];
        for &nb in net.neighbors(id) {
            reads.push(rooted[nb.index()]);
            footholds.push(rooted[nb.index()]);
        }
        b.timed_activity(
            format!("payload-{}", net.name(id)),
            FiringDistribution::Exponential {
                rate: rate_of(p, attempts),
            },
        )
        .guard_reading(reads, move |m| {
            m.tokens(pwn) == 0 && footholds.iter().any(|&f| m.tokens(f) > 0)
        })
        .output_arc(pwn, 1)
        .output_arc(impaired, 1)
        .build();
    }

    // Detection race: once any intrusion is active, the defenders may
    // notice (Time-To-Security-Failure).
    let p_detect = cat.detection_probability(
        &net.nodes_with_role(NodeRole::Historian)
            .first()
            .map(|&id| *net.profile(id))
            .unwrap_or_default(),
        &net.nodes_with_role(NodeRole::Plc)
            .first()
            .map(|&id| *net.profile(id))
            .unwrap_or_default(),
        false,
        threat.stealth,
    );
    b.timed_activity(
        "detect",
        FiringDistribution::Exponential {
            rate: rate_of(p_detect, 1.0),
        },
    )
    .guard_reading(vec![active, detected], move |m| {
        m.tokens(active) > 0 && m.tokens(detected) == 0
    })
    .output_arc(detected, 1)
    .build();

    let goal_tokens = match threat.goal {
        AttackGoal::ImpairDevices { fraction } => {
            let plcs = net.nodes_with_role(NodeRole::Plc).len();
            ((plcs as f64) * fraction).ceil().max(1.0) as u32
        }
        AttackGoal::Exfiltrate { .. } => 0,
    };

    Ok(NetworkCampaignSan {
        model: b.build()?,
        infected,
        rooted,
        impaired,
        detected,
        goal_tokens,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversify_des::SimTime;
    use diversify_san::{RewardSpec, TransientSolver};

    fn params(p: f64, rate: f64) -> Vec<StageParams> {
        vec![
            StageParams {
                success_probability: p,
                attempt_rate_per_hour: rate,
            };
            4
        ]
    }

    #[test]
    fn compiles_and_simulates() {
        let model = compile_stage_chain(&params(0.5, 1.0)).unwrap();
        assert_eq!(model.place_count(), 5);
        assert_eq!(model.activity_count(), 4);
        let success = success_place(&model);
        let solver = TransientSolver::new(SimTime::from_secs(1e6), 500, 3);
        let r = solver.solve(
            &model,
            &[RewardSpec::first_passage("tta", move |m| {
                m.tokens(success) == 1
            })],
        );
        // With an unbounded horizon every replication eventually succeeds.
        assert_eq!(r.estimate("tta").unwrap().occurrences, 500);
    }

    #[test]
    fn mean_time_matches_geometric_expectation() {
        // Each stage: attempts ~ Geometric(p), attempt gap ~ Exp(rate).
        // E[stage time] = 1/(p·rate) hours; 4 stages chain additively.
        let p = 0.25;
        let rate = 2.0; // per hour
        let model = compile_stage_chain(&params(p, rate)).unwrap();
        let success = success_place(&model);
        let solver = TransientSolver::new(SimTime::from_secs(1e9), 3000, 11);
        let r = solver.solve(
            &model,
            &[RewardSpec::first_passage("tta", move |m| {
                m.tokens(success) == 1
            })],
        );
        let mean_hours = r.estimate("tta").unwrap().stats.mean(); // seconds? no: rate is per hour → times are in "hours" since rate unit defines time
        let expected = 4.0 / (p * rate);
        assert!(
            (mean_hours - expected).abs() < 0.5,
            "mean {mean_hours} vs expected {expected}"
        );
    }

    #[test]
    fn higher_success_probability_is_faster() {
        let run = |p: f64| {
            let model = compile_stage_chain(&params(p, 1.0)).unwrap();
            let success = success_place(&model);
            TransientSolver::new(SimTime::from_secs(1e9), 1000, 5)
                .solve(
                    &model,
                    &[RewardSpec::first_passage("tta", move |m| {
                        m.tokens(success) == 1
                    })],
                )
                .estimate("tta")
                .unwrap()
                .stats
                .mean()
        };
        assert!(run(0.8) < run(0.2));
    }

    #[test]
    #[should_panic(expected = "four transitions")]
    fn wrong_transition_count_panics() {
        let _ = compile_stage_chain(&params(0.5, 1.0)[..2]);
    }

    mod machine_chain {
        use super::super::*;
        use crate::chain::chain_success_probability;
        use diversify_des::SimTime;
        use diversify_san::{solve, Method, RewardSpec};

        /// Analytic eventual success probability of the compiled chain.
        /// Every firing either advances or absorbs, so absorption happens
        /// within k firings and a horizon of a few hundred mean attempt
        /// times is exact to double precision.
        fn analytic_p_success(san: &MachineChainSan, chain_len: usize) -> f64 {
            let success = san.success;
            let horizon = 200.0 * chain_len as f64;
            let r = solve(
                &san.model,
                &[RewardSpec::first_passage("win", move |m| {
                    m.tokens(success) == 1
                })],
                Method::Analytic {
                    horizon: SimTime::from_secs(horizon),
                    tol: 1e-13,
                    max_states: 1_000,
                },
            )
            .expect("chain SAN is analytic-solvable");
            r.estimate("win").unwrap().probability(0)
        }

        #[test]
        fn identical_chain_matches_closed_form() {
            let chain = MachineChain::identical(4, 0.3);
            let san = compile_machine_chain(&chain, 1.0).unwrap();
            let p = analytic_p_success(&san, chain.len());
            assert!(
                (p - chain_success_probability(&chain)).abs() < 1e-9,
                "analytic {p} vs closed form {}",
                chain_success_probability(&chain)
            );
        }

        #[test]
        fn diverse_chain_matches_closed_form() {
            let chain = MachineChain::diverse(3, 0.5);
            let san = compile_machine_chain(&chain, 2.0).unwrap();
            let p = analytic_p_success(&san, chain.len());
            assert!((p - 0.125).abs() < 1e-9, "analytic {p}");
        }

        #[test]
        fn mixed_chain_reuses_exploits_instantaneously() {
            // Variants [A, B, A]: position 2 is crossed by an
            // instantaneous reuse activity.
            let chain = MachineChain::new(vec![(0, 0.6), (1, 0.5), (0, 0.9)]);
            let san = compile_machine_chain(&chain, 1.0).unwrap();
            assert!(san.model.activity_by_name("reuse-2").is_some());
            let p = analytic_p_success(&san, chain.len());
            assert!((p - 0.3).abs() < 1e-9, "analytic {p}");
        }

        #[test]
        fn degenerate_probabilities_compile() {
            let chain = MachineChain::new(vec![(0, 1.0), (1, 0.5)]);
            let san = compile_machine_chain(&chain, 1.0).unwrap();
            let p = analytic_p_success(&san, chain.len());
            assert!((p - 0.5).abs() < 1e-9);
            let doomed = MachineChain::new(vec![(0, 0.0)]);
            let san = compile_machine_chain(&doomed, 1.0).unwrap();
            assert!(analytic_p_success(&san, 1) < 1e-12);
        }
    }

    mod network_campaign {
        use super::super::*;
        use diversify_des::SimTime;
        use diversify_san::Simulator;
        use diversify_scada::scope::{ScopeConfig, ScopeSystem};

        fn scope_net() -> ScadaNetwork {
            ScopeSystem::build(&ScopeConfig::default())
                .network()
                .clone()
        }

        #[test]
        fn compiles_scope_network() {
            let net = scope_net();
            let san = compile_network_campaign(&net, &ThreatModel::stuxnet_like()).unwrap();
            // dormant/active/detected/impaired + 2 per node + 1 per PLC.
            assert_eq!(san.model.place_count(), 4 + 2 * net.node_count() + 4);
            assert!(san.model.activity_count() > 2 * net.link_count());
            assert_eq!(san.goal_tokens, 2); // 50% of 4 PLCs
                                            // Declared gates everywhere: no conservative fallbacks.
            assert!(san.model.conservative_read_activities().is_empty());
        }

        #[test]
        fn stuxnet_campaign_reaches_goal() {
            let net = scope_net();
            let san = compile_network_campaign(&net, &ThreatModel::stuxnet_like()).unwrap();
            let (place, need) = san.success_tokens().expect("sabotage goal");
            let mut sim = Simulator::new(&san.model, 11);
            let t = sim.run_until_condition(SimTime::from_secs(24.0 * 365.0), |m| {
                m.tokens(place) >= need
            });
            assert!(t.is_some(), "sabotage should eventually impair PLCs");
        }

        #[test]
        fn espionage_threats_never_impair() {
            let net = scope_net();
            let san = compile_network_campaign(&net, &ThreatModel::duqu_like()).unwrap();
            // No impairment predicate exists for espionage threats …
            assert_eq!(san.success_tokens(), None);
            let mut sim = Simulator::new(&san.model, 5);
            sim.run_until(SimTime::from_secs(24.0 * 365.0));
            assert_eq!(sim.marking().tokens(san.impaired), 0);
            // … their goal is data access, and it is reachable.
            let targets = san.data_access_places(&net);
            assert_eq!(targets.len(), 2); // historian + engineering
            assert!(
                targets.iter().any(|&p| sim.marking().tokens(p) > 0),
                "espionage campaign should root a data-layer node within a year"
            );
        }
    }
}
