//! A hierarchical bitset for event-driven frontier iteration.
//!
//! The frontier campaign engine needs a set of node indexes supporting
//! O(1) insert/remove/membership, **ascending-order traversal that costs
//! O(set size)** rather than O(universe), and a clear that only touches
//! what was set. A sorted `Vec` gives the traversal order but O(len)
//! inserts (quadratic over a full sweep); a `BTreeSet` allocates per
//! node. [`ActiveSet`] is a three-level bitset instead: level 0 holds
//! one bit per index, level 1 one bit per level-0 word, level 2 one bit
//! per level-1 word. At 10^6 indexes the summary levels total ~250
//! words, so [`ActiveSet::next_at_or_after`] skips empty regions in a
//! handful of word reads and a sparse set traverses in time proportional
//! to its population.
//!
//! Traversal is cursor-based on purpose: the campaign engine mutates the
//! set mid-iteration (nodes saturate out of the frontier, PLCs become
//! payload-eligible), and `next_at_or_after(cursor)` makes the
//! visit-or-skip rule explicit — mutations behind the cursor are not
//! revisited, mutations ahead of it are seen this pass, exactly the
//! semantics of a dense ascending scan that re-checks eligibility at
//! visit time.

/// Bits of `word` strictly above `bit`.
fn after_mask(bit: usize) -> u64 {
    if bit == 63 {
        0
    } else {
        !0u64 << (bit + 1)
    }
}

/// A set of `usize` indexes below a fixed capacity, stored as a
/// three-level bitset. All operations are allocation-free after
/// [`ActiveSet::resize`].
#[derive(Debug, Clone, Default)]
pub struct ActiveSet {
    /// One bit per index.
    l0: Vec<u64>,
    /// One bit per `l0` word: "that word is non-zero".
    l1: Vec<u64>,
    /// One bit per `l1` word.
    l2: Vec<u64>,
    len: usize,
    capacity: usize,
}

impl ActiveSet {
    /// An empty set accepting indexes in `0..capacity`.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let mut set = ActiveSet::default();
        set.resize(capacity);
        set
    }

    /// Empties the set and changes its capacity, reusing the word
    /// buffers where possible.
    pub fn resize(&mut self, capacity: usize) {
        let w0 = capacity.div_ceil(64);
        let w1 = w0.div_ceil(64);
        let w2 = w1.div_ceil(64);
        self.l0.clear();
        self.l0.resize(w0, 0);
        self.l1.clear();
        self.l1.resize(w1, 0);
        self.l2.clear();
        self.l2.resize(w2, 0);
        self.len = 0;
        self.capacity = capacity;
    }

    /// The exclusive upper bound on member indexes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `i` is a member.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.capacity, "index {i} out of capacity");
        self.l0[i / 64] & (1 << (i % 64)) != 0
    }

    /// Adds `i`; a no-op if already present.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.capacity, "index {i} out of capacity");
        let w0 = i / 64;
        let bit = 1u64 << (i % 64);
        if self.l0[w0] & bit != 0 {
            return;
        }
        self.l0[w0] |= bit;
        let w1 = w0 / 64;
        self.l1[w1] |= 1 << (w0 % 64);
        self.l2[w1 / 64] |= 1 << (w1 % 64);
        self.len += 1;
    }

    /// Removes `i`; a no-op if absent. Summary bits are pruned as words
    /// empty, so traversal never visits dead regions.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.capacity, "index {i} out of capacity");
        let w0 = i / 64;
        let bit = 1u64 << (i % 64);
        if self.l0[w0] & bit == 0 {
            return;
        }
        self.l0[w0] &= !bit;
        self.len -= 1;
        if self.l0[w0] == 0 {
            let w1 = w0 / 64;
            self.l1[w1] &= !(1 << (w0 % 64));
            if self.l1[w1] == 0 {
                self.l2[w1 / 64] &= !(1 << (w1 % 64));
            }
        }
    }

    /// The smallest member `>= from`, or `None`. The traversal idiom is
    ///
    /// ```
    /// # use diversify_attack::frontier::ActiveSet;
    /// # let mut set = ActiveSet::with_capacity(100);
    /// # set.insert(3);
    /// let mut cursor = 0;
    /// while let Some(i) = set.next_at_or_after(cursor) {
    ///     cursor = i + 1;
    ///     // visit i; inserts/removes at any position are fine here
    /// }
    /// ```
    #[must_use]
    pub fn next_at_or_after(&self, from: usize) -> Option<usize> {
        if self.len == 0 || from >= self.capacity {
            return None;
        }
        let w0 = from / 64;
        let bits = self.l0[w0] & (!0u64 << (from % 64));
        if bits != 0 {
            return Some(w0 * 64 + bits.trailing_zeros() as usize);
        }
        // Current word exhausted: climb the summaries for the next
        // non-empty level-0 word.
        let w1 = w0 / 64;
        let bits1 = self.l1[w1] & after_mask(w0 % 64);
        let next_w0 = if bits1 != 0 {
            w1 * 64 + bits1.trailing_zeros() as usize
        } else {
            let w2 = w1 / 64;
            let bits2 = self.l2[w2] & after_mask(w1 % 64);
            let next_w1 = if bits2 != 0 {
                w2 * 64 + bits2.trailing_zeros() as usize
            } else {
                let (off, word) = self.l2[w2 + 1..]
                    .iter()
                    .enumerate()
                    .find(|(_, &w)| w != 0)?;
                (w2 + 1 + off) * 64 + word.trailing_zeros() as usize
            };
            next_w1 * 64 + self.l1[next_w1].trailing_zeros() as usize
        };
        Some(next_w0 * 64 + self.l0[next_w0].trailing_zeros() as usize)
    }

    /// Empties the set by walking the summary hierarchy — cost is
    /// proportional to the *populated* region, not the capacity (plus
    /// the level-2 array, which is `capacity / 262_144` words).
    pub fn clear(&mut self) {
        for w2 in 0..self.l2.len() {
            let mut bits2 = self.l2[w2];
            while bits2 != 0 {
                let w1 = w2 * 64 + bits2.trailing_zeros() as usize;
                bits2 &= bits2 - 1;
                let mut bits1 = self.l1[w1];
                while bits1 != 0 {
                    let w0 = w1 * 64 + bits1.trailing_zeros() as usize;
                    bits1 &= bits1 - 1;
                    self.l0[w0] = 0;
                }
                self.l1[w1] = 0;
            }
            self.l2[w2] = 0;
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversify_des::{RngStream, StreamId};
    use std::collections::BTreeSet;

    fn collect(set: &ActiveSet) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cursor = 0;
        while let Some(i) = set.next_at_or_after(cursor) {
            out.push(i);
            cursor = i + 1;
        }
        out
    }

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut set = ActiveSet::with_capacity(1000);
        assert!(set.is_empty());
        set.insert(7);
        set.insert(7); // idempotent
        set.insert(999);
        assert_eq!(set.len(), 2);
        assert!(set.contains(7));
        assert!(!set.contains(8));
        set.remove(7);
        set.remove(7); // idempotent
        assert_eq!(set.len(), 1);
        assert_eq!(collect(&set), vec![999]);
    }

    #[test]
    fn traversal_is_ascending_across_word_boundaries() {
        let mut set = ActiveSet::with_capacity(300_000);
        // Straddle every level: same word, adjacent l0 words, adjacent
        // l1 words (4096) and adjacent l2 words (262144).
        let ids = [0usize, 1, 63, 64, 127, 4095, 4096, 262_143, 262_144];
        for &i in ids.iter().rev() {
            set.insert(i);
        }
        assert_eq!(collect(&set), ids);
        assert_eq!(set.next_at_or_after(65), Some(127));
        assert_eq!(set.next_at_or_after(4097), Some(262_143));
        assert_eq!(set.next_at_or_after(262_145), None);
    }

    #[test]
    fn remove_prunes_summaries() {
        let mut set = ActiveSet::with_capacity(300_000);
        set.insert(5);
        set.insert(262_200);
        set.remove(262_200);
        // If the l1/l2 bits were left stale, traversal would dive into an
        // empty region and panic or loop; it must cleanly find nothing.
        assert_eq!(set.next_at_or_after(6), None);
        assert_eq!(collect(&set), vec![5]);
    }

    #[test]
    fn clear_empties_and_is_reusable() {
        let mut set = ActiveSet::with_capacity(100_000);
        for i in (0..100_000).step_by(997) {
            set.insert(i);
        }
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.next_at_or_after(0), None);
        set.insert(42);
        assert_eq!(collect(&set), vec![42]);
    }

    #[test]
    fn matches_btreeset_under_random_operations() {
        let mut rng = RngStream::new(0xB17, StreamId(1));
        let cap = 70_000;
        let mut set = ActiveSet::with_capacity(cap);
        let mut model = BTreeSet::new();
        for _ in 0..20_000 {
            let i = rng.index(cap);
            if rng.bernoulli(0.6) {
                set.insert(i);
                model.insert(i);
            } else {
                set.remove(i);
                model.remove(&i);
            }
        }
        assert_eq!(set.len(), model.len());
        assert_eq!(collect(&set), model.iter().copied().collect::<Vec<_>>());
        // Spot-check next_at_or_after against the model's range query.
        for _ in 0..200 {
            let from = rng.index(cap + 10);
            assert_eq!(
                set.next_at_or_after(from),
                model.range(from..).next().copied(),
                "from {from}"
            );
        }
    }

    #[test]
    fn zero_capacity_is_inert() {
        let set = ActiveSet::with_capacity(0);
        assert_eq!(set.next_at_or_after(0), None);
        assert!(set.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn out_of_range_insert_panics() {
        let mut set = ActiveSet::with_capacity(10);
        set.insert(10);
    }
}
