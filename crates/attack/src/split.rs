//! Staged-task adapters that plug the attack models into the
//! multilevel-splitting engine (`diversify_des::splitting`).
//!
//! Two tasks live here:
//!
//! * [`CampaignSplitTask`] — wraps a [`CampaignSimulator`] and a
//!   milestone schedule, so the rare probability of a full campaign
//!   success (P_SA at tight detection / hardened configurations) can be
//!   estimated as a product of per-milestone conditionals instead of
//!   brute-force Monte Carlo.
//! * [`StageChainTask`] — the Monte-Carlo twin of
//!   [`compile_stage_chain`](crate::to_san::compile_stage_chain): a
//!   per-stage exponential attempt walk whose success probability the
//!   analytic CTMC solver computes exactly. It is the differential
//!   oracle for the splitting estimator — splitting on the walk must
//!   agree with the analytic first-passage probability within the
//!   reported confidence interval.
//!
//! Both tasks satisfy the [`StagedTask`] contract: monotone nested
//! levels (crossing is permanent, the last level is the rare event
//! itself) and resume purity (a segment is a pure function of
//! `(checkpoint, seed)`).

use crate::campaign::{
    BatchedCampaignWorkspace, CampaignCheckpoint, CampaignMilestone, CampaignSimulator,
    MilestonePlacement,
};
use crate::to_san::StageParams;
use diversify_des::splitting::{LevelRun, StagedTask};
use diversify_des::{RngStream, StreamId};

/// RNG stream id for stage-chain walks (distinct from the campaign
/// engine's `0xA77` so the two tasks never share a stream).
const CHAIN_STREAM: StreamId = StreamId(0xC4A1);

/// A [`StagedTask`] over [`CampaignSimulator::run_stage`]: level `ℓ`
/// advances a replication until `milestones[ℓ]` is crossed, the
/// campaign halts, or the tick horizon is reached.
///
/// The milestone schedule must be goal-implied — every milestone must
/// hold whenever the campaign goal holds — or the product of
/// conditionals underestimates P_SA.
/// [`CampaignSimulator::split_milestones`] constructs such a schedule;
/// [`CampaignSplitTask::with_default_milestones`] uses it.
#[derive(Debug)]
pub struct CampaignSplitTask<'s, 'n> {
    sim: &'s CampaignSimulator<'n>,
    milestones: Vec<CampaignMilestone>,
}

impl<'s, 'n> CampaignSplitTask<'s, 'n> {
    /// Wraps `sim` with an explicit milestone schedule.
    ///
    /// # Panics
    ///
    /// If the schedule is empty or does not end in
    /// [`CampaignMilestone::GoalReached`] — the final level must be
    /// the rare event itself, or the product estimates the wrong
    /// probability.
    #[must_use]
    pub fn new(sim: &'s CampaignSimulator<'n>, milestones: Vec<CampaignMilestone>) -> Self {
        assert_eq!(
            milestones.last(),
            Some(&CampaignMilestone::GoalReached),
            "splitting milestones must end in GoalReached"
        );
        CampaignSplitTask { sim, milestones }
    }

    /// Wraps `sim` with its goal-implied default schedule
    /// ([`CampaignSimulator::split_milestones`]).
    #[must_use]
    pub fn with_default_milestones(sim: &'s CampaignSimulator<'n>) -> Self {
        let milestones = sim.split_milestones();
        CampaignSplitTask::new(sim, milestones)
    }

    /// Wraps `sim` with an adaptively placed schedule
    /// ([`CampaignSimulator::split_milestones_piloted`]): a pilot batch
    /// estimates survivor fractions and tunes the spread threshold,
    /// falling back to the fixed schedule with a recorded reason when
    /// it cannot. Returns the task together with the placement record.
    #[must_use]
    pub fn with_piloted_milestones(
        sim: &'s CampaignSimulator<'n>,
        pilot_population: u32,
        master_seed: u64,
    ) -> (Self, MilestonePlacement) {
        let piloted = sim.split_milestones_piloted(pilot_population, master_seed);
        (
            CampaignSplitTask::new(sim, piloted.milestones),
            piloted.placement,
        )
    }

    /// The milestone schedule (one entry per splitting level).
    #[must_use]
    pub fn milestones(&self) -> &[CampaignMilestone] {
        &self.milestones
    }
}

impl StagedTask for CampaignSplitTask<'_, '_> {
    type State = CampaignCheckpoint;
    type Workspace = BatchedCampaignWorkspace;

    fn levels(&self) -> usize {
        self.milestones.len()
    }

    fn workspace(&self) -> BatchedCampaignWorkspace {
        self.sim.batched_workspace()
    }

    fn run_level(
        &self,
        ws: &mut BatchedCampaignWorkspace,
        level: usize,
        from: Option<&CampaignCheckpoint>,
        seed: u64,
    ) -> LevelRun<CampaignCheckpoint> {
        let run = self
            .sim
            .run_stage(ws.scalar_lane(), from, seed, self.milestones[level]);
        LevelRun {
            state: run.checkpoint,
            reached: run.reached,
            ticks: u64::from(run.ticks),
        }
    }

    fn run_level_batch(
        &self,
        ws: &mut BatchedCampaignWorkspace,
        level: usize,
        froms: &[Option<&CampaignCheckpoint>],
        seeds: &[u64],
        out: &mut Vec<LevelRun<CampaignCheckpoint>>,
    ) {
        let mut runs = Vec::with_capacity(seeds.len());
        self.sim
            .run_stage_batch(ws, froms, seeds, self.milestones[level], &mut runs);
        out.extend(runs.into_iter().map(|run| LevelRun {
            state: run.checkpoint,
            reached: run.reached,
            ticks: u64::from(run.ticks),
        }));
    }
}

/// Elapsed virtual time of a stage-chain walk — the whole resumable
/// state, thanks to exponential memorylessness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainState {
    /// Hours elapsed when the previous stage completed.
    pub elapsed: f64,
}

/// A [`StagedTask`] over the exponential attack stage chain: level `ℓ`
/// repeats `t += Exp(rate_ℓ); Bernoulli(p_ℓ)?` until the stage passes
/// or `t` exceeds the horizon. One level per stage, so the last level
/// (goal stage passed) is the rare event. The per-stage passing time is
/// `Exp(p_ℓ · rate_ℓ)` by thinning, which is exactly the CTMC that
/// [`compile_stage_chain`](crate::to_san::compile_stage_chain)
/// compiles — the analytic first-passage probability by the horizon is
/// the ground truth for both this walk and splitting over it.
#[derive(Debug, Clone, PartialEq)]
pub struct StageChainTask {
    stages: Vec<StageParams>,
    horizon_hours: f64,
}

impl StageChainTask {
    /// Builds a chain walk over `stages` with a first-passage deadline
    /// of `horizon_hours`.
    ///
    /// # Panics
    ///
    /// If `stages` is empty, any rate is not strictly positive, any
    /// success probability is outside `[0, 1]`, or the horizon is not
    /// strictly positive and finite.
    #[must_use]
    pub fn new(stages: Vec<StageParams>, horizon_hours: f64) -> Self {
        assert!(
            !stages.is_empty(),
            "stage chain must have at least one stage"
        );
        for s in &stages {
            assert!(
                s.attempt_rate_per_hour > 0.0 && s.attempt_rate_per_hour.is_finite(),
                "attempt rate must be strictly positive"
            );
            assert!(
                (0.0..=1.0).contains(&s.success_probability),
                "success probability must lie in [0, 1]"
            );
        }
        assert!(
            horizon_hours > 0.0 && horizon_hours.is_finite(),
            "horizon must be strictly positive"
        );
        StageChainTask {
            stages,
            horizon_hours,
        }
    }

    /// The stage parameters.
    #[must_use]
    pub fn stages(&self) -> &[StageParams] {
        &self.stages
    }

    /// The first-passage deadline in hours.
    #[must_use]
    pub fn horizon_hours(&self) -> f64 {
        self.horizon_hours
    }

    /// One brute-force full-chain replication: walks every stage in
    /// order from `t = 0` with a single RNG stream seeded by `seed`.
    /// Returns whether the final stage passed before the horizon and
    /// the total number of attempts drawn (the cost metric shared with
    /// [`LevelRun::ticks`], so splitting and brute force compare on
    /// equal terms).
    #[must_use]
    pub fn walk(&self, seed: u64) -> (bool, u64) {
        let mut rng = RngStream::new(seed, CHAIN_STREAM);
        let mut t = 0.0;
        let mut attempts = 0u64;
        for stage in &self.stages {
            loop {
                attempts += 1;
                t += rng.exponential(stage.attempt_rate_per_hour);
                if t > self.horizon_hours {
                    return (false, attempts);
                }
                if rng.bernoulli(stage.success_probability) {
                    break;
                }
            }
        }
        (true, attempts)
    }
}

impl StagedTask for StageChainTask {
    type State = ChainState;
    type Workspace = ();

    fn levels(&self) -> usize {
        self.stages.len()
    }

    fn workspace(&self) {}

    fn run_level(
        &self,
        (): &mut (),
        level: usize,
        from: Option<&ChainState>,
        seed: u64,
    ) -> LevelRun<ChainState> {
        let mut rng = RngStream::new(seed, CHAIN_STREAM);
        let stage = &self.stages[level];
        let mut t = from.map_or(0.0, |s| s.elapsed);
        let mut ticks = 0u64;
        loop {
            ticks += 1;
            t += rng.exponential(stage.attempt_rate_per_hour);
            if t > self.horizon_hours {
                return LevelRun {
                    state: ChainState { elapsed: t },
                    reached: false,
                    ticks,
                };
            }
            if rng.bernoulli(stage.success_probability) {
                return LevelRun {
                    state: ChainState { elapsed: t },
                    reached: true,
                    ticks,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignConfig, ThreatModel};
    use diversify_des::splitting::Splitting;
    use diversify_des::Executor;
    use diversify_scada::network::ScadaNetwork;
    use diversify_scada::scope::{ScopeConfig, ScopeSystem};

    fn scope_network() -> ScadaNetwork {
        ScopeSystem::build(&ScopeConfig::default())
            .network()
            .clone()
    }

    fn chain(p: f64, rate: f64, n: usize) -> Vec<StageParams> {
        vec![
            StageParams {
                success_probability: p,
                attempt_rate_per_hour: rate,
            };
            n
        ]
    }

    #[test]
    fn chain_walk_and_splitting_agree_on_non_rare_point() {
        // Generous stages: success is common, so brute force is a
        // trustworthy reference for the splitting estimate.
        let task = StageChainTask::new(chain(0.6, 2.0, 3), 12.0);
        let trials = 4000u64;
        let hits = (0..trials).filter(|&s| task.walk(0xFEED ^ s).0).count();
        #[allow(clippy::cast_precision_loss)]
        let mc = hits as f64 / trials as f64;

        let splitting = Splitting::try_new(4000, 0xFEED_FACE).unwrap();
        let run = splitting.run(&task, &Executor::serial()).unwrap();
        assert!(
            (run.estimate - mc).abs() < 0.03,
            "splitting {} vs brute force {mc}",
            run.estimate
        );
    }

    #[test]
    fn chain_splitting_is_serial_parallel_bit_identical() {
        let task = StageChainTask::new(chain(0.3, 1.5, 4), 8.0);
        let splitting = Splitting::try_new(512, 0xC0FFEE).unwrap();
        let serial = splitting.run(&task, &Executor::serial()).unwrap();
        let parallel = splitting.run(&task, &Executor::parallel()).unwrap();
        assert_eq!(serial.estimate.to_bits(), parallel.estimate.to_bits());
        assert_eq!(serial.levels, parallel.levels);
    }

    #[test]
    fn campaign_split_estimate_tracks_plain_monte_carlo() {
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let replications = 600u32;
        let hits = sim
            .run_many(replications, 0xBEEF)
            .iter()
            .filter(|o| o.succeeded())
            .count();
        let mc = f64::from(u32::try_from(hits).unwrap()) / f64::from(replications);

        let task = CampaignSplitTask::with_default_milestones(&sim);
        assert_eq!(
            task.milestones().last(),
            Some(&CampaignMilestone::GoalReached)
        );
        let splitting = Splitting::try_new(600, 0xBEEF).unwrap();
        let run = splitting.run(&task, &Executor::serial()).unwrap();
        // Non-rare design point: both estimators see the same physics,
        // so they must agree within Monte-Carlo noise.
        assert!(
            (run.estimate - mc).abs() < 0.08,
            "splitting {} vs plain MC {mc}",
            run.estimate
        );
        assert!(run.total_ticks > 0);
    }

    #[test]
    fn campaign_split_is_serial_parallel_bit_identical() {
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let task = CampaignSplitTask::with_default_milestones(&sim);
        let splitting = Splitting::try_new(256, 0xD1CE).unwrap();
        let serial = splitting.run(&task, &Executor::serial()).unwrap();
        let parallel = splitting.run(&task, &Executor::parallel()).unwrap();
        assert_eq!(serial.estimate.to_bits(), parallel.estimate.to_bits());
        assert_eq!(serial.levels, parallel.levels);
        assert_eq!(serial.total_ticks, parallel.total_ticks);
    }

    #[test]
    fn campaign_split_via_lockstep_matches_scalar() {
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let task = CampaignSplitTask::with_default_milestones(&sim);
        let scalar = Splitting::try_new(96, 0xD1CE)
            .unwrap()
            .run(&task, &Executor::serial())
            .unwrap();
        for lanes in [4usize, 17] {
            let sched = Splitting::try_new(96, 0xD1CE).unwrap().with_lockstep(lanes);
            for exec in [Executor::serial(), Executor::parallel()] {
                let run = sched.run(&task, &exec).unwrap();
                assert_eq!(run, scalar, "{lanes} lanes");
            }
        }
    }

    #[test]
    fn piloted_task_keeps_goal_reached_terminal() {
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let (task, placement) = CampaignSplitTask::with_piloted_milestones(&sim, 32, 0x517);
        assert_eq!(
            task.milestones().last(),
            Some(&CampaignMilestone::GoalReached)
        );
        assert!(matches!(
            placement,
            crate::campaign::MilestonePlacement::Piloted { .. }
        ));
        // The piloted schedule still estimates the same probability.
        let run = Splitting::try_new(256, 0xD1CE)
            .unwrap()
            .with_lockstep(8)
            .run(&task, &Executor::serial())
            .unwrap();
        assert!(run.estimate > 0.0 && run.estimate <= 1.0);
    }

    #[test]
    fn default_milestones_are_goal_implied_shapes() {
        let net = scope_network();
        let sabotage =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let schedule = sabotage.split_milestones();
        assert_eq!(schedule.first(), Some(&CampaignMilestone::Rooted));
        assert_eq!(schedule.last(), Some(&CampaignMilestone::GoalReached));
        assert!(schedule.contains(&CampaignMilestone::PayloadDelivered));

        let espionage =
            CampaignSimulator::new(&net, ThreatModel::duqu_like(), CampaignConfig::default());
        // Espionage can succeed from a single engineering-workstation
        // foothold, so no spread milestone may appear in its schedule.
        let schedule = espionage.split_milestones();
        assert_eq!(
            schedule,
            vec![CampaignMilestone::Rooted, CampaignMilestone::GoalReached]
        );
    }

    #[test]
    #[should_panic(expected = "GoalReached")]
    fn campaign_task_rejects_schedule_without_goal() {
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let _ = CampaignSplitTask::new(&sim, vec![CampaignMilestone::Rooted]);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn chain_task_rejects_zero_rate() {
        let _ = StageChainTask::new(chain(0.5, 0.0, 2), 1.0);
    }
}
