//! A discrete Bayesian network with exact inference — the third of the
//! paper's candidate attack-modeling formalisms.
//!
//! Variables are binary (attack-stage reached / not reached); conditional
//! probability tables condition each stage on its parents; inference is by
//! brute-force enumeration over the joint, which is exact and perfectly
//! adequate for stage networks of ≤ 20 variables.

use std::collections::HashMap;
use std::fmt;

/// Identifies a variable in a [`BayesNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(usize);

/// Error for invalid network construction or queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BayesError {
    /// CPT row count does not match 2^(number of parents).
    BadCptSize,
    /// A probability was outside `[0, 1]`.
    BadProbability,
    /// A query referenced an unknown variable.
    UnknownVariable,
    /// Parents must be declared before children (the builder enforces a
    /// topological order).
    ParentAfterChild,
    /// Evidence has probability zero.
    ImpossibleEvidence,
}

impl fmt::Display for BayesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BayesError::BadCptSize => "cpt must have one row per parent assignment",
            BayesError::BadProbability => "probability out of [0,1]",
            BayesError::UnknownVariable => "unknown variable",
            BayesError::ParentAfterChild => "parents must be added before children",
            BayesError::ImpossibleEvidence => "evidence has probability zero",
        };
        f.write_str(s)
    }
}

impl std::error::Error for BayesError {}

struct Variable {
    name: String,
    parents: Vec<VarId>,
    /// `cpt[row]` = P(var = true | parent assignment `row`), where row
    /// bits encode parent values (bit i = parents[i], LSB first).
    cpt: Vec<f64>,
}

/// A discrete (binary-variable) Bayesian network.
pub struct BayesNet {
    variables: Vec<Variable>,
}

impl fmt::Debug for BayesNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BayesNet")
            .field("variables", &self.variables.len())
            .finish()
    }
}

impl Default for BayesNet {
    fn default() -> Self {
        Self::new()
    }
}

impl BayesNet {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        BayesNet {
            variables: Vec::new(),
        }
    }

    /// Number of variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.variables.len()
    }

    /// Whether the network has no variables.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.variables.is_empty()
    }

    /// Adds a root variable with prior `P(true) = p`.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::BadProbability`] if `p` is out of range.
    pub fn add_root(&mut self, name: impl Into<String>, p: f64) -> Result<VarId, BayesError> {
        self.add_variable(name, vec![], vec![p])
    }

    /// Adds a variable with parents and a CPT. `cpt[row]` gives
    /// `P(true | parents)` where bit `i` of `row` is the value of
    /// `parents[i]` (LSB first).
    ///
    /// # Errors
    ///
    /// Returns [`BayesError`] for wrong CPT size, bad probabilities or
    /// parents declared after this variable.
    pub fn add_variable(
        &mut self,
        name: impl Into<String>,
        parents: Vec<VarId>,
        cpt: Vec<f64>,
    ) -> Result<VarId, BayesError> {
        let id = VarId(self.variables.len());
        if parents.iter().any(|p| p.0 >= id.0) {
            return Err(BayesError::ParentAfterChild);
        }
        if cpt.len() != 1 << parents.len() {
            return Err(BayesError::BadCptSize);
        }
        if cpt.iter().any(|p| !(0.0..=1.0).contains(p) || p.is_nan()) {
            return Err(BayesError::BadProbability);
        }
        self.variables.push(Variable {
            name: name.into(),
            parents,
            cpt,
        });
        Ok(id)
    }

    /// Looks up a variable id by name.
    #[must_use]
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.variables
            .iter()
            .position(|v| v.name == name)
            .map(VarId)
    }

    /// Joint probability of a full assignment (`bit i of `world`` =
    /// variable i).
    fn joint(&self, world: u64) -> f64 {
        let mut p = 1.0;
        for (i, var) in self.variables.iter().enumerate() {
            let mut row = 0usize;
            for (bit, parent) in var.parents.iter().enumerate() {
                if world & (1 << parent.0) != 0 {
                    row |= 1 << bit;
                }
            }
            let p_true = var.cpt[row];
            let value = world & (1 << i) != 0;
            p *= if value { p_true } else { 1.0 - p_true };
        }
        p
    }

    /// Computes `P(query = true | evidence)` by enumeration.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::UnknownVariable`] for out-of-range ids and
    /// [`BayesError::ImpossibleEvidence`] when the evidence has zero
    /// probability.
    ///
    /// # Panics
    ///
    /// Panics if the network has more than 24 variables (enumeration
    /// would be unreasonable; stage networks are far smaller).
    pub fn query(&self, query: VarId, evidence: &HashMap<VarId, bool>) -> Result<f64, BayesError> {
        let n = self.variables.len();
        assert!(n <= 24, "enumeration limited to 24 variables");
        if query.0 >= n || evidence.keys().any(|v| v.0 >= n) {
            return Err(BayesError::UnknownVariable);
        }
        let mut p_true = 0.0;
        let mut p_evidence = 0.0;
        'worlds: for world in 0..(1u64 << n) {
            for (&var, &val) in evidence {
                if (world & (1 << var.0) != 0) != val {
                    continue 'worlds;
                }
            }
            let p = self.joint(world);
            p_evidence += p;
            if world & (1 << query.0) != 0 {
                p_true += p;
            }
        }
        if p_evidence == 0.0 {
            return Err(BayesError::ImpossibleEvidence);
        }
        Ok(p_true / p_evidence)
    }

    /// Marginal `P(query = true)`.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::UnknownVariable`] for an out-of-range id.
    pub fn marginal(&self, query: VarId) -> Result<f64, BayesError> {
        self.query(query, &HashMap::new())
    }
}

/// Builds the five-stage attack Bayesian network with the given per-stage
/// conditional success probabilities: each stage succeeds with its
/// probability only if the previous stage succeeded.
///
/// Returns `(net, stage variable ids in order)`.
///
/// # Panics
///
/// Panics only if probabilities are out of `[0,1]` (programmer error).
#[must_use]
pub fn stage_chain_network(stage_probs: &[f64]) -> (BayesNet, Vec<VarId>) {
    let mut net = BayesNet::new();
    let mut ids = Vec::with_capacity(stage_probs.len());
    let mut prev: Option<VarId> = None;
    for (i, &p) in stage_probs.iter().enumerate() {
        let id = match prev {
            None => net.add_root(format!("stage-{i}"), p).expect("valid prior"),
            Some(parent) => net
                .add_variable(format!("stage-{i}"), vec![parent], vec![0.0, p])
                .expect("valid cpt"),
        };
        ids.push(id);
        prev = Some(id);
    }
    (net, ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_root_marginal() {
        let mut net = BayesNet::new();
        let a = net.add_root("a", 0.3).unwrap();
        assert!((net.marginal(a).unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn chain_marginal_is_product() {
        let (net, ids) = stage_chain_network(&[0.6, 0.5, 0.4]);
        let last = *ids.last().unwrap();
        assert!((net.marginal(last).unwrap() - 0.6 * 0.5 * 0.4).abs() < 1e-12);
    }

    #[test]
    fn conditioning_on_parent() {
        let (net, ids) = stage_chain_network(&[0.6, 0.5]);
        let mut ev = HashMap::new();
        ev.insert(ids[0], true);
        assert!((net.query(ids[1], &ev).unwrap() - 0.5).abs() < 1e-12);
        ev.insert(ids[0], false);
        assert!((net.query(ids[1], &ev).unwrap() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn diagnostic_reasoning_flows_backward() {
        // Observing the attack succeeded raises belief the first stage
        // succeeded (to certainty, in a noiseless chain).
        let (net, ids) = stage_chain_network(&[0.3, 0.5]);
        let mut ev = HashMap::new();
        ev.insert(ids[1], true);
        let posterior = net.query(ids[0], &ev).unwrap();
        assert!((posterior - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_or_style_cpt() {
        // Two causes, noisy-OR CPT.
        let mut net = BayesNet::new();
        let a = net.add_root("a", 0.5).unwrap();
        let b = net.add_root("b", 0.5).unwrap();
        let c = net
            .add_variable("c", vec![a, b], vec![0.0, 0.8, 0.6, 0.92])
            .unwrap();
        // P(c) = Σ over parents.
        let expect = 0.25 * 0.0 + 0.25 * 0.8 + 0.25 * 0.6 + 0.25 * 0.92;
        assert!((net.marginal(c).unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn explaining_away() {
        // Classic: two independent causes of one effect; observing the
        // effect and one cause lowers belief in the other.
        let mut net = BayesNet::new();
        let a = net.add_root("a", 0.3).unwrap();
        let b = net.add_root("b", 0.3).unwrap();
        let e = net
            .add_variable("e", vec![a, b], vec![0.01, 0.9, 0.9, 0.99])
            .unwrap();
        let mut just_e = HashMap::new();
        just_e.insert(e, true);
        let p_a_given_e = net.query(a, &just_e).unwrap();
        let mut e_and_b = just_e.clone();
        e_and_b.insert(b, true);
        let p_a_given_eb = net.query(a, &e_and_b).unwrap();
        assert!(
            p_a_given_eb < p_a_given_e,
            "explaining away: {p_a_given_eb} !< {p_a_given_e}"
        );
    }

    #[test]
    fn construction_errors() {
        let mut net = BayesNet::new();
        let a = net.add_root("a", 0.5).unwrap();
        assert_eq!(
            net.add_variable("bad", vec![a], vec![0.5]).unwrap_err(),
            BayesError::BadCptSize
        );
        assert_eq!(
            net.add_root("bad2", 1.5).unwrap_err(),
            BayesError::BadProbability
        );
    }

    #[test]
    fn query_errors() {
        let mut net = BayesNet::new();
        let a = net.add_root("a", 0.0).unwrap();
        // Evidence a = true has probability 0.
        let mut ev = HashMap::new();
        ev.insert(a, true);
        assert_eq!(
            net.query(a, &ev).unwrap_err(),
            BayesError::ImpossibleEvidence
        );
        assert_eq!(
            net.marginal(VarId(9)).unwrap_err(),
            BayesError::UnknownVariable
        );
    }

    #[test]
    fn barren_variable_is_pruned_by_evidence_semantics() {
        // A "barren" variable — a leaf that is neither queried nor
        // observed — must not change any query, even when evidence
        // elsewhere in the network would prune it in a
        // variable-elimination ordering. Build the same chain with and
        // without a noisy barren child hanging off the root and compare
        // posteriors under evidence on the other branch.
        let mut with_barren = BayesNet::new();
        let a1 = with_barren.add_root("a", 0.3).unwrap();
        let b1 = with_barren
            .add_variable("b", vec![a1], vec![0.1, 0.8])
            .unwrap();
        let barren = with_barren
            .add_variable("barren", vec![a1], vec![0.4, 0.9])
            .unwrap();

        let mut without = BayesNet::new();
        let a2 = without.add_root("a", 0.3).unwrap();
        let b2 = without.add_variable("b", vec![a2], vec![0.1, 0.8]).unwrap();

        for evidence_value in [true, false] {
            let mut ev1 = HashMap::new();
            ev1.insert(b1, evidence_value);
            let mut ev2 = HashMap::new();
            ev2.insert(b2, evidence_value);
            let p_with = with_barren.query(a1, &ev1).unwrap();
            let p_without = without.query(a2, &ev2).unwrap();
            assert!(
                (p_with - p_without).abs() < 1e-12,
                "b={evidence_value}: {p_with} vs {p_without}"
            );
        }
        // Sanity: the barren variable itself still answers queries once
        // it stops being barren.
        let mut ev = HashMap::new();
        ev.insert(a1, true);
        assert!((with_barren.query(barren, &ev).unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn name_lookup() {
        let (net, ids) = stage_chain_network(&[0.5, 0.5]);
        assert_eq!(net.var_by_name("stage-0"), Some(ids[0]));
        assert_eq!(net.var_by_name("stage-1"), Some(ids[1]));
        assert_eq!(net.var_by_name("nope"), None);
        assert_eq!(net.len(), 2);
        assert!(!net.is_empty());
    }
}
