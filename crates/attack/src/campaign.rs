//! Campaign models and the tick-based campaign simulator.
//!
//! A campaign walks the plant network stage by stage: initial infection at
//! an entry node, activation, privilege escalation, lateral propagation,
//! and (for sabotage threats) PLC reprogramming → device impairment. Each
//! tick is one hour of attacker wall-clock time; every stochastic step
//! draws from the [`ExploitCatalog`] probabilities, which in turn depend
//! on the per-node [`ComponentProfile`]s — that is precisely where
//! diversity enters.
//!
//! # The event-driven frontier engine
//!
//! [`CampaignSimulator::run_into`] no longer scans the whole node array
//! each tick. It maintains three [`ActiveSet`]s between ticks — the
//! *infected* set (escalation candidates), the *lateral frontier*
//! (nodes ≥ Rooted that still have at least one clean neighbor, tracked
//! with a per-node compromised-neighbor counter over the CSR topology),
//! and the *payload-eligible* set (PLCs with a non-zero payload
//! probability, not yet reprogrammed, with a rooted self-or-neighbor) —
//! so a tick costs O(frontier), not O(nodes). On a 10^5-node fleet
//! where the campaign touches one plant, the other ~99 900 nodes are
//! never visited.
//!
//! Ascending-id cursor traversal of the sets reproduces, draw for draw,
//! what a dense ascending scan with visit-time eligibility checks
//! produces, so the engine stays **bit-identical** to
//! [`CampaignSimulator::run_reference`] — the dense oracle kept alive
//! precisely to prove that (`tests/frontier_differential.rs`).
//!
//! One model-semantics change accompanied this engine (PR 6): a rooted
//! node whose neighbors are all compromised no longer makes lateral
//! attempts. Those attempts could never change state — every draw
//! landed on a non-clean destination and was skipped — but each
//! consumed RNG draws, which both bound throughput to O(rooted) per
//! tick and made an O(frontier) schedule impossible. Dropping them
//! changes per-seed trajectories but **not the distribution** of any
//! indicator: the removed draws had no state effect. Seeds recorded
//! before PR 6 therefore replay to different (equally valid)
//! trajectories.

use crate::exploit::ExploitCatalog;
use crate::frontier::ActiveSet;
use crate::stage::{AttackStage, NodeCompromise};
use diversify_des::exec::{BatchTask, Replication};
use diversify_des::{
    derive_seed, Executor, LaneState, PartialRun, ReplicationPlan, RngLanes, RngStream, RunPolicy,
    StreamId,
};
use diversify_scada::components::ComponentProfile;
use diversify_scada::network::{NodeId, NodeRole, ScadaNetwork, Topology, Zone};
use diversify_scada::ProtocolDialect;
use serde::{Deserialize, Serialize};

/// What the attacker is trying to achieve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackGoal {
    /// Reprogram at least this fraction of the plant's PLCs (sabotage,
    /// Stuxnet-like).
    ImpairDevices {
        /// Required fraction of PLCs in `(0, 1]`.
        fraction: f64,
    },
    /// Hold a foothold on the historian/engineering data for the given
    /// number of ticks (espionage, Duqu/Flame-like).
    Exfiltrate {
        /// Consecutive ticks of data access required.
        ticks: u32,
    },
}

/// A named threat model: an exploit catalog plus behavioural parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreatModel {
    /// Display name.
    pub name: String,
    /// The exploit catalog.
    pub catalog: ExploitCatalog,
    /// Stealth in `[0,1]`: scales detection probability down.
    pub stealth: f64,
    /// Lateral-movement attempts per compromised node per tick.
    pub attempts_per_tick: u32,
    /// The campaign goal.
    pub goal: AttackGoal,
}

impl ThreatModel {
    /// The Stuxnet-like sabotage threat (the paper's reference attack).
    #[must_use]
    pub fn stuxnet_like() -> Self {
        ThreatModel {
            name: "stuxnet-like".to_string(),
            catalog: ExploitCatalog::stuxnet_like(),
            stealth: 0.85,
            attempts_per_tick: 2,
            goal: AttackGoal::ImpairDevices { fraction: 0.5 },
        }
    }

    /// The Duqu-like espionage threat (paper future work).
    #[must_use]
    pub fn duqu_like() -> Self {
        ThreatModel {
            name: "duqu-like".to_string(),
            catalog: ExploitCatalog::duqu_like(),
            stealth: 0.92,
            attempts_per_tick: 1,
            goal: AttackGoal::Exfiltrate { ticks: 24 },
        }
    }

    /// The Flame-like espionage threat (paper future work).
    #[must_use]
    pub fn flame_like() -> Self {
        ThreatModel {
            name: "flame-like".to_string(),
            catalog: ExploitCatalog::flame_like(),
            stealth: 0.70,
            attempts_per_tick: 3,
            goal: AttackGoal::Exfiltrate { ticks: 12 },
        }
    }
}

/// Campaign simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Maximum ticks (hours) to simulate.
    pub max_ticks: u32,
    /// Whether detection ends the campaign (defenders remediate) or is
    /// merely recorded (pure observation, the paper's TTSF definition).
    pub detection_stops_attack: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            max_ticks: 24 * 365, // one year of attacker persistence
            detection_stops_attack: false,
        }
    }
}

/// Result of one simulated campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignOutcome {
    /// Tick at which the goal was achieved (Time-To-Attack), if it was.
    pub time_to_attack: Option<u32>,
    /// Tick at which the defenders first perceived the attack
    /// (Time-To-Security-Failure), if they did.
    pub time_to_detection: Option<u32>,
    /// Compromised ratio sampled at every tick (index = tick).
    pub compromised_ratio: Vec<f64>,
    /// Final per-node compromise states.
    pub final_states: Vec<NodeCompromise>,
    /// Deepest stage reached.
    pub deepest_stage: AttackStage,
    /// Number of lateral-movement attempts blocked by firewalls.
    pub firewall_blocks: u32,
    /// Number of PLC payload deliveries that failed on dialect mismatch
    /// or firmware resilience.
    pub payload_failures: u32,
}

impl CampaignOutcome {
    /// Whether the campaign achieved its goal.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.time_to_attack.is_some()
    }

    /// The compromised ratio at the end of the run.
    #[must_use]
    pub fn final_compromised_ratio(&self) -> f64 {
        self.compromised_ratio.last().copied().unwrap_or(0.0)
    }

    /// The scalar per-replication summary of this outcome — what the
    /// streaming indicator collectors consume.
    #[must_use]
    pub fn stats(&self) -> CampaignStats {
        CampaignStats::from(self)
    }
}

/// The scalar results of one campaign replication: everything the
/// indicator aggregation consumes, with no heap-owning field, so the
/// replication hot loop can report it without allocating. The full
/// trajectory (per-tick ratio curve, final per-node states) stays in
/// the [`CampaignWorkspace`] it was simulated in; callers that need it
/// materialize a [`CampaignOutcome`] via [`CampaignSimulator::run`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignStats {
    /// Tick at which the goal was achieved (Time-To-Attack), if it was.
    pub time_to_attack: Option<u32>,
    /// Tick at which the defenders first perceived the attack
    /// (Time-To-Security-Failure), if they did.
    pub time_to_detection: Option<u32>,
    /// Compromised ratio at the end of the run.
    pub final_compromised_ratio: f64,
    /// Deepest stage reached.
    pub deepest_stage: AttackStage,
    /// Number of lateral-movement attempts blocked by firewalls.
    pub firewall_blocks: u32,
    /// Number of failed PLC payload deliveries.
    pub payload_failures: u32,
}

impl CampaignStats {
    /// Whether the campaign achieved its goal.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.time_to_attack.is_some()
    }

    /// Whether every numeric field is finite and in range — the
    /// validator the budgeted measurement paths use to reject corrupted
    /// replications before they poison a streaming aggregate. The
    /// simulator produces only finite ratios in `[0, 1]` by
    /// construction, so a rejection always indicates a fault.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.final_compromised_ratio.is_finite()
            && (0.0..=1.0).contains(&self.final_compromised_ratio)
    }
}

impl From<&CampaignOutcome> for CampaignStats {
    fn from(o: &CampaignOutcome) -> Self {
        CampaignStats {
            time_to_attack: o.time_to_attack,
            time_to_detection: o.time_to_detection,
            final_compromised_ratio: o.final_compromised_ratio(),
            deepest_stage: o.deepest_stage,
            firewall_blocks: o.firewall_blocks,
            payload_failures: o.payload_failures,
        }
    }
}

impl From<&CampaignStats> for CampaignStats {
    fn from(s: &CampaignStats) -> Self {
        *s
    }
}

/// Reusable per-replication state of the frontier campaign engine.
/// Created once per worker (via [`CampaignSimulator::workspace`]) and
/// handed to [`CampaignSimulator::run_into`] for every replication;
/// buffers are reused, never reallocated, so the steady state runs
/// allocation-free (`tests/zero_alloc.rs` asserts this — including at
/// 10^4 nodes).
///
/// Memory is **frontier-proportional where it can be** and
/// reset-cost-proportional everywhere: the three active sets are
/// bitsets cleared by walking their summaries, and the O(n) state and
/// counter arrays are wiped through dirty lists, so preparing a
/// replication costs O(touched nodes), not O(n). A full O(n)
/// initialization happens only when the workspace first meets a
/// network of a different size.
#[derive(Debug, Clone, Default)]
pub struct CampaignWorkspace {
    /// Per-node compromise states of the most recent replication.
    states: Vec<NodeCompromise>,
    /// Per-node count of non-clean neighbors. A node ≥ Rooted belongs
    /// to the lateral frontier iff this is below its degree.
    compromised_nbrs: Vec<u32>,
    /// Compromised ratio sampled at every tick of the most recent
    /// replication (index = tick).
    ratio_curve: Vec<f64>,
    /// Nodes with state exactly Infected (escalation candidates).
    infected: ActiveSet,
    /// Nodes ≥ Rooted with at least one clean neighbor (lateral
    /// sources).
    frontier: ActiveSet,
    /// PLCs with non-zero payload probability, not yet reprogrammed,
    /// whose self-or-neighbor is ≥ Rooted.
    eligible: ActiveSet,
    /// Nodes whose state left Clean this replication (reset list).
    dirty_states: Vec<u32>,
    /// Nodes whose `compromised_nbrs` left zero this replication
    /// (reset list).
    dirty_degrees: Vec<u32>,
}

impl CampaignWorkspace {
    /// An empty workspace; buffers size themselves on first use.
    #[must_use]
    pub fn new() -> Self {
        CampaignWorkspace::default()
    }

    /// Prepares the workspace for a fresh replication over `n` nodes:
    /// sparse reset through the dirty lists when the size matches, full
    /// (re)initialization otherwise.
    fn reset(&mut self, n: usize) {
        self.ratio_curve.clear();
        if self.states.len() == n {
            for &i in &self.dirty_states {
                self.states[i as usize] = NodeCompromise::Clean;
            }
            for &i in &self.dirty_degrees {
                self.compromised_nbrs[i as usize] = 0;
            }
            self.dirty_states.clear();
            self.dirty_degrees.clear();
            self.infected.clear();
            self.frontier.clear();
            self.eligible.clear();
        } else {
            self.states.clear();
            self.states.resize(n, NodeCompromise::Clean);
            self.compromised_nbrs.clear();
            self.compromised_nbrs.resize(n, 0);
            self.dirty_states.clear();
            self.dirty_degrees.clear();
            self.infected.resize(n);
            self.frontier.resize(n);
            self.eligible.resize(n);
        }
    }

    /// Per-node compromise states of the most recent replication.
    #[must_use]
    pub fn states(&self) -> &[NodeCompromise] {
        &self.states
    }

    /// The per-tick compromised-ratio curve of the most recent
    /// replication (index = tick).
    #[must_use]
    pub fn ratio_curve(&self) -> &[f64] {
        &self.ratio_curve
    }
}

/// Bookkeeping when node `id` leaves the Clean state: every neighbor's
/// compromised counter advances, and a rooted neighbor whose last clean
/// neighbor just vanished is saturated — it leaves the lateral frontier
/// (its attempts could no longer change state). The caller updates
/// `states[id]` and the clean counter itself.
fn note_left_clean(
    topo: &Topology,
    id: NodeId,
    states: &[NodeCompromise],
    compromised_nbrs: &mut [u32],
    frontier: &mut ActiveSet,
    dirty_states: &mut Vec<u32>,
    dirty_degrees: &mut Vec<u32>,
) {
    dirty_states.push(id.index() as u32);
    for &nb in topo.neighbors(id) {
        let i = nb.index();
        if compromised_nbrs[i] == 0 {
            dirty_degrees.push(i as u32);
        }
        compromised_nbrs[i] += 1;
        if compromised_nbrs[i] as usize == topo.degree(nb) && states[i] >= NodeCompromise::Rooted {
            frontier.remove(i);
        }
    }
}

/// Bookkeeping when node `id` reaches Rooted (or Reprogrammed, which
/// also spreads laterally): it joins the frontier if it still has a
/// clean neighbor, payload-capable PLCs in its closed neighborhood
/// become eligible, and the exfiltration foothold counter advances for
/// data-bearing roles. Called after `states[id]` is updated.
#[allow(clippy::too_many_arguments)]
fn note_rooted(
    net: &ScadaNetwork,
    topo: &Topology,
    payload_p: &[f64],
    id: NodeId,
    states: &[NodeCompromise],
    compromised_nbrs: &[u32],
    frontier: &mut ActiveSet,
    eligible: &mut ActiveSet,
    data_rooted: &mut u32,
) {
    let i = id.index();
    if (compromised_nbrs[i] as usize) < topo.degree(id) {
        frontier.insert(i);
    }
    if payload_p[i] > 0.0 && states[i] != NodeCompromise::Reprogrammed {
        eligible.insert(i);
    }
    for &nb in topo.neighbors(id) {
        let j = nb.index();
        if payload_p[j] > 0.0 && states[j] != NodeCompromise::Reprogrammed {
            eligible.insert(j);
        }
    }
    if matches!(
        net.role(id),
        NodeRole::Historian | NodeRole::EngineeringWorkstation
    ) {
        *data_rooted += 1;
    }
}

/// Scalar tick-loop state of one campaign replication — everything the
/// tick stepper mutates besides the workspace buffers. Snapshotting it
/// (plus the sparse non-clean node states) is what makes a replication
/// resumable mid-flight for the multilevel-splitting engine.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Progress {
    /// Total nodes in the network.
    nodes: usize,
    /// Ticks simulated so far.
    tick: u32,
    deepest: AttackStage,
    time_to_attack: Option<u32>,
    time_to_detection: Option<u32>,
    firewall_blocks: u32,
    payload_failures: u32,
    exfil_ticks: u32,
    /// Nodes still Clean.
    clean: usize,
    /// PLCs Reprogrammed.
    reprogrammed: usize,
    /// Data-bearing nodes ≥ Rooted.
    data_rooted: u32,
    /// Detection ended the campaign (`detection_stops_attack`).
    halted: bool,
}

impl Progress {
    fn fresh(nodes: usize) -> Self {
        Progress {
            nodes,
            tick: 0,
            deepest: AttackStage::Initial,
            time_to_attack: None,
            time_to_detection: None,
            firewall_blocks: 0,
            payload_failures: 0,
            exfil_ticks: 0,
            clean: nodes,
            reprogrammed: 0,
            data_rooted: 0,
            halted: false,
        }
    }

    /// Nothing further can change: remediation halted the campaign, or
    /// both terminal observables are already recorded.
    fn done(&self) -> bool {
        self.halted || (self.time_to_attack.is_some() && self.time_to_detection.is_some())
    }

    /// Current compromised ratio.
    fn ratio(&self) -> f64 {
        (self.nodes - self.clean) as f64 / self.nodes as f64
    }

    fn stats(&self, final_compromised_ratio: f64) -> CampaignStats {
        CampaignStats {
            time_to_attack: self.time_to_attack,
            time_to_detection: self.time_to_detection,
            final_compromised_ratio,
            deepest_stage: self.deepest,
            firewall_blocks: self.firewall_blocks,
            payload_failures: self.payload_failures,
        }
    }
}

/// A monotone campaign milestone — the level boundaries of the
/// multilevel-splitting estimator. Compromise states only advance
/// (`Clean < Infected < Rooted < Reprogrammed`) and the deepest stage,
/// non-clean count and reprogrammed count are monotone over ticks, so a
/// crossed milestone stays crossed; that nesting is what makes
/// fixed-effort splitting over these levels unbiased.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CampaignMilestone {
    /// At least one node has reached root access.
    Rooted,
    /// At least this many nodes have left the Clean state.
    SpreadAtLeast(usize),
    /// At least one PLC payload was delivered (a PLC reprogrammed).
    PayloadDelivered,
    /// The campaign goal was achieved (Time-To-Attack recorded).
    GoalReached,
}

impl CampaignMilestone {
    fn reached(self, pr: &Progress) -> bool {
        match self {
            CampaignMilestone::Rooted => pr.deepest >= AttackStage::RootAccess,
            CampaignMilestone::SpreadAtLeast(k) => pr.nodes - pr.clean >= k,
            CampaignMilestone::PayloadDelivered => pr.reprogrammed > 0,
            CampaignMilestone::GoalReached => pr.time_to_attack.is_some(),
        }
    }
}

/// A resumable between-ticks snapshot of one campaign replication: the
/// scalar progress plus the sparse ascending list of non-clean node
/// states. Restoring rebuilds the workspace's dense arrays and active
/// sets deterministically, so a stage resumed from a checkpoint is a
/// pure function of `(checkpoint, seed)` — independent of whatever the
/// workspace held before.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheckpoint {
    progress: Progress,
    /// `(node index, state)` for every non-clean node, ascending.
    states: Vec<(u32, NodeCompromise)>,
}

impl CampaignCheckpoint {
    /// Whether the campaign goal was achieved by this point.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.progress.time_to_attack.is_some()
    }

    /// Ticks simulated up to this snapshot.
    #[must_use]
    pub fn tick(&self) -> u32 {
        self.progress.tick
    }

    /// The scalar campaign statistics as of this snapshot. The
    /// compromised ratio is the snapshot's current ratio (a resumed
    /// segment's curve covers only that segment).
    #[must_use]
    pub fn stats(&self) -> CampaignStats {
        self.progress.stats(self.progress.ratio())
    }

    /// Number of nodes that had left the Clean state by this snapshot —
    /// the monotone metric [`CampaignMilestone::SpreadAtLeast`]
    /// thresholds on. Spread never decreases, so a trajectory's exit
    /// spread is also its maximum.
    #[must_use]
    pub fn spread(&self) -> usize {
        self.progress.nodes - self.progress.clean
    }
}

/// The result of [`CampaignSimulator::run_stage`]: where the
/// replication stopped, whether the milestone was crossed, and how many
/// ticks the segment consumed (the splitting cost metric).
#[derive(Debug, Clone, PartialEq)]
pub struct StageRun {
    /// Snapshot at segment exit (milestone crossing, goal, halt, or
    /// horizon).
    pub checkpoint: CampaignCheckpoint,
    /// Whether the milestone was crossed before halt or horizon.
    pub reached: bool,
    /// Ticks simulated in this segment.
    pub ticks: u32,
}

/// Merges two ascending, disjoint id slices into one ascending vector.
fn merge_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Whether a replication has **drained**: the campaign is seeded
/// (`clean < nodes`), no node is mid-escalation, no payload-eligible
/// PLC remains, and lateral propagation is idle (empty frontier, or
/// nothing clean left to infect). From here no stage can act and no
/// draw can refill any of the sets, so the condition is absorbing: the
/// only remaining per-tick work is the goal clock and — while detection
/// is unresolved — exactly one Bernoulli draw at a constant
/// probability. [`CampaignSimulator::run_out_drained`] replays that
/// tail draw-for-draw without the stepper.
fn drained(ws: &CampaignWorkspace, pr: &Progress) -> bool {
    pr.clean < pr.nodes
        && ws.infected.is_empty()
        && ws.eligible.is_empty()
        && (ws.frontier.is_empty() || pr.clean == 0)
}

/// The RNG handle a tick stepper draws from: either a scalar
/// [`RngStream`] or one lane of an [`RngLanes`] SoA block. Both advance
/// the identical xoshiro256++ state identically, so the batched engine
/// is bit-identical to the scalar one per lane by construction.
trait TickRng {
    fn bernoulli(&mut self, p: f64) -> bool;
    fn index(&mut self, n: usize) -> usize;
}

impl TickRng for RngStream {
    #[inline]
    fn bernoulli(&mut self, p: f64) -> bool {
        RngStream::bernoulli(self, p)
    }

    #[inline]
    fn index(&mut self, n: usize) -> usize {
        RngStream::index(self, n)
    }
}

/// One lane of a lockstep batch, checked out of the SoA block for the
/// duration of a tick so draws step in registers ([`LaneState`]); the
/// advanced state is committed back after the tick.
impl TickRng for LaneState {
    #[inline]
    fn bernoulli(&mut self, p: f64) -> bool {
        LaneState::bernoulli(self, p)
    }

    #[inline]
    fn index(&mut self, n: usize) -> usize {
        LaneState::index(self, n)
    }
}

/// Where the tick stepper gets its per-node exploit probabilities.
///
/// The scalar path computes them from the catalog and profiles at every
/// draw ([`LiveProbs`]); the batched path reads them from per-node
/// tables filled once at simulator construction ([`ProbTables`]) so one
/// pass over the profiles serves every lane of every batch. Every
/// method must return the *identical*
/// `f64` both ways — the table entries are the same pure IEEE
/// expressions, evaluated earlier — which is what keeps batched ≡
/// scalar bit-identity intact.
trait TickProbs {
    fn infection_p(&self, dst: NodeId) -> f64;
    fn escalation_p(&self, id: NodeId) -> f64;
    fn firewall_pass_p(&self, dst: NodeId) -> f64;
    fn src_ctx(&self, src: NodeId) -> SrcCtx;
    fn dialect_ok(&self, src: SrcCtx, dst: NodeId) -> bool;
    fn crosses_zone(&self, src: SrcCtx, dst: NodeId) -> bool;
    fn detection_p(&self, impairment_active: bool) -> f64;
}

/// Per-source context hoisted out of the lateral inner loop: the
/// source's wire dialect and security zone. Both are fixed for the
/// whole sweep over a source's attempts, and both paths read the same
/// underlying values, so hoisting changes no draw.
#[derive(Debug, Clone, Copy)]
struct SrcCtx {
    dialect: ProtocolDialect,
    zone: Zone,
}

/// The scalar probability source: catalog + profiles consulted at every
/// draw — exactly the historical `step_tick` computations.
struct LiveProbs<'a> {
    net: &'a ScadaNetwork,
    cat: &'a ExploitCatalog,
    historian: &'a ComponentProfile,
    sensor: &'a ComponentProfile,
    stealth: f64,
}

impl TickProbs for LiveProbs<'_> {
    #[inline]
    fn infection_p(&self, dst: NodeId) -> f64 {
        self.cat.infection_probability(self.net.profile(dst))
    }

    #[inline]
    fn escalation_p(&self, id: NodeId) -> f64 {
        self.cat.escalation_probability(self.net.profile(id))
    }

    #[inline]
    fn firewall_pass_p(&self, dst: NodeId) -> f64 {
        self.cat.firewall_pass_probability(self.net.profile(dst))
    }

    #[inline]
    fn src_ctx(&self, src: NodeId) -> SrcCtx {
        SrcCtx {
            dialect: self.net.profile(src).dialect,
            zone: self.net.zone(src),
        }
    }

    #[inline]
    fn dialect_ok(&self, src: SrcCtx, dst: NodeId) -> bool {
        src.dialect == self.net.profile(dst).dialect
            || !matches!(self.net.role(dst), NodeRole::Plc | NodeRole::FieldGateway)
    }

    #[inline]
    fn crosses_zone(&self, src: SrcCtx, dst: NodeId) -> bool {
        src.zone != self.net.zone(dst)
    }

    #[inline]
    fn detection_p(&self, impairment_active: bool) -> f64 {
        self.cat
            .detection_probability(self.historian, self.sensor, impairment_active, self.stealth)
    }
}

/// Per-node probability tables of the batched engine, filled **once at
/// simulator construction** (profiles cannot change while the
/// simulator borrows the network): each entry is the same pure `f64`
/// expression the scalar path evaluates per draw, so lookups are
/// bit-identical to live computation. Filling per batch would cost
/// O(nodes) against a tick loop that costs O(frontier) — at fleet
/// scale the fill would dominate the replications it serves.
#[derive(Debug, Clone, Default)]
struct ProbTables {
    /// One packed entry per node: everything the lateral inner loop
    /// asks about a destination lives on one cache line.
    nodes: Vec<NodeProbs>,
    detection_quiet: f64,
    detection_active: f64,
}

/// One node's precomputed tick-loop constants, packed array-of-structs
/// (32 bytes) so a single line fill serves the firewall, dialect, and
/// infection questions the lateral loop asks about a destination
/// back-to-back — the scalar path pays a [`ComponentProfile`] walk plus
/// catalog arithmetic for each.
#[derive(Debug, Clone, Copy)]
struct NodeProbs {
    infection: f64,
    escalation: f64,
    firewall_pass: f64,
    dialect: ProtocolDialect,
    /// Whether the node's role demands the wire dialect (PLC or field
    /// gateway destination).
    needs_dialect: bool,
    zone: Zone,
}

impl ProbTables {
    fn fill(&mut self, sim: &CampaignSimulator<'_>) {
        let net = sim.network;
        let cat = &sim.threat.catalog;
        self.nodes.clear();
        for id in net.node_ids() {
            let p = net.profile(id);
            self.nodes.push(NodeProbs {
                infection: cat.infection_probability(p),
                escalation: cat.escalation_probability(p),
                firewall_pass: cat.firewall_pass_probability(p),
                dialect: p.dialect,
                needs_dialect: matches!(net.role(id), NodeRole::Plc | NodeRole::FieldGateway),
                zone: net.zone(id),
            });
        }
        self.detection_quiet = cat.detection_probability(
            &sim.historian_profile,
            &sim.sensor_profile,
            false,
            sim.threat.stealth,
        );
        self.detection_active = cat.detection_probability(
            &sim.historian_profile,
            &sim.sensor_profile,
            true,
            sim.threat.stealth,
        );
    }
}

impl TickProbs for ProbTables {
    #[inline]
    fn infection_p(&self, dst: NodeId) -> f64 {
        self.nodes[dst.index()].infection
    }

    #[inline]
    fn escalation_p(&self, id: NodeId) -> f64 {
        self.nodes[id.index()].escalation
    }

    #[inline]
    fn firewall_pass_p(&self, dst: NodeId) -> f64 {
        self.nodes[dst.index()].firewall_pass
    }

    #[inline]
    fn src_ctx(&self, src: NodeId) -> SrcCtx {
        let node = &self.nodes[src.index()];
        SrcCtx {
            dialect: node.dialect,
            zone: node.zone,
        }
    }

    #[inline]
    fn dialect_ok(&self, src: SrcCtx, dst: NodeId) -> bool {
        let node = &self.nodes[dst.index()];
        src.dialect == node.dialect || !node.needs_dialect
    }

    #[inline]
    fn crosses_zone(&self, src: SrcCtx, dst: NodeId) -> bool {
        src.zone != self.nodes[dst.index()].zone
    }

    #[inline]
    fn detection_p(&self, impairment_active: bool) -> f64 {
        if impairment_active {
            self.detection_active
        } else {
            self.detection_quiet
        }
    }
}

/// Reusable state of the lockstep batched campaign engine: K lanes of
/// the scalar per-replication workspace, their tick-loop progress, a
/// K-wide SoA block of xoshiro lane states, and the stats of the most
/// recent batch. Created once per worker
/// ([`CampaignSimulator::batched_workspace`]) and reused across
/// batches; like [`CampaignWorkspace`], the steady state at a fixed
/// batch width runs allocation-free (`tests/zero_alloc.rs`).
#[derive(Debug, Default)]
pub struct BatchedCampaignWorkspace {
    /// One scalar workspace per lane; sized lazily to the widest batch
    /// seen.
    lanes: Vec<CampaignWorkspace>,
    /// Per-lane tick-loop progress of the in-flight batch.
    progress: Vec<Progress>,
    /// Lane-major SoA block of per-lane RNG states.
    rng: RngLanes,
    /// Per-lane stats of the most recent [`CampaignSimulator::run_batch_into`].
    stats: Vec<CampaignStats>,
    /// Scratch for seed slices handed across the [`BatchTask`] seam.
    seed_buf: Vec<u64>,
    /// Per-lane segment start ticks of an in-flight stage batch.
    start_ticks: Vec<u32>,
    /// Indices of lanes still advancing — finished lanes drop out so a
    /// straggler lane never pays a per-tick sweep over dead lanes.
    live_lanes: Vec<usize>,
}

impl BatchedCampaignWorkspace {
    /// An empty batched workspace; lanes size themselves on first use.
    #[must_use]
    pub fn new() -> Self {
        BatchedCampaignWorkspace::default()
    }

    /// Grows the lane array to at least `k` scalar workspaces.
    fn ensure_lanes(&mut self, k: usize) {
        if self.lanes.len() < k {
            self.lanes.resize_with(k, CampaignWorkspace::new);
        }
    }

    /// Lane 0 as a scalar [`CampaignWorkspace`] — the remainder/scalar
    /// path of the lockstep executor and the staged splitting task run
    /// through it.
    pub fn scalar_lane(&mut self) -> &mut CampaignWorkspace {
        self.ensure_lanes(1);
        &mut self.lanes[0]
    }

    /// The per-lane scalar workspace of the most recent batch (ratio
    /// curve and final states of that lane's replication).
    #[must_use]
    pub fn lane(&self, lane: usize) -> &CampaignWorkspace {
        &self.lanes[lane]
    }

    /// Per-lane stats of the most recent batch, in seed order.
    #[must_use]
    pub fn stats(&self) -> &[CampaignStats] {
        &self.stats
    }
}

/// Tick-based Monte-Carlo campaign simulator over a plant network.
///
/// Network-derived constants (entry points, PLC ids and their payload
/// probabilities, detection profiles, the CSR topology reference) are
/// resolved once at construction — from the network's precomputed
/// role/zone indexes, without allocating scans — so each replication
/// starts without re-touching the topology. Within a replication the
/// event-driven tick loop (see the module docs) costs O(frontier), not
/// O(nodes).
#[derive(Debug)]
pub struct CampaignSimulator<'n> {
    network: &'n ScadaNetwork,
    topo: &'n Topology,
    threat: ThreatModel,
    config: CampaignConfig,
    /// Entry-point node ids (initial-infection candidates), ascending.
    entries: Vec<NodeId>,
    /// PLC node ids (payload targets) — the network's role index.
    plc_ids: &'n [NodeId],
    /// Historian/engineering node ids (exfiltration targets), ascending.
    data_ids: Vec<NodeId>,
    /// Per-node PLC payload probability; zero for non-PLCs and for
    /// threats without a PLC payload. Fixed because profiles cannot
    /// change while the simulator borrows the network.
    payload_p: Vec<f64>,
    /// Representative profiles for detection: the historian node and a
    /// field sensor owner (first PLC).
    historian_profile: diversify_scada::components::ComponentProfile,
    sensor_profile: diversify_scada::components::ComponentProfile,
    /// Per-node probability tables of the batched lockstep engine,
    /// precomputed here because profiles cannot change while the
    /// simulator borrows the network.
    tables: ProbTables,
}

impl<'n> CampaignSimulator<'n> {
    /// Creates a simulator for `threat` against `network`.
    #[must_use]
    pub fn new(network: &'n ScadaNetwork, threat: ThreatModel, config: CampaignConfig) -> Self {
        let topo = network.topology();
        let entries = merge_sorted(
            topo.with_role(NodeRole::OfficeWorkstation),
            topo.with_role(NodeRole::EngineeringWorkstation),
        );
        let plc_ids = topo.with_role(NodeRole::Plc);
        let data_ids = merge_sorted(
            topo.with_role(NodeRole::Historian),
            topo.with_role(NodeRole::EngineeringWorkstation),
        );
        let mut payload_p = vec![0.0; network.node_count()];
        for &plc in plc_ids {
            payload_p[plc.index()] = threat.catalog.plc_payload_probability(network.profile(plc));
        }
        let historian_profile = topo
            .with_role(NodeRole::Historian)
            .first()
            .map(|&id| *network.profile(id))
            .unwrap_or_default();
        let sensor_profile = plc_ids
            .first()
            .map(|&id| *network.profile(id))
            .unwrap_or_default();
        let mut sim = CampaignSimulator {
            network,
            topo,
            threat,
            config,
            entries,
            plc_ids,
            data_ids,
            payload_p,
            historian_profile,
            sensor_profile,
            tables: ProbTables::default(),
        };
        let mut tables = std::mem::take(&mut sim.tables);
        tables.fill(&sim);
        sim.tables = tables;
        sim
    }

    /// The threat model under simulation.
    #[must_use]
    pub fn threat(&self) -> &ThreatModel {
        &self.threat
    }

    /// A workspace sized for this simulator's network — create one per
    /// worker and pass it to [`CampaignSimulator::run_into`] for every
    /// replication (the idiom behind `Executor::run_ws`).
    #[must_use]
    pub fn workspace(&self) -> CampaignWorkspace {
        let mut ws = CampaignWorkspace::new();
        ws.reset(self.network.node_count());
        ws
    }

    /// Runs one campaign replication with the given seed — the
    /// compatibility entry point that materializes a full
    /// [`CampaignOutcome`] (ratio curve + final states). It allocates a
    /// fresh workspace per call; hot loops should hold a
    /// [`CampaignWorkspace`] and call [`CampaignSimulator::run_into`]
    /// instead. Trajectories are bit-identical between the two.
    #[must_use]
    pub fn run(&self, seed: u64) -> CampaignOutcome {
        let mut ws = self.workspace();
        let stats = self.run_into(&mut ws, seed);
        let CampaignWorkspace {
            states,
            mut ratio_curve,
            ..
        } = ws;
        // The curve is sized lazily, so trim the growth slack instead of
        // handing callers a buffer reserved for `max_ticks + 1` samples.
        ratio_curve.shrink_to_fit();
        CampaignOutcome {
            time_to_attack: stats.time_to_attack,
            time_to_detection: stats.time_to_detection,
            compromised_ratio: ratio_curve,
            final_states: states,
            deepest_stage: stats.deepest_stage,
            firewall_blocks: stats.firewall_blocks,
            payload_failures: stats.payload_failures,
        }
    }

    /// Runs one campaign replication inside `ws`, reusing its buffers —
    /// the allocation-free, event-driven hot path. Returns the scalar
    /// [`CampaignStats`]; the full ratio curve and final node states
    /// remain readable from the workspace until the next replication.
    ///
    /// The trajectory is a pure function of `seed`: the active sets are
    /// traversed in ascending id order with a cursor, which reproduces
    /// exactly the draw schedule of a dense ascending scan that checks
    /// eligibility at visit time, so `run_into` is bit-identical to
    /// [`CampaignSimulator::run_reference`] and
    /// [`CampaignSimulator::run`].
    #[must_use]
    pub fn run_into(&self, ws: &mut CampaignWorkspace, seed: u64) -> CampaignStats {
        let mut rng = RngStream::new(seed, StreamId(0xA77));
        let n = self.network.node_count();
        ws.reset(n);
        let mut pr = Progress::fresh(n);
        ws.ratio_curve.push(0.0);
        while pr.tick < self.config.max_ticks && !pr.done() {
            self.step_tick(ws, &mut pr, &mut rng);
        }
        pr.stats(ws.ratio_curve.last().copied().unwrap_or(0.0))
    }

    /// A batched workspace for this simulator — create one per worker
    /// and pass it to [`CampaignSimulator::run_batch_into`] for every
    /// batch (the idiom behind `Executor::run_ws_lockstep`). Lanes size
    /// themselves to the widest batch seen.
    #[must_use]
    pub fn batched_workspace(&self) -> BatchedCampaignWorkspace {
        BatchedCampaignWorkspace::new()
    }

    /// Runs `seeds.len()` campaign replications in lockstep: all lanes
    /// advance one tick per pass over the batch, sharing the per-node
    /// probability tables (precomputed at construction) and one
    /// lane-major SoA block of RNG states. Returns the per-lane
    /// [`CampaignStats`] in seed
    /// order; each lane's ratio curve and final states stay readable
    /// via [`BatchedCampaignWorkspace::lane`] until the next batch.
    ///
    /// **Determinism contract:** every lane draws from its own
    /// xoshiro256++ stream seeded exactly like the scalar path
    /// (`RngStream::new(seed, StreamId(0xA77))`), and the tick stepper
    /// is the same monomorphized body the scalar engine runs, so
    /// `run_batch_into(ws, seeds)[i]` is bit-identical to
    /// `run_into(ws, seeds[i])` for every lane, any batch width, and
    /// any mix of lane lifetimes (lanes that finish early are skipped;
    /// their streams never advance again).
    pub fn run_batch_into<'w>(
        &self,
        ws: &'w mut BatchedCampaignWorkspace,
        seeds: &[u64],
    ) -> &'w [CampaignStats] {
        let n = self.network.node_count();
        let k = seeds.len();
        ws.ensure_lanes(k);
        ws.rng.reseed(seeds, StreamId(0xA77));
        ws.progress.clear();
        ws.progress.resize(k, Progress::fresh(n));
        ws.stats.clear();
        let max_ticks = self.config.max_ticks;
        let tables = &self.tables;
        let BatchedCampaignWorkspace {
            lanes,
            progress,
            rng,
            stats,
            live_lanes,
            ..
        } = ws;
        for lane_ws in &mut lanes[..k] {
            lane_ws.reset(n);
            lane_ws.ratio_curve.push(0.0);
        }
        let live = |pr: &Progress| pr.tick < max_ticks && !pr.done();
        live_lanes.clear();
        live_lanes.extend((0..k).filter(|&lane| live(&progress[lane])));
        while !live_lanes.is_empty() {
            // Lanes draw from independent streams, so dropping finished
            // lanes out of the pass order cannot perturb the others.
            live_lanes.retain(|&lane| {
                let pr = &mut progress[lane];
                let mut lane_rng = rng.checkout(lane);
                self.step_tick_core(&mut lanes[lane], pr, &mut lane_rng, tables);
                if live(pr) && drained(&lanes[lane], pr) {
                    // Every remaining tick of this lane is a drained
                    // tick: replay them draw-for-draw without the
                    // stepper and retire the lane.
                    self.run_out_drained(&mut lanes[lane], pr, &mut lane_rng, tables);
                }
                rng.commit(lane, lane_rng);
                live(pr)
            });
        }
        for (lane_ws, pr) in lanes[..k].iter().zip(progress.iter()) {
            stats.push(pr.stats(lane_ws.ratio_curve.last().copied().unwrap_or(0.0)));
        }
        stats
    }

    /// The lockstep counterpart of [`CampaignSimulator::run_stage`]:
    /// advances one replication segment per `(froms[i], seeds[i])` pair
    /// toward `milestone`, all lanes in lockstep over shared probability
    /// tables, and appends one [`StageRun`] per lane to `out` in order.
    /// Each lane is bit-identical to the scalar
    /// `run_stage(ws, froms[i], seeds[i], milestone)` — the splitting
    /// engine's level populations and the adaptive-placement pilot both
    /// run through here.
    ///
    /// # Panics
    ///
    /// If `froms` and `seeds` differ in length.
    pub fn run_stage_batch(
        &self,
        ws: &mut BatchedCampaignWorkspace,
        froms: &[Option<&CampaignCheckpoint>],
        seeds: &[u64],
        milestone: CampaignMilestone,
        out: &mut Vec<StageRun>,
    ) {
        assert_eq!(froms.len(), seeds.len(), "one parent slot per seed");
        let n = self.network.node_count();
        let k = seeds.len();
        ws.ensure_lanes(k);
        ws.rng.reseed(seeds, StreamId(0xA77));
        ws.progress.clear();
        ws.start_ticks.clear();
        let max_ticks = self.config.max_ticks;
        let tables = &self.tables;
        let BatchedCampaignWorkspace {
            lanes,
            progress,
            rng,
            start_ticks,
            live_lanes,
            ..
        } = ws;
        for (lane_ws, from) in lanes[..k].iter_mut().zip(froms) {
            let pr = match from {
                Some(cp) => self.restore(lane_ws, cp),
                None => {
                    lane_ws.reset(n);
                    lane_ws.ratio_curve.push(0.0);
                    Progress::fresh(n)
                }
            };
            start_ticks.push(pr.tick);
            progress.push(pr);
        }
        let live = |pr: &Progress| !milestone.reached(pr) && !pr.done() && pr.tick < max_ticks;
        live_lanes.clear();
        live_lanes.extend((0..k).filter(|&lane| live(&progress[lane])));
        while !live_lanes.is_empty() {
            live_lanes.retain(|&lane| {
                let pr = &mut progress[lane];
                let mut lane_rng = rng.checkout(lane);
                self.step_tick_core(&mut lanes[lane], pr, &mut lane_rng, tables);
                rng.commit(lane, lane_rng);
                live(pr)
            });
        }
        for ((lane_ws, pr), &start) in lanes[..k]
            .iter()
            .zip(progress.iter())
            .zip(start_ticks.iter())
        {
            out.push(StageRun {
                reached: milestone.reached(pr),
                ticks: pr.tick - start,
                checkpoint: self.capture(lane_ws, pr),
            });
        }
    }

    /// The live (per-draw) probability source of the scalar path.
    fn live_probs(&self) -> LiveProbs<'_> {
        LiveProbs {
            net: self.network,
            cat: &self.threat.catalog,
            historian: &self.historian_profile,
            sensor: &self.sensor_profile,
            stealth: self.threat.stealth,
        }
    }

    /// Advances one tick of the event-driven engine: entry seeding,
    /// privilege escalation, lateral propagation, payload delivery, goal
    /// evaluation, detection, and the per-tick ratio sample — exactly
    /// the body of the historical `run_into` tick loop, draw for draw,
    /// so the stepper stays bit-identical to
    /// [`CampaignSimulator::run_reference`].
    fn step_tick(&self, ws: &mut CampaignWorkspace, pr: &mut Progress, rng: &mut RngStream) {
        self.step_tick_core(ws, pr, rng, &self.live_probs());
    }

    /// The tick stepper itself, generic over the RNG handle (scalar
    /// stream or lockstep lane) and the probability source (live
    /// catalog computation or precomputed tables). One monomorphized
    /// body serves both engines, which is what makes the batched ≡
    /// scalar draw schedule identical *by construction*: the draws are
    /// the same code, in the same order, on the same state machine.
    fn step_tick_core<R: TickRng, P: TickProbs>(
        &self,
        ws: &mut CampaignWorkspace,
        pr: &mut Progress,
        rng: &mut R,
        probs: &P,
    ) {
        let net = self.network;
        let topo = self.topo;
        let n = pr.nodes;
        let total_plcs = self.plc_ids.len().max(1);
        pr.tick += 1;
        let tick = pr.tick;
        let CampaignWorkspace {
            states,
            compromised_nbrs,
            ratio_curve,
            infected,
            frontier,
            eligible,
            dirty_states,
            dirty_degrees,
        } = ws;

        // Stage: Initial → Activated (seed an entry node). The attacker
        // seeds an entry-point node (USB stick in the office, per the
        // Stuxnet dossier); entry succeeds against the entry node's OS.
        if pr.clean == n {
            if let Some(&entry) = self.entries.first() {
                let p = probs.infection_p(entry);
                if rng.bernoulli(p) {
                    states[entry.index()] = NodeCompromise::Infected;
                    pr.clean -= 1;
                    infected.insert(entry.index());
                    note_left_clean(
                        topo,
                        entry,
                        states,
                        compromised_nbrs,
                        frontier,
                        dirty_states,
                        dirty_degrees,
                    );
                    pr.deepest = pr.deepest.max(AttackStage::Activated);
                }
            }
        }

        // Stage: privilege escalation on infected nodes. Cursor
        // traversal visits each node Infected at stage entry once, in
        // ascending id order — the dense scan's draw order. A node
        // that escalates leaves the set (behind the cursor) and joins
        // the lateral structures.
        {
            let mut cursor = 0;
            while let Some(i) = infected.next_at_or_after(cursor) {
                cursor = i + 1;
                let id = NodeId::from_index(i);
                if rng.bernoulli(probs.escalation_p(id)) {
                    states[i] = NodeCompromise::Rooted;
                    infected.remove(i);
                    note_rooted(
                        net,
                        topo,
                        &self.payload_p,
                        id,
                        states,
                        compromised_nbrs,
                        frontier,
                        eligible,
                        &mut pr.data_rooted,
                    );
                    pr.deepest = pr.deepest.max(AttackStage::RootAccess);
                }
            }
        }

        // Stage: lateral propagation from the frontier — rooted nodes
        // that still have a clean neighbor. A source saturated by an
        // earlier source this tick has already left the set, exactly
        // as the dense scan's visit-time eligibility check skips it.
        // When the last node leaves Clean every source saturates, so
        // the frontier empties itself and the stage disappears.
        if pr.clean > 0 {
            let mut cursor = 0;
            while let Some(s) = frontier.next_at_or_after(cursor) {
                cursor = s + 1;
                let src = NodeId::from_index(s);
                let neighbors = topo.neighbors(src);
                let src_ctx = probs.src_ctx(src);
                for _ in 0..self.threat.attempts_per_tick {
                    let dst = neighbors[rng.index(neighbors.len())];
                    if states[dst.index()] != NodeCompromise::Clean {
                        continue;
                    }
                    // Zone crossings face the destination firewall.
                    if probs.crosses_zone(src_ctx, dst) {
                        let pass = probs.firewall_pass_p(dst);
                        if !rng.bernoulli(pass) {
                            pr.firewall_blocks += 1;
                            continue;
                        }
                    }
                    // Propagation additionally requires speaking the
                    // destination's wire dialect inside the field zone.
                    if !probs.dialect_ok(src_ctx, dst) && !rng.bernoulli(0.05) {
                        pr.payload_failures += 1;
                        continue;
                    }
                    if rng.bernoulli(probs.infection_p(dst)) {
                        states[dst.index()] = NodeCompromise::Infected;
                        pr.clean -= 1;
                        infected.insert(dst.index());
                        note_left_clean(
                            topo,
                            dst,
                            states,
                            compromised_nbrs,
                            frontier,
                            dirty_states,
                            dirty_degrees,
                        );
                        pr.deepest = pr.deepest.max(AttackStage::NetworkPropagation);
                    }
                }
            }
        }

        // Stage: PLC payload delivery (sabotage threats only). The
        // eligible set holds exactly the PLCs the dense scan would
        // draw for: payload-capable, not yet reprogrammed, rooted
        // self-or-neighbor. A PLC whose neighbor is reprogrammed
        // mid-stage joins at its id — visited this tick iff the
        // cursor has not passed it, matching the dense ascending scan.
        {
            let mut cursor = 0;
            while let Some(pi) = eligible.next_at_or_after(cursor) {
                cursor = pi + 1;
                let plc = NodeId::from_index(pi);
                if rng.bernoulli(self.payload_p[pi]) {
                    let prev = states[pi];
                    states[pi] = NodeCompromise::Reprogrammed;
                    if prev == NodeCompromise::Clean {
                        pr.clean -= 1;
                        note_left_clean(
                            topo,
                            plc,
                            states,
                            compromised_nbrs,
                            frontier,
                            dirty_states,
                            dirty_degrees,
                        );
                    } else if prev == NodeCompromise::Infected {
                        infected.remove(pi);
                    }
                    eligible.remove(pi);
                    pr.reprogrammed += 1;
                    note_rooted(
                        net,
                        topo,
                        &self.payload_p,
                        plc,
                        states,
                        compromised_nbrs,
                        frontier,
                        eligible,
                        &mut pr.data_rooted,
                    );
                    pr.deepest = pr.deepest.max(AttackStage::DeviceImpairment);
                } else {
                    pr.payload_failures += 1;
                }
            }
        }

        // Goal evaluation.
        match self.threat.goal {
            AttackGoal::ImpairDevices { fraction } => {
                if pr.time_to_attack.is_none()
                    && (pr.reprogrammed as f64 / total_plcs as f64) >= fraction
                {
                    pr.time_to_attack = Some(tick);
                }
            }
            AttackGoal::Exfiltrate { ticks } => {
                // `data_rooted` replaces the dense per-tick scan over
                // the historian/engineering ids; roots are permanent,
                // so a counter maintained at rooting time is exact.
                if pr.data_rooted > 0 {
                    pr.exfil_ticks += 1;
                    if pr.time_to_attack.is_none() && pr.exfil_ticks >= ticks {
                        pr.time_to_attack = Some(tick);
                    }
                }
            }
        }

        // Detection (Time-To-Security-Failure). Only active intrusions
        // can be noticed.
        if pr.time_to_detection.is_none() && pr.clean < n {
            let impairment_active = pr.reprogrammed > 0;
            let p = probs.detection_p(impairment_active);
            if rng.bernoulli(p) {
                pr.time_to_detection = Some(tick);
                if self.config.detection_stops_attack {
                    pr.halted = true;
                    ratio_curve.push(pr.ratio());
                    return;
                }
            }
        }

        ratio_curve.push(pr.ratio());
    }

    /// Replays the remaining ticks of a [`drained`] lane without the
    /// stepper: every stage sweep is provably empty, so a tick reduces
    /// to the goal-clock evaluation, one detection Bernoulli at a
    /// constant probability while detection is unresolved, and one
    /// (constant) ratio sample — exactly what
    /// [`CampaignSimulator::step_tick_core`] would do, draw for draw,
    /// minus the sweeps it provably would not make. Keeps the lane
    /// bit-identical to scalar while costing a few nanoseconds per tick
    /// instead of a full stepper pass.
    fn run_out_drained<R: TickRng, P: TickProbs>(
        &self,
        ws: &mut CampaignWorkspace,
        pr: &mut Progress,
        rng: &mut R,
        probs: &P,
    ) {
        let total_plcs = self.plc_ids.len().max(1);
        let ratio = pr.ratio();
        // Reprogramming needs an eligible PLC, so impairment activity —
        // and with it the detection probability — is frozen.
        let detection_p = probs.detection_p(pr.reprogrammed > 0);
        while pr.tick < self.config.max_ticks && !pr.done() {
            pr.tick += 1;
            match self.threat.goal {
                AttackGoal::ImpairDevices { fraction } => {
                    if pr.time_to_attack.is_none()
                        && (pr.reprogrammed as f64 / total_plcs as f64) >= fraction
                    {
                        pr.time_to_attack = Some(pr.tick);
                    }
                }
                AttackGoal::Exfiltrate { ticks } => {
                    if pr.data_rooted > 0 {
                        pr.exfil_ticks += 1;
                        if pr.time_to_attack.is_none() && pr.exfil_ticks >= ticks {
                            pr.time_to_attack = Some(pr.tick);
                        }
                    }
                }
            }
            if pr.time_to_detection.is_none() && rng.bernoulli(detection_p) {
                pr.time_to_detection = Some(pr.tick);
                if self.config.detection_stops_attack {
                    pr.halted = true;
                }
            }
            ws.ratio_curve.push(ratio);
        }
    }

    /// Snapshots the current replication state from `ws` and `pr`. The
    /// sparse non-clean list comes from the workspace's dirty list
    /// (each node that left Clean appears there exactly once), sorted
    /// ascending so the checkpoint is canonical regardless of the order
    /// nodes were compromised in.
    fn capture(&self, ws: &CampaignWorkspace, pr: &Progress) -> CampaignCheckpoint {
        let mut states: Vec<(u32, NodeCompromise)> = ws
            .dirty_states
            .iter()
            .map(|&i| (i, ws.states[i as usize]))
            .collect();
        states.sort_unstable_by_key(|&(i, _)| i);
        CampaignCheckpoint {
            progress: *pr,
            states,
        }
    }

    /// Rebuilds the workspace from a checkpoint: dense states, the
    /// compromised-neighbor counters, dirty lists, and the three active
    /// sets, all derived deterministically from the sparse non-clean
    /// list — the same invariants the incremental `note_left_clean` /
    /// `note_rooted` bookkeeping maintains, so a resumed stepper
    /// continues exactly where the checkpointed one stood.
    fn restore(&self, ws: &mut CampaignWorkspace, cp: &CampaignCheckpoint) -> Progress {
        let n = self.network.node_count();
        debug_assert_eq!(cp.progress.nodes, n, "checkpoint from a different network");
        ws.reset(n);
        let CampaignWorkspace {
            states,
            compromised_nbrs,
            ratio_curve,
            infected,
            frontier,
            eligible,
            dirty_states,
            dirty_degrees,
        } = ws;
        for &(i, state) in &cp.states {
            states[i as usize] = state;
            dirty_states.push(i);
        }
        for &(i, _) in &cp.states {
            for &nb in self.topo.neighbors(NodeId::from_index(i as usize)) {
                let j = nb.index();
                if compromised_nbrs[j] == 0 {
                    dirty_degrees.push(j as u32);
                }
                compromised_nbrs[j] += 1;
            }
        }
        for &(i, state) in &cp.states {
            let i = i as usize;
            match state {
                NodeCompromise::Clean => {}
                NodeCompromise::Infected => {
                    infected.insert(i);
                }
                NodeCompromise::Rooted | NodeCompromise::Reprogrammed => {
                    let id = NodeId::from_index(i);
                    if (compromised_nbrs[i] as usize) < self.topo.degree(id) {
                        frontier.insert(i);
                    }
                    if self.payload_p[i] > 0.0 && state != NodeCompromise::Reprogrammed {
                        eligible.insert(i);
                    }
                    for &nb in self.topo.neighbors(id) {
                        let j = nb.index();
                        if self.payload_p[j] > 0.0 && states[j] != NodeCompromise::Reprogrammed {
                            eligible.insert(j);
                        }
                    }
                }
            }
        }
        ratio_curve.push(cp.progress.ratio());
        cp.progress
    }

    /// Runs one replication segment until `milestone` is crossed (also
    /// recognized when the starting checkpoint already crossed it), the
    /// campaign can no longer change, or the tick horizon is reached —
    /// the per-level task of the multilevel-splitting engine.
    ///
    /// `from: None` starts a fresh replication; `Some(checkpoint)`
    /// resumes one. Each segment draws from a fresh
    /// [`RngStream`] seeded with `seed`, so a resumed trajectory is a
    /// pure function of `(checkpoint, seed)` — that is what lets
    /// splitting re-seed survivor clones deterministically while
    /// preserving serial ≡ parallel bit-identity.
    #[must_use]
    pub fn run_stage(
        &self,
        ws: &mut CampaignWorkspace,
        from: Option<&CampaignCheckpoint>,
        seed: u64,
        milestone: CampaignMilestone,
    ) -> StageRun {
        let mut rng = RngStream::new(seed, StreamId(0xA77));
        let mut pr = match from {
            Some(cp) => self.restore(ws, cp),
            None => {
                let n = self.network.node_count();
                ws.reset(n);
                ws.ratio_curve.push(0.0);
                Progress::fresh(n)
            }
        };
        let start = pr.tick;
        while !milestone.reached(&pr) && !pr.done() && pr.tick < self.config.max_ticks {
            self.step_tick(ws, &mut pr, &mut rng);
        }
        StageRun {
            reached: milestone.reached(&pr),
            ticks: pr.tick - start,
            checkpoint: self.capture(ws, &pr),
        }
    }

    /// The dense reference implementation, kept alive as the
    /// differential oracle for the frontier engine: every call allocates
    /// fresh buffers and every tick rescans *all* nodes, checking stage
    /// eligibility (state, clean-neighbor availability, payload
    /// preconditions) at visit time in ascending id order. Differential
    /// and property tests prove [`CampaignSimulator::run`] /
    /// [`CampaignSimulator::run_into`] reproduce it bit for bit; the
    /// `campaign_fleet_scaling` bench measures the frontier path against
    /// it.
    #[must_use]
    pub fn run_reference(&self, seed: u64) -> CampaignOutcome {
        let net = self.network;
        let cat = &self.threat.catalog;
        let mut rng = RngStream::new(seed, StreamId(0xA77));
        let n = net.node_count();
        let mut states = vec![NodeCompromise::Clean; n];
        let mut deepest = AttackStage::Initial;
        let mut ratio_curve = Vec::with_capacity(self.config.max_ticks as usize + 1);
        let mut time_to_attack = None;
        let mut time_to_detection = None;
        let mut firewall_blocks = 0u32;
        let mut payload_failures = 0u32;
        let mut exfil_ticks = 0u32;

        let total_plcs = self.plc_ids.len().max(1);
        let mut clean = n;
        let mut infected = 0usize;
        let mut reprogrammed = 0usize;

        ratio_curve.push(0.0);
        'ticks: for tick in 1..=self.config.max_ticks {
            if clean == n {
                if let Some(&entry) = self.entries.first() {
                    let p = cat.infection_probability(net.profile(entry));
                    if rng.bernoulli(p) {
                        states[entry.index()] = NodeCompromise::Infected;
                        clean -= 1;
                        infected += 1;
                        deepest = deepest.max(AttackStage::Activated);
                    }
                }
            }

            if infected > 0 {
                for id in net.node_ids() {
                    if states[id.index()] == NodeCompromise::Infected
                        && rng.bernoulli(cat.escalation_probability(net.profile(id)))
                    {
                        states[id.index()] = NodeCompromise::Rooted;
                        infected -= 1;
                        deepest = deepest.max(AttackStage::RootAccess);
                    }
                }
            }

            if clean > 0 {
                // The dense sweep the frontier engine replaces: visit
                // every node, and make lateral attempts from those that
                // are rooted *and still have a clean neighbor* at visit
                // time.
                for src in net.node_ids() {
                    if states[src.index()] < NodeCompromise::Rooted {
                        continue;
                    }
                    let neighbors = net.neighbors(src);
                    if !neighbors
                        .iter()
                        .any(|&nb| states[nb.index()] == NodeCompromise::Clean)
                    {
                        continue;
                    }
                    for _ in 0..self.threat.attempts_per_tick {
                        let dst = neighbors[rng.index(neighbors.len())];
                        if states[dst.index()] != NodeCompromise::Clean {
                            continue;
                        }
                        let dst_profile = net.profile(dst);
                        if net.crosses_zone(src, dst) {
                            let pass = cat.firewall_pass_probability(dst_profile);
                            if !rng.bernoulli(pass) {
                                firewall_blocks += 1;
                                continue;
                            }
                        }
                        let src_dialect = net.profile(src).dialect;
                        let dialect_ok = src_dialect == dst_profile.dialect
                            || !matches!(net.role(dst), NodeRole::Plc | NodeRole::FieldGateway);
                        if !dialect_ok && !rng.bernoulli(0.05) {
                            payload_failures += 1;
                            continue;
                        }
                        if rng.bernoulli(cat.infection_probability(dst_profile)) {
                            states[dst.index()] = NodeCompromise::Infected;
                            clean -= 1;
                            infected += 1;
                            deepest = deepest.max(AttackStage::NetworkPropagation);
                        }
                    }
                }
            }

            if reprogrammed < self.plc_ids.len() {
                for &plc in self.plc_ids {
                    if states[plc.index()] == NodeCompromise::Reprogrammed {
                        continue;
                    }
                    let has_rooted_neighbor = net
                        .neighbors(plc)
                        .iter()
                        .any(|&nb| states[nb.index()] >= NodeCompromise::Rooted)
                        || states[plc.index()] >= NodeCompromise::Rooted;
                    if !has_rooted_neighbor {
                        continue;
                    }
                    let p = cat.plc_payload_probability(net.profile(plc));
                    if p == 0.0 {
                        continue;
                    }
                    if rng.bernoulli(p) {
                        if states[plc.index()] == NodeCompromise::Clean {
                            clean -= 1;
                        } else if states[plc.index()] == NodeCompromise::Infected {
                            infected -= 1;
                        }
                        states[plc.index()] = NodeCompromise::Reprogrammed;
                        reprogrammed += 1;
                        deepest = deepest.max(AttackStage::DeviceImpairment);
                    } else {
                        payload_failures += 1;
                    }
                }
            }

            match self.threat.goal {
                AttackGoal::ImpairDevices { fraction } => {
                    if time_to_attack.is_none()
                        && (reprogrammed as f64 / total_plcs as f64) >= fraction
                    {
                        time_to_attack = Some(tick);
                    }
                }
                AttackGoal::Exfiltrate { ticks } => {
                    let data_access = self
                        .data_ids
                        .iter()
                        .any(|&id| states[id.index()] >= NodeCompromise::Rooted);
                    if data_access {
                        exfil_ticks += 1;
                        if time_to_attack.is_none() && exfil_ticks >= ticks {
                            time_to_attack = Some(tick);
                        }
                    }
                }
            }

            if time_to_detection.is_none() && clean < n {
                let impairment_active = reprogrammed > 0;
                let p = cat.detection_probability(
                    &self.historian_profile,
                    &self.sensor_profile,
                    impairment_active,
                    self.threat.stealth,
                );
                if rng.bernoulli(p) {
                    time_to_detection = Some(tick);
                    if self.config.detection_stops_attack {
                        ratio_curve.push((n - clean) as f64 / n as f64);
                        break 'ticks;
                    }
                }
            }

            ratio_curve.push((n - clean) as f64 / n as f64);

            if time_to_attack.is_some() && time_to_detection.is_some() {
                break;
            }
        }

        CampaignOutcome {
            time_to_attack,
            time_to_detection,
            compromised_ratio: ratio_curve,
            final_states: states,
            deepest_stage: deepest,
            firewall_blocks,
            payload_failures,
        }
    }

    /// Runs `replications` campaigns under distinct seeds derived from
    /// `master_seed` on the default (parallel) [`Executor`] and returns
    /// every outcome in replication order. Zero replications yield an
    /// empty vector.
    #[must_use]
    pub fn run_many(&self, replications: u32, master_seed: u64) -> Vec<CampaignOutcome> {
        if replications == 0 {
            return Vec::new();
        }
        self.run_plan(
            &ReplicationPlan::flat(replications, master_seed)
                .with_namespace(CAMPAIGN_RUN_NAMESPACE),
            Executor::default(),
        )
    }

    /// Runs every replication of an explicit plan — the entry point for
    /// callers that manage seed schedules and scheduling themselves.
    /// Routes through the executor's collector fold (with the
    /// materializing `VecCollector`), so the execution path is the one
    /// every streaming aggregation uses; callers that only need
    /// summaries should fold with a streaming collector via
    /// [`Executor::collect`] instead of materializing outcomes here.
    #[must_use]
    pub fn run_plan(&self, plan: &ReplicationPlan, executor: Executor) -> Vec<CampaignOutcome> {
        executor.run(plan, |rep| self.run(rep.seed))
    }

    /// The default multilevel-splitting level schedule for this
    /// simulator's threat: monotone milestones, each *implied by* the
    /// campaign goal, ending in [`CampaignMilestone::GoalReached`] —
    /// so the product of per-level conditional probabilities estimates
    /// exactly P_SA. For sabotage goals the spread threshold derives
    /// from the number of PLCs the goal fraction requires (those PLCs
    /// are non-clean at goal time, as is the entry node, so the
    /// milestone is always implied); espionage goals can be achieved
    /// from a single engineering-workstation foothold, so no spread
    /// level is safe to insert there.
    #[must_use]
    pub fn split_milestones(&self) -> Vec<CampaignMilestone> {
        match self.threat.goal {
            AttackGoal::ImpairDevices { fraction } => {
                let total = self.plc_ids.len().max(1);
                #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
                let required = ((fraction * total as f64).ceil() as usize).max(1);
                vec![
                    CampaignMilestone::Rooted,
                    CampaignMilestone::SpreadAtLeast((required / 2).max(2)),
                    CampaignMilestone::PayloadDelivered,
                    CampaignMilestone::GoalReached,
                ]
            }
            AttackGoal::Exfiltrate { .. } => {
                vec![CampaignMilestone::Rooted, CampaignMilestone::GoalReached]
            }
        }
    }

    /// Adaptive splitting-level placement: a pilot batch estimates
    /// per-level survivor fractions and places the `SpreadAtLeast`
    /// threshold to equalize the conditional passage probabilities
    /// around it, instead of the fixed `(required/2).max(2)` heuristic
    /// of [`CampaignSimulator::split_milestones`].
    ///
    /// The pilot runs `pilot_population` replications through the
    /// lockstep stage engine: fresh toward
    /// [`CampaignMilestone::Rooted`], survivors onward toward
    /// [`CampaignMilestone::GoalReached`]. With `p_goal` the fraction
    /// of rooted survivors that reach the goal and `p_k` the fraction
    /// whose exit spread reaches `k` (spread is monotone, so exit
    /// spread is max spread), the chosen threshold minimizes
    /// `|ln p_k − ½ ln p_goal|` over `k ∈ 2..=required` — splitting the
    /// rooted→goal tail into two conditionals of comparable size.
    ///
    /// Pilot seeds derive from `master_seed` under
    /// [`PILOT_STREAM_NAMESPACE`], disjoint from both the campaign-run
    /// and splitting namespaces, so the pilot never replays a stream
    /// the estimator consumes. Whenever the pilot cannot place a level
    /// — espionage goal (no spread level is goal-implied), zero pilot
    /// population, a goal needing fewer than two PLCs, zero Rooted
    /// survivors, or no trajectory reaching the goal — the fixed
    /// schedule is returned with the reason recorded in
    /// [`MilestonePlacement::FixedFallback`].
    #[must_use]
    pub fn split_milestones_piloted(
        &self,
        pilot_population: u32,
        master_seed: u64,
    ) -> PilotedMilestones {
        let fallback = |reason: &str| PilotedMilestones {
            milestones: self.split_milestones(),
            placement: MilestonePlacement::FixedFallback {
                reason: reason.to_string(),
            },
        };
        let AttackGoal::ImpairDevices { fraction } = self.threat.goal else {
            return fallback("espionage goals take no goal-implied spread level");
        };
        if pilot_population == 0 {
            return fallback("pilot population is zero");
        }
        let total = self.plc_ids.len().max(1);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let required = ((fraction * total as f64).ceil() as usize).max(1);
        if required < 2 {
            return fallback("goal requires fewer than two PLCs; nothing to place");
        }

        let mut ws = self.batched_workspace();
        let seeds: Vec<u64> = (0..u64::from(pilot_population))
            .map(|i| derive_seed(master_seed, StreamId(PILOT_STREAM_NAMESPACE ^ i)))
            .collect();
        let froms: Vec<Option<&CampaignCheckpoint>> = vec![None; seeds.len()];
        let mut to_rooted = Vec::with_capacity(seeds.len());
        self.run_stage_batch(
            &mut ws,
            &froms,
            &seeds,
            CampaignMilestone::Rooted,
            &mut to_rooted,
        );
        let rooted: Vec<&CampaignCheckpoint> = to_rooted
            .iter()
            .filter(|r| r.reached)
            .map(|r| &r.checkpoint)
            .collect();
        if rooted.is_empty() {
            return fallback("pilot saw zero Rooted survivors");
        }

        let seeds2: Vec<u64> = (0..rooted.len() as u64)
            .map(|i| {
                derive_seed(
                    master_seed,
                    StreamId(PILOT_STREAM_NAMESPACE ^ (1 << 40) ^ i),
                )
            })
            .collect();
        let froms2: Vec<Option<&CampaignCheckpoint>> = rooted.iter().map(|cp| Some(*cp)).collect();
        let mut to_goal = Vec::with_capacity(rooted.len());
        self.run_stage_batch(
            &mut ws,
            &froms2,
            &seeds2,
            CampaignMilestone::GoalReached,
            &mut to_goal,
        );
        let goal_hits = to_goal.iter().filter(|r| r.reached).count();
        if goal_hits == 0 {
            return fallback("no pilot trajectory reached the campaign goal");
        }

        #[allow(clippy::cast_precision_loss)]
        let denom = rooted.len() as f64;
        #[allow(clippy::cast_precision_loss)]
        let p_goal = goal_hits as f64 / denom;
        let target = 0.5 * p_goal.ln();
        let mut best_k = (required / 2).max(2);
        let mut best_gap = f64::INFINITY;
        for k in 2..=required {
            let hits = to_goal
                .iter()
                .filter(|r| r.checkpoint.spread() >= k)
                .count();
            if hits == 0 {
                continue;
            }
            #[allow(clippy::cast_precision_loss)]
            let gap = ((hits as f64 / denom).ln() - target).abs();
            if gap < best_gap {
                best_gap = gap;
                best_k = k;
            }
        }
        PilotedMilestones {
            milestones: vec![
                CampaignMilestone::Rooted,
                CampaignMilestone::SpreadAtLeast(best_k),
                CampaignMilestone::PayloadDelivered,
                CampaignMilestone::GoalReached,
            ],
            placement: MilestonePlacement::Piloted {
                spread_threshold: best_k,
                rooted_survivors: rooted.len() as u32,
                goal_fraction: p_goal,
            },
        }
    }

    /// The fault-tolerant form of [`CampaignSimulator::run_plan`]: runs
    /// the plan under a [`RunPolicy`] (panic isolation, deterministic
    /// retry, budget with cooperative cancellation) and returns a
    /// [`PartialRun`] over the outcomes that completed. Each surviving
    /// outcome is bit-identical to the same replication of a fault-free
    /// `run_plan`, and outcomes whose statistics are non-finite are
    /// rejected as invalid rather than returned.
    #[must_use]
    pub fn run_plan_budgeted(
        &self,
        plan: &ReplicationPlan,
        executor: Executor,
        policy: &RunPolicy,
    ) -> PartialRun<Vec<CampaignOutcome>> {
        executor.run_ws_checked(
            plan,
            || (),
            |(): &mut (), rep| self.run(rep.seed),
            &diversify_des::exec::VecCollector,
            policy,
            |outcome: &CampaignOutcome| outcome.stats().is_finite(),
        )
    }
}

/// Stream namespace [`CampaignSimulator::run_many`] has always derived
/// its seeds under. The pre-Executor loop used additive ids
/// (`0xCA_0000 + i`); XOR derivation matches it exactly for every index
/// below 2^17. Public so callers that fold outcomes with their own
/// collectors can reproduce the historical `run_many` seed schedule on
/// an explicit plan.
pub const CAMPAIGN_RUN_NAMESPACE: u64 = 0xCA_0000;

/// Stream namespace of the adaptive-placement pilot
/// ([`CampaignSimulator::split_milestones_piloted`]): disjoint from
/// both [`CAMPAIGN_RUN_NAMESPACE`] and the splitting namespace, so
/// pilot replications never share a stream with the estimator they
/// tune.
pub const PILOT_STREAM_NAMESPACE: u64 = 0x9110_0000_0000_0000;

/// How a splitting milestone schedule was placed — returned alongside
/// the schedule by [`CampaignSimulator::split_milestones_piloted`].
#[derive(Debug, Clone, PartialEq)]
pub enum MilestonePlacement {
    /// The pilot placed the spread threshold adaptively.
    Piloted {
        /// The chosen `SpreadAtLeast` threshold.
        spread_threshold: usize,
        /// Pilot replications that reached `Rooted` (the conditional
        /// denominators).
        rooted_survivors: u32,
        /// Pilot fraction of rooted survivors that reached the goal.
        goal_fraction: f64,
    },
    /// The fixed [`CampaignSimulator::split_milestones`] heuristic was
    /// kept; `reason` records why the pilot could not place a level.
    FixedFallback {
        /// Why the pilot fell back.
        reason: String,
    },
}

/// A milestone schedule plus the record of how it was placed.
#[derive(Debug, Clone, PartialEq)]
pub struct PilotedMilestones {
    /// The level schedule, ending in [`CampaignMilestone::GoalReached`].
    pub milestones: Vec<CampaignMilestone>,
    /// Pilot placement record (adaptive threshold or fallback reason).
    pub placement: MilestonePlacement,
}

/// [`BatchTask`] adapter over full campaign replications — the unit of
/// work `Executor::run_ws_lockstep` schedules. Full-width lane groups
/// run [`CampaignSimulator::run_batch_into`]; remainder lanes degrade
/// to the scalar [`CampaignSimulator::run_into`] on lane 0. Both
/// produce bit-identical [`CampaignStats`] per seed, so serial ≡
/// parallel ≡ scalar holds by construction.
#[derive(Debug, Clone, Copy)]
pub struct CampaignBatchTask<'s, 'n> {
    sim: &'s CampaignSimulator<'n>,
}

impl<'s, 'n> CampaignBatchTask<'s, 'n> {
    /// Wraps `sim` for lockstep execution.
    #[must_use]
    pub fn new(sim: &'s CampaignSimulator<'n>) -> Self {
        CampaignBatchTask { sim }
    }
}

impl BatchTask for CampaignBatchTask<'_, '_> {
    type Workspace = BatchedCampaignWorkspace;
    type Output = CampaignStats;

    fn workspace(&self) -> BatchedCampaignWorkspace {
        self.sim.batched_workspace()
    }

    fn run_scalar(&self, ws: &mut BatchedCampaignWorkspace, rep: Replication) -> CampaignStats {
        self.sim.run_into(ws.scalar_lane(), rep.seed)
    }

    fn run_batch(
        &self,
        ws: &mut BatchedCampaignWorkspace,
        reps: &[Replication],
        out: &mut Vec<CampaignStats>,
    ) {
        // The seed buffer lives in the workspace so steady-state
        // batches stay allocation-free; take it out to sidestep the
        // aliasing with `run_batch_into`'s workspace borrow.
        let mut seeds = std::mem::take(&mut ws.seed_buf);
        seeds.clear();
        seeds.extend(reps.iter().map(|r| r.seed));
        out.extend_from_slice(self.sim.run_batch_into(ws, &seeds));
        ws.seed_buf = seeds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversify_scada::components::ComponentProfile;
    use diversify_scada::fleet::{FleetConfig, FleetSystem};
    use diversify_scada::scope::{ScopeConfig, ScopeSystem};

    fn scope_network() -> ScadaNetwork {
        ScopeSystem::build(&ScopeConfig::default())
            .network()
            .clone()
    }

    #[test]
    fn run_many_zero_replications_is_empty() {
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        assert!(sim.run_many(0, 1).is_empty());
    }

    #[test]
    fn budgeted_plan_matches_plain_plan_and_truncates_cleanly() {
        use diversify_des::{Budget, RunPolicy};
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let plan = ReplicationPlan::new(4, 5, 77).with_namespace(CAMPAIGN_RUN_NAMESPACE);
        // Unbudgeted policy: identical to run_plan.
        let plain = sim.run_plan(&plan, Executor::serial());
        let run = sim.run_plan_budgeted(&plan, Executor::serial(), &RunPolicy::new());
        assert!(!run.is_degraded());
        assert_eq!(run.output.as_ref(), Some(&plain));
        // A 12-replication budget affords 2 rounds of 5; the result is
        // the exact prefix.
        let policy = RunPolicy::new().with_budget(Budget::unlimited().with_max_replications(12));
        let truncated = sim.run_plan_budgeted(&plan, Executor::serial(), &policy);
        assert_eq!(truncated.completed, 10);
        assert_eq!(truncated.output.as_ref().map(Vec::len), Some(10));
        assert_eq!(truncated.output.as_ref().unwrap()[..], plain[..10]);
    }

    #[test]
    fn stuxnet_succeeds_against_monoculture() {
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let outcomes = sim.run_many(50, 7);
        let successes = outcomes.iter().filter(|o| o.succeeded()).count();
        assert!(
            successes > 40,
            "monoculture should fall almost always: {successes}/50"
        );
        let deepest_reached = outcomes
            .iter()
            .filter(|o| o.deepest_stage == AttackStage::DeviceImpairment)
            .count();
        assert!(deepest_reached > 40);
    }

    #[test]
    fn hardened_system_resists_much_longer() {
        let mut net = scope_network();
        let ids: Vec<_> = net.node_ids().collect();
        for id in ids {
            *net.profile_mut(id) = ComponentProfile::hardened();
        }
        let weak_net = scope_network();
        let threat = ThreatModel::stuxnet_like();
        // A bounded observation window: with unbounded persistence even a
        // hardened plant eventually falls, so success *rate* is compared
        // at a fixed horizon (the paper's point is raising effort/time).
        let cfg = CampaignConfig {
            max_ticks: 300,
            detection_stops_attack: false,
        };
        let hard = CampaignSimulator::new(&net, threat.clone(), cfg).run_many(40, 3);
        let weak = CampaignSimulator::new(&weak_net, threat, cfg).run_many(40, 3);
        let rate =
            |os: &[CampaignOutcome]| os.iter().filter(|o| o.succeeded()).count() as f64 / 40.0;
        assert!(
            rate(&hard) < rate(&weak),
            "hardening must reduce success rate ({} vs {})",
            rate(&hard),
            rate(&weak)
        );
        // And when it succeeds it takes longer on average.
        let mean_tta = |os: &[CampaignOutcome]| {
            let hits: Vec<f64> = os
                .iter()
                .filter_map(|o| o.time_to_attack.map(f64::from))
                .collect();
            if hits.is_empty() {
                f64::INFINITY
            } else {
                hits.iter().sum::<f64>() / hits.len() as f64
            }
        };
        assert!(mean_tta(&hard) > mean_tta(&weak));
    }

    #[test]
    fn run_into_matches_run_bit_for_bit() {
        let net = scope_network();
        for threat in [
            ThreatModel::stuxnet_like(),
            ThreatModel::duqu_like(),
            ThreatModel::flame_like(),
        ] {
            let sim = CampaignSimulator::new(&net, threat, CampaignConfig::default());
            let mut ws = sim.workspace();
            for seed in 0..20u64 {
                let outcome = sim.run(seed);
                let stats = sim.run_into(&mut ws, seed);
                assert_eq!(outcome.stats(), stats, "seed {seed}");
                assert_eq!(outcome.compromised_ratio, ws.ratio_curve(), "seed {seed}");
                assert_eq!(outcome.final_states, ws.states(), "seed {seed}");
                // The event-driven frontier engine must reproduce the
                // dense visit-time-eligibility sweep exactly, RNG draw
                // for RNG draw.
                assert_eq!(outcome, sim.run_reference(seed), "seed {seed}");
            }
        }
    }

    #[test]
    fn frontier_matches_reference_on_generated_fleet() {
        // The fleet-shaped counterpart of the SCoPE differential above
        // (the broader randomized sweep lives in
        // `tests/frontier_differential.rs`).
        let fleet = FleetSystem::build(&FleetConfig::sized(400, 77));
        let cfg = CampaignConfig {
            max_ticks: 24 * 60,
            detection_stops_attack: false,
        };
        for threat in [ThreatModel::stuxnet_like(), ThreatModel::flame_like()] {
            let sim = CampaignSimulator::new(fleet.network(), threat, cfg);
            let mut ws = sim.workspace();
            for seed in 0..5u64 {
                let reference = sim.run_reference(seed);
                let stats = sim.run_into(&mut ws, seed);
                assert_eq!(reference.stats(), stats, "seed {seed}");
                assert_eq!(reference.final_states, ws.states(), "seed {seed}");
            }
        }
    }

    #[test]
    fn workspace_reuse_does_not_leak_state_between_replications() {
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let mut ws = sim.workspace();
        let first = sim.run_into(&mut ws, 42);
        // A noisy intermediate replication mutates every buffer…
        let _ = sim.run_into(&mut ws, 1234);
        // …and the original seed still reproduces exactly.
        assert_eq!(sim.run_into(&mut ws, 42), first);
    }

    #[test]
    fn workspace_survives_network_size_change() {
        // The sparse reset must fall back to full initialization when a
        // workspace warmed on one network meets a differently sized one.
        let small = scope_network();
        let big = FleetSystem::build(&FleetConfig::sized(300, 5));
        let threat = ThreatModel::stuxnet_like();
        let sim_small = CampaignSimulator::new(&small, threat.clone(), CampaignConfig::default());
        let sim_big = CampaignSimulator::new(big.network(), threat, CampaignConfig::default());
        let mut ws = sim_small.workspace();
        let _ = sim_small.run_into(&mut ws, 1);
        let on_big = sim_big.run_into(&mut ws, 2);
        assert_eq!(on_big, sim_big.run(2).stats());
        let back_small = sim_small.run_into(&mut ws, 1);
        assert_eq!(back_small, sim_small.run(1).stats());
    }

    #[test]
    fn materialized_ratio_curve_is_exact_sized() {
        // The lazy-curve satellite: short runs must not carry a
        // max_ticks-sized reservation out of the simulator.
        let net = scope_network();
        let sim = CampaignSimulator::new(
            &net,
            ThreatModel::stuxnet_like(),
            CampaignConfig {
                max_ticks: 24 * 365,
                detection_stops_attack: true,
            },
        );
        let o = sim.run(21);
        assert_eq!(o.compromised_ratio.capacity(), o.compromised_ratio.len());
        assert!(o.compromised_ratio.len() < 24 * 365);
    }

    #[test]
    fn outcomes_are_reproducible() {
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        assert_eq!(sim.run(42), sim.run(42));
    }

    #[test]
    fn compromised_ratio_is_monotone_without_remediation() {
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let o = sim.run(5);
        for w in o.compromised_ratio.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "ratio decreased: {w:?}");
        }
        assert!(o.final_compromised_ratio() <= 1.0);
    }

    #[test]
    fn espionage_threats_never_reprogram_plcs() {
        let net = scope_network();
        for threat in [ThreatModel::duqu_like(), ThreatModel::flame_like()] {
            let sim = CampaignSimulator::new(&net, threat, CampaignConfig::default());
            for o in sim.run_many(10, 11) {
                assert!(
                    !o.final_states.contains(&NodeCompromise::Reprogrammed),
                    "espionage threat reprogrammed a PLC"
                );
                assert!(o.deepest_stage < AttackStage::DeviceImpairment);
            }
        }
    }

    #[test]
    fn duqu_exfiltration_goal_reachable() {
        let net = scope_network();
        let sim = CampaignSimulator::new(&net, ThreatModel::duqu_like(), CampaignConfig::default());
        let outcomes = sim.run_many(30, 13);
        let successes = outcomes.iter().filter(|o| o.succeeded()).count();
        assert!(
            successes > 15,
            "duqu should usually exfiltrate: {successes}/30"
        );
    }

    #[test]
    fn detection_stops_attack_truncates_curve() {
        let net = scope_network();
        let mut threat = ThreatModel::stuxnet_like();
        threat.stealth = 0.0; // noisy attacker
        let cfg = CampaignConfig {
            detection_stops_attack: true,
            max_ticks: 1000,
        };
        let sim = CampaignSimulator::new(&net, threat, cfg);
        let o = sim.run(21);
        if let Some(ttd) = o.time_to_detection {
            assert!(o.compromised_ratio.len() as u32 <= ttd + 2);
        }
    }

    #[test]
    fn run_stage_milestones_progress_and_compose() {
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let mut ws = sim.workspace();
        let rooted = sim.run_stage(&mut ws, None, 11, CampaignMilestone::Rooted);
        assert!(rooted.reached, "monoculture roots within a year");
        let spread = sim.run_stage(
            &mut ws,
            Some(&rooted.checkpoint),
            12,
            CampaignMilestone::SpreadAtLeast(3),
        );
        assert!(spread.reached);
        assert!(spread.checkpoint.tick() >= rooted.checkpoint.tick());
        let goal = sim.run_stage(
            &mut ws,
            Some(&spread.checkpoint),
            13,
            CampaignMilestone::GoalReached,
        );
        assert!(goal.reached);
        assert!(goal.checkpoint.succeeded());
        let stats = goal.checkpoint.stats();
        assert!(stats.time_to_attack.is_some());
        assert_eq!(stats.deepest_stage, AttackStage::DeviceImpairment);
    }

    #[test]
    fn run_stage_resume_is_workspace_history_independent() {
        // A resumed segment must be a pure function of (checkpoint,
        // seed): replaying it in a workspace polluted by unrelated
        // replications yields the identical result.
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let mut fresh = sim.workspace();
        let cp = sim
            .run_stage(&mut fresh, None, 7, CampaignMilestone::SpreadAtLeast(2))
            .checkpoint;
        let clean_run = sim.run_stage(
            &mut sim.workspace(),
            Some(&cp),
            99,
            CampaignMilestone::GoalReached,
        );
        let mut dirty = sim.workspace();
        let _ = sim.run_into(&mut dirty, 5555);
        let _ = sim.run_stage(&mut dirty, None, 8, CampaignMilestone::PayloadDelivered);
        let dirty_run = sim.run_stage(&mut dirty, Some(&cp), 99, CampaignMilestone::GoalReached);
        assert_eq!(clean_run, dirty_run);
    }

    #[test]
    fn run_stage_already_crossed_milestone_is_a_no_op() {
        // Milestones are monotone, so resuming toward an
        // already-crossed one consumes no ticks and echoes the
        // checkpoint back (in canonical form).
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let mut ws = sim.workspace();
        let spread = sim.run_stage(&mut ws, None, 3, CampaignMilestone::SpreadAtLeast(2));
        assert!(spread.reached);
        let again = sim.run_stage(
            &mut ws,
            Some(&spread.checkpoint),
            12345,
            CampaignMilestone::Rooted,
        );
        assert!(again.reached, "spread ≥ 2 implies a rooted node exists");
        assert_eq!(again.ticks, 0);
        assert_eq!(again.checkpoint, spread.checkpoint);
    }

    #[test]
    fn strict_firewalls_block_hops() {
        let mut net = scope_network();
        let ids: Vec<_> = net.node_ids().collect();
        for id in ids {
            net.profile_mut(id).firewall = diversify_scada::components::FirewallPolicy::Strict;
        }
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let o = sim.run(9);
        assert!(o.firewall_blocks > 0, "strict firewalls should log blocks");
    }

    #[test]
    fn batched_matches_scalar_bit_for_bit_per_lane() {
        let net = scope_network();
        for threat in [
            ThreatModel::stuxnet_like(),
            ThreatModel::duqu_like(),
            ThreatModel::flame_like(),
        ] {
            let sim = CampaignSimulator::new(&net, threat, CampaignConfig::default());
            let mut scalar_ws = sim.workspace();
            let mut batch_ws = sim.batched_workspace();
            let seeds: Vec<u64> = (0..7u64).map(|s| s.wrapping_mul(0x9E37) ^ 0xC0DE).collect();
            let batched = sim.run_batch_into(&mut batch_ws, &seeds).to_vec();
            for (lane, &seed) in seeds.iter().enumerate() {
                let scalar = sim.run_into(&mut scalar_ws, seed);
                assert_eq!(batched[lane], scalar, "lane {lane}");
                assert_eq!(
                    batch_ws.lane(lane).ratio_curve(),
                    scalar_ws.ratio_curve(),
                    "lane {lane} curve"
                );
                assert_eq!(
                    batch_ws.lane(lane).states(),
                    scalar_ws.states(),
                    "lane {lane} states"
                );
            }
        }
    }

    #[test]
    fn batched_workspace_reuse_and_width_changes_do_not_leak() {
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let mut ws = sim.batched_workspace();
        let first = sim.run_batch_into(&mut ws, &[42, 43, 44]).to_vec();
        // Noisy intermediate batches at other widths…
        let _ = sim.run_batch_into(&mut ws, &[9, 8, 7, 6, 5]);
        let _ = sim.run_batch_into(&mut ws, &[1]);
        // …and the original batch still reproduces exactly.
        assert_eq!(sim.run_batch_into(&mut ws, &[42, 43, 44]), &first[..]);
        // The empty batch is a no-op with empty stats.
        assert!(sim.run_batch_into(&mut ws, &[]).is_empty());
    }

    #[test]
    fn stage_batch_matches_scalar_stages_per_lane() {
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let mut ws = sim.workspace();
        // Parents of mixed depths: a fresh lane, a rooted lane, and a
        // spread lane — plus already-crossed-milestone lanes.
        let rooted = sim
            .run_stage(&mut ws, None, 11, CampaignMilestone::Rooted)
            .checkpoint;
        let spread = sim
            .run_stage(&mut ws, None, 5, CampaignMilestone::SpreadAtLeast(3))
            .checkpoint;
        let froms = [None, Some(&rooted), Some(&spread), None];
        let seeds = [101u64, 102, 103, 104];
        let milestone = CampaignMilestone::SpreadAtLeast(2);
        let mut batched = Vec::new();
        let mut batch_ws = sim.batched_workspace();
        sim.run_stage_batch(&mut batch_ws, &froms, &seeds, milestone, &mut batched);
        assert_eq!(batched.len(), 4);
        for (lane, (&seed, from)) in seeds.iter().zip(froms.iter()).enumerate() {
            let scalar = sim.run_stage(&mut ws, *from, seed, milestone);
            assert_eq!(batched[lane], scalar, "lane {lane}");
        }
    }

    #[test]
    fn piloted_milestones_keep_goal_implied_shape() {
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let piloted = sim.split_milestones_piloted(64, 0x9107);
        // On the SCoPE monoculture the goal is common, so the pilot
        // must place adaptively.
        let MilestonePlacement::Piloted {
            spread_threshold,
            rooted_survivors,
            goal_fraction,
        } = &piloted.placement
        else {
            panic!("expected adaptive placement, got {:?}", piloted.placement);
        };
        assert!(*rooted_survivors > 0);
        assert!(*goal_fraction > 0.0 && *goal_fraction <= 1.0);
        assert_eq!(
            piloted.milestones,
            vec![
                CampaignMilestone::Rooted,
                CampaignMilestone::SpreadAtLeast(*spread_threshold),
                CampaignMilestone::PayloadDelivered,
                CampaignMilestone::GoalReached,
            ]
        );
        assert!(*spread_threshold >= 2);
        // The schedule stays goal-implied: the threshold never exceeds
        // the PLC count the goal itself forces non-clean.
        let total = net
            .topology()
            .with_role(diversify_scada::network::NodeRole::Plc)
            .len();
        assert!(*spread_threshold <= (0.5 * total as f64).ceil() as usize);
        // Reproducible: same pilot population and seed, same placement.
        assert_eq!(piloted, sim.split_milestones_piloted(64, 0x9107));
    }

    #[test]
    fn piloted_milestones_fall_back_with_reasons() {
        let net = scope_network();
        // Espionage goal: no spread level is goal-implied.
        let duqu =
            CampaignSimulator::new(&net, ThreatModel::duqu_like(), CampaignConfig::default());
        let piloted = duqu.split_milestones_piloted(16, 1);
        assert_eq!(piloted.milestones, duqu.split_milestones());
        assert!(matches!(
            &piloted.placement,
            MilestonePlacement::FixedFallback { reason } if reason.contains("espionage")
        ));
        // Zero pilot population.
        let stux =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let piloted = stux.split_milestones_piloted(0, 1);
        assert_eq!(piloted.milestones, stux.split_milestones());
        assert!(matches!(
            &piloted.placement,
            MilestonePlacement::FixedFallback { reason } if reason.contains("zero")
        ));
        // A horizon of zero ticks: the pilot cannot root anything, so
        // it must fall back (zero survivors) instead of erroring.
        let frozen = CampaignSimulator::new(
            &net,
            ThreatModel::stuxnet_like(),
            CampaignConfig {
                max_ticks: 0,
                detection_stops_attack: false,
            },
        );
        let piloted = frozen.split_milestones_piloted(16, 1);
        assert_eq!(piloted.milestones, frozen.split_milestones());
        assert!(matches!(
            &piloted.placement,
            MilestonePlacement::FixedFallback { reason } if reason.contains("zero Rooted")
        ));
    }
}
