//! Campaign models and the tick-based campaign simulator.
//!
//! A campaign walks the plant network stage by stage: initial infection at
//! an entry node, activation, privilege escalation, lateral propagation,
//! and (for sabotage threats) PLC reprogramming → device impairment. Each
//! tick is one hour of attacker wall-clock time; every stochastic step
//! draws from the [`ExploitCatalog`] probabilities, which in turn depend
//! on the per-node [`ComponentProfile`](diversify_scada::components::ComponentProfile)s — that is precisely where
//! diversity enters.

use crate::exploit::ExploitCatalog;
use crate::stage::{AttackStage, NodeCompromise};
use diversify_des::{Executor, ReplicationPlan, RngStream, StreamId};
use diversify_scada::network::{NodeId, NodeRole, ScadaNetwork};
use serde::{Deserialize, Serialize};

/// What the attacker is trying to achieve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackGoal {
    /// Reprogram at least this fraction of the plant's PLCs (sabotage,
    /// Stuxnet-like).
    ImpairDevices {
        /// Required fraction of PLCs in `(0, 1]`.
        fraction: f64,
    },
    /// Hold a foothold on the historian/engineering data for the given
    /// number of ticks (espionage, Duqu/Flame-like).
    Exfiltrate {
        /// Consecutive ticks of data access required.
        ticks: u32,
    },
}

/// A named threat model: an exploit catalog plus behavioural parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreatModel {
    /// Display name.
    pub name: String,
    /// The exploit catalog.
    pub catalog: ExploitCatalog,
    /// Stealth in `[0,1]`: scales detection probability down.
    pub stealth: f64,
    /// Lateral-movement attempts per compromised node per tick.
    pub attempts_per_tick: u32,
    /// The campaign goal.
    pub goal: AttackGoal,
}

impl ThreatModel {
    /// The Stuxnet-like sabotage threat (the paper's reference attack).
    #[must_use]
    pub fn stuxnet_like() -> Self {
        ThreatModel {
            name: "stuxnet-like".to_string(),
            catalog: ExploitCatalog::stuxnet_like(),
            stealth: 0.85,
            attempts_per_tick: 2,
            goal: AttackGoal::ImpairDevices { fraction: 0.5 },
        }
    }

    /// The Duqu-like espionage threat (paper future work).
    #[must_use]
    pub fn duqu_like() -> Self {
        ThreatModel {
            name: "duqu-like".to_string(),
            catalog: ExploitCatalog::duqu_like(),
            stealth: 0.92,
            attempts_per_tick: 1,
            goal: AttackGoal::Exfiltrate { ticks: 24 },
        }
    }

    /// The Flame-like espionage threat (paper future work).
    #[must_use]
    pub fn flame_like() -> Self {
        ThreatModel {
            name: "flame-like".to_string(),
            catalog: ExploitCatalog::flame_like(),
            stealth: 0.70,
            attempts_per_tick: 3,
            goal: AttackGoal::Exfiltrate { ticks: 12 },
        }
    }
}

/// Campaign simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Maximum ticks (hours) to simulate.
    pub max_ticks: u32,
    /// Whether detection ends the campaign (defenders remediate) or is
    /// merely recorded (pure observation, the paper's TTSF definition).
    pub detection_stops_attack: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            max_ticks: 24 * 365, // one year of attacker persistence
            detection_stops_attack: false,
        }
    }
}

/// Result of one simulated campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignOutcome {
    /// Tick at which the goal was achieved (Time-To-Attack), if it was.
    pub time_to_attack: Option<u32>,
    /// Tick at which the defenders first perceived the attack
    /// (Time-To-Security-Failure), if they did.
    pub time_to_detection: Option<u32>,
    /// Compromised ratio sampled at every tick (index = tick).
    pub compromised_ratio: Vec<f64>,
    /// Final per-node compromise states.
    pub final_states: Vec<NodeCompromise>,
    /// Deepest stage reached.
    pub deepest_stage: AttackStage,
    /// Number of lateral-movement attempts blocked by firewalls.
    pub firewall_blocks: u32,
    /// Number of PLC payload deliveries that failed on dialect mismatch
    /// or firmware resilience.
    pub payload_failures: u32,
}

impl CampaignOutcome {
    /// Whether the campaign achieved its goal.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.time_to_attack.is_some()
    }

    /// The compromised ratio at the end of the run.
    #[must_use]
    pub fn final_compromised_ratio(&self) -> f64 {
        self.compromised_ratio.last().copied().unwrap_or(0.0)
    }

    /// The scalar per-replication summary of this outcome — what the
    /// streaming indicator collectors consume.
    #[must_use]
    pub fn stats(&self) -> CampaignStats {
        CampaignStats::from(self)
    }
}

/// The scalar results of one campaign replication: everything the
/// indicator aggregation consumes, with no heap-owning field, so the
/// replication hot loop can report it without allocating. The full
/// trajectory (per-tick ratio curve, final per-node states) stays in
/// the [`CampaignWorkspace`] it was simulated in; callers that need it
/// materialize a [`CampaignOutcome`] via [`CampaignSimulator::run`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignStats {
    /// Tick at which the goal was achieved (Time-To-Attack), if it was.
    pub time_to_attack: Option<u32>,
    /// Tick at which the defenders first perceived the attack
    /// (Time-To-Security-Failure), if they did.
    pub time_to_detection: Option<u32>,
    /// Compromised ratio at the end of the run.
    pub final_compromised_ratio: f64,
    /// Deepest stage reached.
    pub deepest_stage: AttackStage,
    /// Number of lateral-movement attempts blocked by firewalls.
    pub firewall_blocks: u32,
    /// Number of failed PLC payload deliveries.
    pub payload_failures: u32,
}

impl CampaignStats {
    /// Whether the campaign achieved its goal.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.time_to_attack.is_some()
    }
}

impl From<&CampaignOutcome> for CampaignStats {
    fn from(o: &CampaignOutcome) -> Self {
        CampaignStats {
            time_to_attack: o.time_to_attack,
            time_to_detection: o.time_to_detection,
            final_compromised_ratio: o.final_compromised_ratio(),
            deepest_stage: o.deepest_stage,
            firewall_blocks: o.firewall_blocks,
            payload_failures: o.payload_failures,
        }
    }
}

impl From<&CampaignStats> for CampaignStats {
    fn from(s: &CampaignStats) -> Self {
        *s
    }
}

/// Reusable per-replication state of the campaign simulator: the
/// node-state array, the per-tick ratio curve, and the rooted-node
/// list. Created once per worker (via [`CampaignSimulator::workspace`])
/// and handed to [`CampaignSimulator::run_into`] for every replication;
/// buffers are cleared, never reallocated, so the steady state runs
/// allocation-free (`tests/zero_alloc.rs` asserts this).
///
/// The ratio curve is sized lazily — it grows to the longest run this
/// workspace has seen, not to `max_ticks + 1` up front — so quick-scale
/// sweeps with short detection-terminated runs stop over-reserving.
#[derive(Debug, Clone, Default)]
pub struct CampaignWorkspace {
    /// Per-node compromise states of the most recent replication.
    states: Vec<NodeCompromise>,
    /// Compromised ratio sampled at every tick of the most recent
    /// replication (index = tick).
    ratio_curve: Vec<f64>,
    /// Nodes with state ≥ Rooted, maintained incrementally in ascending
    /// node-id order (the same order the per-tick rescan used to
    /// produce, so RNG draw schedules are unchanged).
    rooted: Vec<NodeId>,
    /// Nodes with state exactly Infected, also in ascending id order —
    /// the escalation stage iterates this instead of scanning every
    /// node.
    infected: Vec<NodeId>,
}

impl CampaignWorkspace {
    /// An empty workspace; buffers size themselves on first use.
    #[must_use]
    pub fn new() -> Self {
        CampaignWorkspace::default()
    }

    /// Prepares the workspace for a fresh replication over `n` nodes.
    fn reset(&mut self, n: usize) {
        self.states.clear();
        self.states.resize(n, NodeCompromise::Clean);
        self.ratio_curve.clear();
        self.rooted.clear();
        self.infected.clear();
    }

    /// Inserts `id` into the rooted list, keeping ascending id order.
    /// Each node enters at most once per replication, so the memmove
    /// cost is O(nodes) *per replication*, replacing the old O(nodes)
    /// rescan *per tick*.
    fn insert_rooted(&mut self, id: NodeId) {
        if let Err(at) = self.rooted.binary_search(&id) {
            self.rooted.insert(at, id);
        }
    }

    /// Inserts `id` into the infected list, keeping ascending id order.
    fn insert_infected(&mut self, id: NodeId) {
        if let Err(at) = self.infected.binary_search(&id) {
            self.infected.insert(at, id);
        }
    }

    /// Removes `id` from the infected list (a node leaving the Infected
    /// state for Rooted or Reprogrammed).
    fn remove_infected(&mut self, id: NodeId) {
        if let Ok(at) = self.infected.binary_search(&id) {
            self.infected.remove(at);
        }
    }

    /// Per-node compromise states of the most recent replication.
    #[must_use]
    pub fn states(&self) -> &[NodeCompromise] {
        &self.states
    }

    /// The per-tick compromised-ratio curve of the most recent
    /// replication (index = tick).
    #[must_use]
    pub fn ratio_curve(&self) -> &[f64] {
        &self.ratio_curve
    }
}

/// Tick-based Monte-Carlo campaign simulator over a plant network.
///
/// Network-derived constants (entry points, PLC ids, detection profiles)
/// are resolved once at construction so each replication starts without
/// re-scanning the topology; within a replication the tick loop reuses
/// one scratch buffer and maintains compromise counters incrementally,
/// skipping whole stages once they can no longer change any state.
#[derive(Debug)]
pub struct CampaignSimulator<'n> {
    network: &'n ScadaNetwork,
    threat: ThreatModel,
    config: CampaignConfig,
    /// Entry-point node ids (initial-infection candidates).
    entries: Vec<NodeId>,
    /// PLC node ids (payload targets).
    plc_ids: Vec<NodeId>,
    /// Historian/engineering node ids (exfiltration targets).
    data_ids: Vec<NodeId>,
    /// Representative profiles for detection: the historian node and a
    /// field sensor owner (first PLC).
    historian_profile: diversify_scada::components::ComponentProfile,
    sensor_profile: diversify_scada::components::ComponentProfile,
}

impl<'n> CampaignSimulator<'n> {
    /// Creates a simulator for `threat` against `network`.
    #[must_use]
    pub fn new(network: &'n ScadaNetwork, threat: ThreatModel, config: CampaignConfig) -> Self {
        let entries: Vec<NodeId> = network
            .node_ids()
            .filter(|&id| network.node(id).role.is_entry_point())
            .collect();
        let plc_ids = network.nodes_with_role(NodeRole::Plc);
        let data_ids: Vec<NodeId> = network
            .node_ids()
            .filter(|&id| {
                matches!(
                    network.node(id).role,
                    NodeRole::Historian | NodeRole::EngineeringWorkstation
                )
            })
            .collect();
        let historian_profile = network
            .nodes_with_role(NodeRole::Historian)
            .first()
            .map(|&id| network.node(id).profile)
            .unwrap_or_default();
        let sensor_profile = plc_ids
            .first()
            .map(|&id| network.node(id).profile)
            .unwrap_or_default();
        CampaignSimulator {
            network,
            threat,
            config,
            entries,
            plc_ids,
            data_ids,
            historian_profile,
            sensor_profile,
        }
    }

    /// The threat model under simulation.
    #[must_use]
    pub fn threat(&self) -> &ThreatModel {
        &self.threat
    }

    /// A workspace sized for this simulator's network — create one per
    /// worker and pass it to [`CampaignSimulator::run_into`] for every
    /// replication (the idiom behind `Executor::run_ws`).
    #[must_use]
    pub fn workspace(&self) -> CampaignWorkspace {
        let n = self.network.node_count();
        CampaignWorkspace {
            states: vec![NodeCompromise::Clean; n],
            ratio_curve: Vec::new(),
            rooted: Vec::with_capacity(n),
            infected: Vec::with_capacity(n),
        }
    }

    /// Runs one campaign replication with the given seed — the
    /// compatibility entry point that materializes a full
    /// [`CampaignOutcome`] (ratio curve + final states). It allocates a
    /// fresh workspace per call; hot loops should hold a
    /// [`CampaignWorkspace`] and call [`CampaignSimulator::run_into`]
    /// instead. Trajectories are bit-identical between the two.
    #[must_use]
    pub fn run(&self, seed: u64) -> CampaignOutcome {
        let mut ws = self.workspace();
        let stats = self.run_into(&mut ws, seed);
        let CampaignWorkspace {
            states,
            mut ratio_curve,
            ..
        } = ws;
        // The curve is sized lazily, so trim the growth slack instead of
        // handing callers a buffer reserved for `max_ticks + 1` samples.
        ratio_curve.shrink_to_fit();
        CampaignOutcome {
            time_to_attack: stats.time_to_attack,
            time_to_detection: stats.time_to_detection,
            compromised_ratio: ratio_curve,
            final_states: states,
            deepest_stage: stats.deepest_stage,
            firewall_blocks: stats.firewall_blocks,
            payload_failures: stats.payload_failures,
        }
    }

    /// Runs one campaign replication inside `ws`, reusing its buffers —
    /// the allocation-free hot path. Returns the scalar
    /// [`CampaignStats`]; the full ratio curve and final node states
    /// remain readable from the workspace until the next replication.
    ///
    /// The trajectory is a pure function of `seed`: RNG draws happen in
    /// exactly the order of the original per-replication-allocation
    /// implementation (the rooted set is maintained incrementally but
    /// iterated in ascending node-id order, matching the old rescan), so
    /// [`CampaignSimulator::run`] and `run_into` are bit-identical.
    #[must_use]
    pub fn run_into(&self, ws: &mut CampaignWorkspace, seed: u64) -> CampaignStats {
        let net = self.network;
        let cat = &self.threat.catalog;
        let mut rng = RngStream::new(seed, StreamId(0xA77));
        let n = net.node_count();
        ws.reset(n);
        let mut deepest = AttackStage::Initial;
        let mut time_to_attack = None;
        let mut time_to_detection = None;
        let mut firewall_blocks = 0u32;
        let mut payload_failures = 0u32;
        let mut exfil_ticks = 0u32;

        let total_plcs = self.plc_ids.len().max(1);
        // Incrementally maintained summaries of the node states (the
        // clean counter plus the workspace's sorted infected/rooted
        // lists), so per-tick bookkeeping touches only the nodes whose
        // state can matter and whole stages can be skipped once they
        // provably cannot change anything further.
        let mut clean = n; // nodes still Clean
        let mut reprogrammed = 0usize; // PLCs Reprogrammed

        ws.ratio_curve.push(0.0);
        'ticks: for tick in 1..=self.config.max_ticks {
            // Stage: Initial → Activated (seed an entry node). The attacker
            // seeds an entry-point node (USB stick in the office, per the
            // Stuxnet dossier); entry succeeds against the entry node's OS.
            if clean == n {
                if let Some(&entry) = self.entries.first() {
                    let p = cat.infection_probability(&net.node(entry).profile);
                    if rng.bernoulli(p) {
                        ws.states[entry.index()] = NodeCompromise::Infected;
                        ws.insert_infected(entry);
                        clean -= 1;
                        deepest = deepest.max(AttackStage::Activated);
                    }
                }
            }

            // Stage: privilege escalation on infected nodes. The sorted
            // infected list is visited in ascending id order — the order
            // the reference implementation's full scan draws in — and a
            // node that escalates is removed in place, so each node
            // infected at stage entry is visited exactly once.
            {
                let mut i = 0;
                while i < ws.infected.len() {
                    let id = ws.infected[i];
                    let p = cat.escalation_probability(&net.node(id).profile);
                    if rng.bernoulli(p) {
                        ws.states[id.index()] = NodeCompromise::Rooted;
                        ws.infected.remove(i);
                        ws.insert_rooted(id);
                        deepest = deepest.max(AttackStage::RootAccess);
                    } else {
                        i += 1;
                    }
                }
            }

            // Stage: lateral propagation from rooted nodes. With no clean
            // node left the stage can only burn RNG draws on already-
            // compromised destinations, so it is skipped outright.
            if clean > 0 {
                for si in 0..ws.rooted.len() {
                    let src = ws.rooted[si];
                    for _ in 0..self.threat.attempts_per_tick {
                        let neighbors = net.neighbors(src);
                        if neighbors.is_empty() {
                            continue;
                        }
                        let dst = neighbors[rng.index(neighbors.len())];
                        if ws.states[dst.index()] != NodeCompromise::Clean {
                            continue;
                        }
                        let dst_profile = &net.node(dst).profile;
                        // Zone crossings face the destination firewall.
                        if net.crosses_zone(src, dst) {
                            let pass = cat.firewall_pass_probability(dst_profile);
                            if !rng.bernoulli(pass) {
                                firewall_blocks += 1;
                                continue;
                            }
                        }
                        // Propagation additionally requires speaking the
                        // destination's wire dialect inside the field zone.
                        let src_dialect = net.node(src).profile.dialect;
                        let dialect_ok = src_dialect == dst_profile.dialect
                            || !matches!(
                                net.node(dst).role,
                                NodeRole::Plc | NodeRole::FieldGateway
                            );
                        if !dialect_ok && !rng.bernoulli(0.05) {
                            payload_failures += 1;
                            continue;
                        }
                        if rng.bernoulli(cat.infection_probability(dst_profile)) {
                            ws.states[dst.index()] = NodeCompromise::Infected;
                            ws.insert_infected(dst);
                            clean -= 1;
                            deepest = deepest.max(AttackStage::NetworkPropagation);
                        }
                    }
                }
            }

            // Stage: PLC payload delivery (sabotage threats only).
            if reprogrammed < self.plc_ids.len() {
                for &plc in &self.plc_ids {
                    if ws.states[plc.index()] == NodeCompromise::Reprogrammed {
                        continue;
                    }
                    // Needs a rooted neighbor (gateway or engineering path).
                    let has_rooted_neighbor = net
                        .neighbors(plc)
                        .iter()
                        .any(|&nb| ws.states[nb.index()] >= NodeCompromise::Rooted)
                        || ws.states[plc.index()] >= NodeCompromise::Rooted;
                    if !has_rooted_neighbor {
                        continue;
                    }
                    let p = cat.plc_payload_probability(&net.node(plc).profile);
                    if p == 0.0 {
                        continue;
                    }
                    if rng.bernoulli(p) {
                        if ws.states[plc.index()] == NodeCompromise::Clean {
                            clean -= 1;
                        } else if ws.states[plc.index()] == NodeCompromise::Infected {
                            ws.remove_infected(plc);
                        }
                        ws.states[plc.index()] = NodeCompromise::Reprogrammed;
                        ws.insert_rooted(plc);
                        reprogrammed += 1;
                        deepest = deepest.max(AttackStage::DeviceImpairment);
                    } else {
                        payload_failures += 1;
                    }
                }
            }

            // Goal evaluation.
            match self.threat.goal {
                AttackGoal::ImpairDevices { fraction } => {
                    if time_to_attack.is_none()
                        && (reprogrammed as f64 / total_plcs as f64) >= fraction
                    {
                        time_to_attack = Some(tick);
                    }
                }
                AttackGoal::Exfiltrate { ticks } => {
                    let data_access = self
                        .data_ids
                        .iter()
                        .any(|&id| ws.states[id.index()] >= NodeCompromise::Rooted);
                    if data_access {
                        exfil_ticks += 1;
                        if time_to_attack.is_none() && exfil_ticks >= ticks {
                            time_to_attack = Some(tick);
                        }
                    }
                }
            }

            // Detection (Time-To-Security-Failure). Only active intrusions
            // can be noticed.
            if time_to_detection.is_none() && clean < n {
                let impairment_active = reprogrammed > 0;
                let p = cat.detection_probability(
                    &self.historian_profile,
                    &self.sensor_profile,
                    impairment_active,
                    self.threat.stealth,
                );
                if rng.bernoulli(p) {
                    time_to_detection = Some(tick);
                    if self.config.detection_stops_attack {
                        ws.ratio_curve.push((n - clean) as f64 / n as f64);
                        break 'ticks;
                    }
                }
            }

            ws.ratio_curve.push((n - clean) as f64 / n as f64);

            // Early exit when nothing further can change.
            if time_to_attack.is_some() && time_to_detection.is_some() {
                break;
            }
        }

        CampaignStats {
            time_to_attack,
            time_to_detection,
            final_compromised_ratio: ws.ratio_curve.last().copied().unwrap_or(0.0),
            deepest_stage: deepest,
            firewall_blocks,
            payload_failures,
        }
    }

    /// The original per-replication-allocation implementation, kept
    /// verbatim as the reference baseline: every call allocates fresh
    /// state/curve/rooted buffers (the ratio curve eagerly reserved for
    /// `max_ticks + 1` samples) and rescans all nodes for the rooted set
    /// every tick. Differential tests prove [`CampaignSimulator::run`] /
    /// [`CampaignSimulator::run_into`] reproduce it bit for bit; the
    /// `campaign_replication_throughput` bench measures the workspace
    /// path against it.
    #[must_use]
    pub fn run_reference(&self, seed: u64) -> CampaignOutcome {
        let net = self.network;
        let cat = &self.threat.catalog;
        let mut rng = RngStream::new(seed, StreamId(0xA77));
        let n = net.node_count();
        let mut states = vec![NodeCompromise::Clean; n];
        let mut deepest = AttackStage::Initial;
        let mut ratio_curve = Vec::with_capacity(self.config.max_ticks as usize + 1);
        let mut time_to_attack = None;
        let mut time_to_detection = None;
        let mut firewall_blocks = 0u32;
        let mut payload_failures = 0u32;
        let mut exfil_ticks = 0u32;

        let total_plcs = self.plc_ids.len().max(1);
        let mut clean = n;
        let mut infected = 0usize;
        let mut reprogrammed = 0usize;
        let mut rooted_buf: Vec<NodeId> = Vec::with_capacity(n);

        ratio_curve.push(0.0);
        'ticks: for tick in 1..=self.config.max_ticks {
            if clean == n {
                if let Some(&entry) = self.entries.first() {
                    let p = cat.infection_probability(&net.node(entry).profile);
                    if rng.bernoulli(p) {
                        states[entry.index()] = NodeCompromise::Infected;
                        clean -= 1;
                        infected += 1;
                        deepest = deepest.max(AttackStage::Activated);
                    }
                }
            }

            if infected > 0 {
                for id in net.node_ids() {
                    if states[id.index()] == NodeCompromise::Infected {
                        let p = cat.escalation_probability(&net.node(id).profile);
                        if rng.bernoulli(p) {
                            states[id.index()] = NodeCompromise::Rooted;
                            infected -= 1;
                            deepest = deepest.max(AttackStage::RootAccess);
                        }
                    }
                }
            }

            if clean > 0 {
                // The per-tick full rescan the workspace path replaces
                // with incremental maintenance.
                rooted_buf.clear();
                rooted_buf.extend(
                    net.node_ids()
                        .filter(|&id| states[id.index()] >= NodeCompromise::Rooted),
                );
                for &src in &rooted_buf {
                    for _ in 0..self.threat.attempts_per_tick {
                        let neighbors = net.neighbors(src);
                        if neighbors.is_empty() {
                            continue;
                        }
                        let dst = neighbors[rng.index(neighbors.len())];
                        if states[dst.index()] != NodeCompromise::Clean {
                            continue;
                        }
                        let dst_profile = &net.node(dst).profile;
                        if net.crosses_zone(src, dst) {
                            let pass = cat.firewall_pass_probability(dst_profile);
                            if !rng.bernoulli(pass) {
                                firewall_blocks += 1;
                                continue;
                            }
                        }
                        let src_dialect = net.node(src).profile.dialect;
                        let dialect_ok = src_dialect == dst_profile.dialect
                            || !matches!(
                                net.node(dst).role,
                                NodeRole::Plc | NodeRole::FieldGateway
                            );
                        if !dialect_ok && !rng.bernoulli(0.05) {
                            payload_failures += 1;
                            continue;
                        }
                        if rng.bernoulli(cat.infection_probability(dst_profile)) {
                            states[dst.index()] = NodeCompromise::Infected;
                            clean -= 1;
                            infected += 1;
                            deepest = deepest.max(AttackStage::NetworkPropagation);
                        }
                    }
                }
            }

            if reprogrammed < self.plc_ids.len() {
                for &plc in &self.plc_ids {
                    if states[plc.index()] == NodeCompromise::Reprogrammed {
                        continue;
                    }
                    let has_rooted_neighbor = net
                        .neighbors(plc)
                        .iter()
                        .any(|&nb| states[nb.index()] >= NodeCompromise::Rooted)
                        || states[plc.index()] >= NodeCompromise::Rooted;
                    if !has_rooted_neighbor {
                        continue;
                    }
                    let p = cat.plc_payload_probability(&net.node(plc).profile);
                    if p == 0.0 {
                        continue;
                    }
                    if rng.bernoulli(p) {
                        if states[plc.index()] == NodeCompromise::Clean {
                            clean -= 1;
                        } else if states[plc.index()] == NodeCompromise::Infected {
                            infected -= 1;
                        }
                        states[plc.index()] = NodeCompromise::Reprogrammed;
                        reprogrammed += 1;
                        deepest = deepest.max(AttackStage::DeviceImpairment);
                    } else {
                        payload_failures += 1;
                    }
                }
            }

            match self.threat.goal {
                AttackGoal::ImpairDevices { fraction } => {
                    if time_to_attack.is_none()
                        && (reprogrammed as f64 / total_plcs as f64) >= fraction
                    {
                        time_to_attack = Some(tick);
                    }
                }
                AttackGoal::Exfiltrate { ticks } => {
                    let data_access = self
                        .data_ids
                        .iter()
                        .any(|&id| states[id.index()] >= NodeCompromise::Rooted);
                    if data_access {
                        exfil_ticks += 1;
                        if time_to_attack.is_none() && exfil_ticks >= ticks {
                            time_to_attack = Some(tick);
                        }
                    }
                }
            }

            if time_to_detection.is_none() && clean < n {
                let impairment_active = reprogrammed > 0;
                let p = cat.detection_probability(
                    &self.historian_profile,
                    &self.sensor_profile,
                    impairment_active,
                    self.threat.stealth,
                );
                if rng.bernoulli(p) {
                    time_to_detection = Some(tick);
                    if self.config.detection_stops_attack {
                        ratio_curve.push((n - clean) as f64 / n as f64);
                        break 'ticks;
                    }
                }
            }

            ratio_curve.push((n - clean) as f64 / n as f64);

            if time_to_attack.is_some() && time_to_detection.is_some() {
                break;
            }
        }

        CampaignOutcome {
            time_to_attack,
            time_to_detection,
            compromised_ratio: ratio_curve,
            final_states: states,
            deepest_stage: deepest,
            firewall_blocks,
            payload_failures,
        }
    }

    /// Runs `replications` campaigns under distinct seeds derived from
    /// `master_seed` on the default (parallel) [`Executor`] and returns
    /// every outcome in replication order. Zero replications yield an
    /// empty vector.
    #[must_use]
    pub fn run_many(&self, replications: u32, master_seed: u64) -> Vec<CampaignOutcome> {
        if replications == 0 {
            return Vec::new();
        }
        self.run_plan(
            &ReplicationPlan::flat(replications, master_seed)
                .with_namespace(CAMPAIGN_RUN_NAMESPACE),
            Executor::default(),
        )
    }

    /// Runs every replication of an explicit plan — the entry point for
    /// callers that manage seed schedules and scheduling themselves.
    /// Routes through the executor's collector fold (with the
    /// materializing `VecCollector`), so the execution path is the one
    /// every streaming aggregation uses; callers that only need
    /// summaries should fold with a streaming collector via
    /// [`Executor::collect`] instead of materializing outcomes here.
    #[must_use]
    pub fn run_plan(&self, plan: &ReplicationPlan, executor: Executor) -> Vec<CampaignOutcome> {
        executor.run(plan, |rep| self.run(rep.seed))
    }
}

/// Stream namespace [`CampaignSimulator::run_many`] has always derived
/// its seeds under. The pre-Executor loop used additive ids
/// (`0xCA_0000 + i`); XOR derivation matches it exactly for every index
/// below 2^17. Public so callers that fold outcomes with their own
/// collectors can reproduce the historical `run_many` seed schedule on
/// an explicit plan.
pub const CAMPAIGN_RUN_NAMESPACE: u64 = 0xCA_0000;

#[cfg(test)]
mod tests {
    use super::*;
    use diversify_scada::components::ComponentProfile;
    use diversify_scada::scope::{ScopeConfig, ScopeSystem};

    fn scope_network() -> ScadaNetwork {
        ScopeSystem::build(&ScopeConfig::default())
            .network()
            .clone()
    }

    #[test]
    fn run_many_zero_replications_is_empty() {
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        assert!(sim.run_many(0, 1).is_empty());
    }

    #[test]
    fn stuxnet_succeeds_against_monoculture() {
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let outcomes = sim.run_many(50, 7);
        let successes = outcomes.iter().filter(|o| o.succeeded()).count();
        assert!(
            successes > 40,
            "monoculture should fall almost always: {successes}/50"
        );
        let deepest_reached = outcomes
            .iter()
            .filter(|o| o.deepest_stage == AttackStage::DeviceImpairment)
            .count();
        assert!(deepest_reached > 40);
    }

    #[test]
    fn hardened_system_resists_much_longer() {
        let mut net = scope_network();
        let ids: Vec<_> = net.node_ids().collect();
        for id in ids {
            net.node_mut(id).profile = ComponentProfile::hardened();
        }
        let weak_net = scope_network();
        let threat = ThreatModel::stuxnet_like();
        // A bounded observation window: with unbounded persistence even a
        // hardened plant eventually falls, so success *rate* is compared
        // at a fixed horizon (the paper's point is raising effort/time).
        let cfg = CampaignConfig {
            max_ticks: 300,
            detection_stops_attack: false,
        };
        let hard = CampaignSimulator::new(&net, threat.clone(), cfg).run_many(40, 3);
        let weak = CampaignSimulator::new(&weak_net, threat, cfg).run_many(40, 3);
        let rate =
            |os: &[CampaignOutcome]| os.iter().filter(|o| o.succeeded()).count() as f64 / 40.0;
        assert!(
            rate(&hard) < rate(&weak),
            "hardening must reduce success rate ({} vs {})",
            rate(&hard),
            rate(&weak)
        );
        // And when it succeeds it takes longer on average.
        let mean_tta = |os: &[CampaignOutcome]| {
            let hits: Vec<f64> = os
                .iter()
                .filter_map(|o| o.time_to_attack.map(f64::from))
                .collect();
            if hits.is_empty() {
                f64::INFINITY
            } else {
                hits.iter().sum::<f64>() / hits.len() as f64
            }
        };
        assert!(mean_tta(&hard) > mean_tta(&weak));
    }

    #[test]
    fn run_into_matches_run_bit_for_bit() {
        let net = scope_network();
        for threat in [
            ThreatModel::stuxnet_like(),
            ThreatModel::duqu_like(),
            ThreatModel::flame_like(),
        ] {
            let sim = CampaignSimulator::new(&net, threat, CampaignConfig::default());
            let mut ws = sim.workspace();
            for seed in 0..20u64 {
                let outcome = sim.run(seed);
                let stats = sim.run_into(&mut ws, seed);
                assert_eq!(outcome.stats(), stats, "seed {seed}");
                assert_eq!(outcome.compromised_ratio, ws.ratio_curve(), "seed {seed}");
                assert_eq!(outcome.final_states, ws.states(), "seed {seed}");
                // The incremental rooted set must reproduce the original
                // rescan-per-tick implementation exactly, RNG draw for
                // RNG draw.
                assert_eq!(outcome, sim.run_reference(seed), "seed {seed}");
            }
        }
    }

    #[test]
    fn workspace_reuse_does_not_leak_state_between_replications() {
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let mut ws = sim.workspace();
        let first = sim.run_into(&mut ws, 42);
        // A noisy intermediate replication mutates every buffer…
        let _ = sim.run_into(&mut ws, 1234);
        // …and the original seed still reproduces exactly.
        assert_eq!(sim.run_into(&mut ws, 42), first);
    }

    #[test]
    fn materialized_ratio_curve_is_exact_sized() {
        // The lazy-curve satellite: short runs must not carry a
        // max_ticks-sized reservation out of the simulator.
        let net = scope_network();
        let sim = CampaignSimulator::new(
            &net,
            ThreatModel::stuxnet_like(),
            CampaignConfig {
                max_ticks: 24 * 365,
                detection_stops_attack: true,
            },
        );
        let o = sim.run(21);
        assert_eq!(o.compromised_ratio.capacity(), o.compromised_ratio.len());
        assert!(o.compromised_ratio.len() < 24 * 365);
    }

    #[test]
    fn outcomes_are_reproducible() {
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        assert_eq!(sim.run(42), sim.run(42));
    }

    #[test]
    fn compromised_ratio_is_monotone_without_remediation() {
        let net = scope_network();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let o = sim.run(5);
        for w in o.compromised_ratio.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "ratio decreased: {w:?}");
        }
        assert!(o.final_compromised_ratio() <= 1.0);
    }

    #[test]
    fn espionage_threats_never_reprogram_plcs() {
        let net = scope_network();
        for threat in [ThreatModel::duqu_like(), ThreatModel::flame_like()] {
            let sim = CampaignSimulator::new(&net, threat, CampaignConfig::default());
            for o in sim.run_many(10, 11) {
                assert!(
                    !o.final_states.contains(&NodeCompromise::Reprogrammed),
                    "espionage threat reprogrammed a PLC"
                );
                assert!(o.deepest_stage < AttackStage::DeviceImpairment);
            }
        }
    }

    #[test]
    fn duqu_exfiltration_goal_reachable() {
        let net = scope_network();
        let sim = CampaignSimulator::new(&net, ThreatModel::duqu_like(), CampaignConfig::default());
        let outcomes = sim.run_many(30, 13);
        let successes = outcomes.iter().filter(|o| o.succeeded()).count();
        assert!(
            successes > 15,
            "duqu should usually exfiltrate: {successes}/30"
        );
    }

    #[test]
    fn detection_stops_attack_truncates_curve() {
        let net = scope_network();
        let mut threat = ThreatModel::stuxnet_like();
        threat.stealth = 0.0; // noisy attacker
        let cfg = CampaignConfig {
            detection_stops_attack: true,
            max_ticks: 1000,
        };
        let sim = CampaignSimulator::new(&net, threat, cfg);
        let o = sim.run(21);
        if let Some(ttd) = o.time_to_detection {
            assert!(o.compromised_ratio.len() as u32 <= ttd + 2);
        }
    }

    #[test]
    fn strict_firewalls_block_hops() {
        let mut net = scope_network();
        let ids: Vec<_> = net.node_ids().collect();
        for id in ids {
            net.node_mut(id).profile.firewall = diversify_scada::components::FirewallPolicy::Strict;
        }
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        let o = sim.run(9);
        assert!(o.firewall_blocks > 0, "strict firewalls should log blocks");
    }
}
