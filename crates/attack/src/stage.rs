//! The five-stage attack progression model from the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The stages an attack undergoes before success — exactly the example
/// list from the paper's *Attack Modeling* step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttackStage {
    /// Malware present but dormant (e.g. infected USB stick inserted).
    Initial,
    /// Payload activated on the entry node.
    Activated,
    /// Privilege escalation achieved on a node.
    RootAccess,
    /// Lateral movement across the plant network.
    NetworkPropagation,
    /// Malicious control signals damaging physical devices.
    DeviceImpairment,
}

impl AttackStage {
    /// All stages in progression order.
    pub const ALL: [AttackStage; 5] = [
        AttackStage::Initial,
        AttackStage::Activated,
        AttackStage::RootAccess,
        AttackStage::NetworkPropagation,
        AttackStage::DeviceImpairment,
    ];

    /// The next stage, if any.
    #[must_use]
    pub fn next(self) -> Option<AttackStage> {
        match self {
            AttackStage::Initial => Some(AttackStage::Activated),
            AttackStage::Activated => Some(AttackStage::RootAccess),
            AttackStage::RootAccess => Some(AttackStage::NetworkPropagation),
            AttackStage::NetworkPropagation => Some(AttackStage::DeviceImpairment),
            AttackStage::DeviceImpairment => None,
        }
    }

    /// Zero-based index in progression order.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            AttackStage::Initial => 0,
            AttackStage::Activated => 1,
            AttackStage::RootAccess => 2,
            AttackStage::NetworkPropagation => 3,
            AttackStage::DeviceImpairment => 4,
        }
    }
}

impl fmt::Display for AttackStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttackStage::Initial => "initial",
            AttackStage::Activated => "activated",
            AttackStage::RootAccess => "root-access",
            AttackStage::NetworkPropagation => "network-propagation",
            AttackStage::DeviceImpairment => "device-impairment",
        };
        f.write_str(s)
    }
}

/// Per-node compromise depth tracked by the campaign simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize, PartialOrd, Ord)]
pub enum NodeCompromise {
    /// Untouched.
    #[default]
    Clean,
    /// User-level malware foothold.
    Infected,
    /// Administrative control.
    Rooted,
    /// For PLCs: logic replaced by the attacker's payload.
    Reprogrammed,
}

impl NodeCompromise {
    /// Whether the node counts as compromised for the compromised-ratio
    /// indicator.
    #[must_use]
    pub fn is_compromised(self) -> bool {
        self != NodeCompromise::Clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_order_is_total_and_linear() {
        let mut stage = AttackStage::Initial;
        let mut seen = vec![stage];
        while let Some(next) = stage.next() {
            assert!(next > stage, "progression must ascend");
            seen.push(next);
            stage = next;
        }
        assert_eq!(seen, AttackStage::ALL);
        assert_eq!(AttackStage::DeviceImpairment.next(), None);
    }

    #[test]
    fn indices_match_all_order() {
        for (i, s) in AttackStage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn display_names_unique() {
        let names: std::collections::HashSet<String> =
            AttackStage::ALL.iter().map(|s| s.to_string()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn compromise_flag() {
        assert!(!NodeCompromise::Clean.is_compromised());
        assert!(NodeCompromise::Infected.is_compromised());
        assert!(NodeCompromise::Rooted.is_compromised());
        assert!(NodeCompromise::Reprogrammed.is_compromised());
    }

    #[test]
    fn compromise_depth_ordering() {
        assert!(NodeCompromise::Clean < NodeCompromise::Infected);
        assert!(NodeCompromise::Infected < NodeCompromise::Rooted);
        assert!(NodeCompromise::Rooted < NodeCompromise::Reprogrammed);
    }
}
