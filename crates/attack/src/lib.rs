//! # diversify-attack
//!
//! Threat-model substrate of the *Diversify!* (DSN 2013) reproduction.
//!
//! The paper formalizes attack progression *"in terms of the stages the
//! attack undergoes before success (e.g., initial, activated, root access,
//! network propagation, device impairment)"* and notes that Bayesian
//! networks, Petri nets (SANs) or attack trees can all express the model.
//! This crate provides **all three formalisms** plus a concrete campaign
//! simulator that walks a [`diversify_scada::ScadaNetwork`]:
//!
//! * [`stage`] — the five-stage progression model;
//! * [`exploit`] — per-variant success probabilities (the paper's
//!   "availability of tools and/or exploits" knob);
//! * [`campaign`] — Stuxnet-, Duqu- and Flame-like campaign models and the
//!   tick-based [`campaign::CampaignSimulator`] that produces the paper's
//!   three security indicators; its event-driven tick loop costs
//!   O(infection frontier), not O(nodes);
//! * [`frontier`] — the hierarchical-bitset active set behind the
//!   frontier engine;
//! * [`chain`] — the Sec. I motivating example (identical vs diverse
//!   machines, P_SA ≈ P_M vs P_SA ≈ P_M1 × P_M2);
//! * [`tree`] — attack trees with AND/OR semantics, success probability
//!   and minimal cut sets;
//! * [`bayes`] — a small discrete Bayesian network with variable
//!   elimination;
//! * [`to_san`] — compiles a stage progression into a
//!   [`diversify_san::SanModel`] so the SAN solver can cross-check the
//!   simulator (experiment R8);
//! * [`split`] — staged-task adapters ([`split::CampaignSplitTask`],
//!   [`split::StageChainTask`]) that plug the campaign simulator and
//!   the exponential stage chain into the multilevel-splitting
//!   rare-event estimator (`diversify_des::splitting`).

#![warn(missing_docs)]
// The unwrap/expect ban (clippy.toml `disallowed-methods`) is the
// fault-tolerance discipline of `diversify-des`/`diversify-core`; this
// crate predates it and is exercised through those hardened seams.
#![allow(clippy::disallowed_methods)]

pub mod bayes;
pub mod campaign;
pub mod chain;
pub mod exploit;
pub mod frontier;
pub mod split;
pub mod stage;
pub mod to_san;
pub mod tree;

pub use campaign::{
    AttackGoal, BatchedCampaignWorkspace, CampaignBatchTask, CampaignCheckpoint, CampaignConfig,
    CampaignMilestone, CampaignOutcome, CampaignSimulator, MilestonePlacement, PilotedMilestones,
    StageRun, ThreatModel,
};
pub use chain::{chain_success_probability, simulate_chain, MachineChain};
pub use exploit::ExploitCatalog;
pub use split::{CampaignSplitTask, ChainState, StageChainTask};
pub use stage::{AttackStage, NodeCompromise};
pub use tree::{AttackTree, TreeNode};
