//! Diversity indices and the deployment-cost model.

use diversify_scada::network::ScadaNetwork;
use std::collections::HashMap;

/// Shannon diversity index of the OS-variant distribution across nodes
/// (natural log). Zero for a monoculture; `ln(v)` for `v` equally common
/// variants.
#[must_use]
pub fn shannon_index(network: &ScadaNetwork) -> f64 {
    let counts = os_counts(network);
    let total: usize = counts.values().sum();
    if total == 0 {
        return 0.0;
    }
    -counts
        .values()
        .map(|&c| {
            let p = c as f64 / total as f64;
            p * p.ln()
        })
        .sum::<f64>()
}

/// Simpson diversity index `1 − Σ pᵢ²` of the OS-variant distribution.
/// Zero for a monoculture, approaching `1 − 1/v` for `v` balanced
/// variants.
#[must_use]
pub fn simpson_index(network: &ScadaNetwork) -> f64 {
    let counts = os_counts(network);
    let total: usize = counts.values().sum();
    if total == 0 {
        return 0.0;
    }
    1.0 - counts
        .values()
        .map(|&c| {
            let p = c as f64 / total as f64;
            p * p
        })
        .sum::<f64>()
}

fn os_counts(network: &ScadaNetwork) -> HashMap<String, usize> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for id in network.node_ids() {
        *counts
            .entry(format!("{:?}", network.profile(id).os))
            .or_insert(0) += 1;
    }
    counts
}

/// Deployment cost of a configuration, in arbitrary units: every node
/// pays a base cost of 1; each *additional distinct variant* of each
/// component class adds `variant_premium` (training, spares, tooling);
/// each hardened node (resilience > 0.6) adds `hardening_premium`.
///
/// This is the cost side of the paper's "balanced approach between secure
/// system design and diversification costs".
#[must_use]
pub fn deployment_cost(
    network: &ScadaNetwork,
    variant_premium: f64,
    hardening_premium: f64,
) -> f64 {
    let n = network.node_count() as f64;
    let mut distinct: [std::collections::HashSet<String>; 6] = Default::default();
    let mut hardened = 0usize;
    for id in network.node_ids() {
        let p = network.profile(id);
        distinct[0].insert(format!("{:?}", p.os));
        distinct[1].insert(format!("{:?}", p.plc_firmware));
        distinct[2].insert(format!("{:?}", p.dialect));
        distinct[3].insert(format!("{:?}", p.firewall));
        distinct[4].insert(format!("{:?}", p.sensor));
        distinct[5].insert(format!("{:?}", p.historian));
        if p.resilience() > 0.6 {
            hardened += 1;
        }
    }
    let extra_variants: usize = distinct.iter().map(|s| s.len().saturating_sub(1)).sum();
    n + extra_variants as f64 * variant_premium + hardened as f64 * hardening_premium
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiversityConfig;
    use diversify_scada::components::ComponentClass;
    use diversify_scada::scope::{ScopeConfig, ScopeSystem};

    fn network() -> ScadaNetwork {
        ScopeSystem::build(&ScopeConfig::default())
            .network()
            .clone()
    }

    #[test]
    fn monoculture_has_zero_diversity() {
        let mut net = network();
        DiversityConfig::monoculture().apply(&mut net);
        assert_eq!(shannon_index(&net), 0.0);
        assert_eq!(simpson_index(&net), 0.0);
    }

    #[test]
    fn rotation_raises_both_indices() {
        let mut net = network();
        DiversityConfig::rotate_only(ComponentClass::OperatingSystem).apply(&mut net);
        assert!(shannon_index(&net) > 1.0); // 4 balanced variants → ln 4 ≈ 1.386
        assert!(simpson_index(&net) > 0.7); // → 0.75
    }

    #[test]
    fn shannon_upper_bound_for_balanced_variants() {
        let mut net = network();
        DiversityConfig::rotate_only(ComponentClass::OperatingSystem).apply(&mut net);
        assert!(shannon_index(&net) <= 4f64.ln() + 1e-9);
    }

    #[test]
    fn cost_grows_with_diversity_and_hardening() {
        let mut mono = network();
        DiversityConfig::monoculture().apply(&mut mono);
        let mut diverse = network();
        DiversityConfig::full_rotation().apply(&mut diverse);
        let base_cost = deployment_cost(&mono, 2.0, 5.0);
        let div_cost = deployment_cost(&diverse, 2.0, 5.0);
        assert!(div_cost > base_cost, "{div_cost} !> {base_cost}");
        // Monoculture cost is exactly one per node.
        assert_eq!(base_cost, mono.node_count() as f64);
    }

    #[test]
    fn hardening_premium_counts_hardened_nodes() {
        let mut net = network();
        DiversityConfig::monoculture().apply(&mut net);
        let before = deployment_cost(&net, 0.0, 10.0);
        let ids: Vec<_> = net.node_ids().take(2).collect();
        for id in ids {
            *net.profile_mut(id) = diversify_scada::components::ComponentProfile::hardened();
        }
        let after = deployment_cost(&net, 0.0, 10.0);
        assert!((after - before - 20.0).abs() < 30.0); // 2 hardened + variant effects at 0 premium
        assert!(after > before);
    }
}
