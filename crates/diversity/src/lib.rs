//! # diversify-diversity
//!
//! Diversity configurations, placement strategies and diversity metrics —
//! the knob the *Diversify!* (DSN 2013) paper turns.
//!
//! * [`config`] — a [`config::DiversityConfig`] assigns component variants
//!   to the nodes of a [`diversify_scada::ScadaNetwork`];
//! * [`placement`] — strategies for placing `k` highly attack-resilient
//!   nodes: none (monoculture), random, or **strategic** (topology
//!   choke points first — the paper's "small, strategically distributed,
//!   number of highly attack-resilient components");
//! * [`metrics`] — Shannon/Simpson diversity indices and a deployment
//!   cost model, supporting the paper's "balanced approach between secure
//!   system design and diversification costs".

#![warn(missing_docs)]
// The unwrap/expect ban (clippy.toml `disallowed-methods`) is the
// fault-tolerance discipline of `diversify-des`/`diversify-core`; this
// crate predates it and is exercised through those hardened seams.
#![allow(clippy::disallowed_methods)]

pub mod config;
pub mod metrics;
pub mod placement;

pub use config::DiversityConfig;
pub use metrics::{deployment_cost, shannon_index, simpson_index};
pub use placement::{apply_placement, PlacementStrategy};
