//! Placement strategies for attack-resilient components.
//!
//! The paper's preliminary result: *"a small, strategically distributed,
//! number of highly attack-resilient components can significantly lower
//! the chance of bringing a successful attack to the system."* Experiment
//! R5 compares these strategies; this module implements them.

use diversify_scada::components::ComponentProfile;
use diversify_scada::network::{NodeId, ScadaNetwork};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How to choose which `k` nodes receive the hardened profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// No hardened nodes (monoculture baseline).
    None,
    /// `k` nodes chosen uniformly at random (seeded).
    Random {
        /// Number of hardened nodes.
        k: usize,
        /// Selection seed.
        seed: u64,
    },
    /// `k` nodes chosen by attack-goal criticality: the PLCs themselves
    /// first (the device-impairment targets), then the field gateways
    /// guarding them, then the remaining nodes by descending topology
    /// centrality. This is the paper's "small, strategically distributed"
    /// placement: resilience goes where the attack must end up.
    Strategic {
        /// Number of hardened nodes.
        k: usize,
    },
}

impl PlacementStrategy {
    /// The number of hardened nodes this strategy deploys.
    #[must_use]
    pub fn k(&self) -> usize {
        match self {
            PlacementStrategy::None => 0,
            PlacementStrategy::Random { k, .. } | PlacementStrategy::Strategic { k } => *k,
        }
    }

    /// Selects the node ids to harden (does not modify the network).
    #[must_use]
    pub fn select(&self, network: &ScadaNetwork) -> Vec<NodeId> {
        match *self {
            PlacementStrategy::None => Vec::new(),
            PlacementStrategy::Random { k, seed } => {
                let mut ids: Vec<NodeId> = network.node_ids().collect();
                let mut rng = SmallRng::seed_from_u64(seed);
                ids.shuffle(&mut rng);
                ids.truncate(k.min(network.node_count()));
                ids
            }
            PlacementStrategy::Strategic { k } => {
                use diversify_scada::network::NodeRole;
                let mut order: Vec<NodeId> = Vec::with_capacity(network.node_count());
                order.extend(network.nodes_with_role(NodeRole::Plc));
                order.extend(network.nodes_with_role(NodeRole::FieldGateway));
                for (id, _) in network.centrality() {
                    if !order.contains(&id) {
                        order.push(id);
                    }
                }
                order.truncate(k.min(network.node_count()));
                order
            }
        }
    }
}

/// Applies a placement: the selected nodes receive `hardened`, everyone
/// else keeps their current profile. Returns the hardened node ids.
pub fn apply_placement(
    network: &mut ScadaNetwork,
    strategy: PlacementStrategy,
    hardened: ComponentProfile,
) -> Vec<NodeId> {
    let chosen = strategy.select(network);
    for &id in &chosen {
        *network.profile_mut(id) = hardened;
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversify_scada::network::NodeRole;
    use diversify_scada::scope::{ScopeConfig, ScopeSystem};

    fn network() -> ScadaNetwork {
        ScopeSystem::build(&ScopeConfig::default())
            .network()
            .clone()
    }

    #[test]
    fn none_places_nothing() {
        let mut net = network();
        let chosen = apply_placement(
            &mut net,
            PlacementStrategy::None,
            ComponentProfile::hardened(),
        );
        assert!(chosen.is_empty());
        assert_eq!(PlacementStrategy::None.k(), 0);
    }

    #[test]
    fn random_places_exactly_k_distinct() {
        let mut net = network();
        let chosen = apply_placement(
            &mut net,
            PlacementStrategy::Random { k: 5, seed: 1 },
            ComponentProfile::hardened(),
        );
        assert_eq!(chosen.len(), 5);
        let set: std::collections::HashSet<_> = chosen.iter().collect();
        assert_eq!(set.len(), 5);
        for id in chosen {
            assert_eq!(*net.profile(id), ComponentProfile::hardened());
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        let net = network();
        let a = PlacementStrategy::Random { k: 4, seed: 9 }.select(&net);
        let b = PlacementStrategy::Random { k: 4, seed: 9 }.select(&net);
        assert_eq!(a, b);
        let c = PlacementStrategy::Random { k: 4, seed: 10 }.select(&net);
        assert_ne!(a, c);
    }

    #[test]
    fn strategic_picks_attack_targets_first() {
        let net = network();
        let chosen = PlacementStrategy::Strategic { k: 3 }.select(&net);
        assert_eq!(chosen.len(), 3);
        // Device-impairment targets come first: all picks are PLCs.
        let roles: Vec<NodeRole> = chosen.iter().map(|&id| net.role(id)).collect();
        assert!(
            roles.iter().all(|r| *r == NodeRole::Plc),
            "strategic picks should start with the PLCs, got {roles:?}"
        );
        // Past the PLCs, gateways follow (SCoPE default has 4 PLCs + 2
        // gateways).
        let six = PlacementStrategy::Strategic { k: 6 }.select(&net);
        let tail: Vec<NodeRole> = six[4..].iter().map(|&id| net.role(id)).collect();
        assert!(
            tail.iter().all(|r| *r == NodeRole::FieldGateway),
            "{tail:?}"
        );
    }

    #[test]
    fn k_larger_than_network_saturates() {
        let net = network();
        let n = net.node_count();
        let chosen = PlacementStrategy::Strategic { k: 999 }.select(&net);
        assert_eq!(chosen.len(), n);
        let random = PlacementStrategy::Random { k: 999, seed: 0 }.select(&net);
        assert_eq!(random.len(), n);
    }

    #[test]
    fn strategic_prefix_property() {
        // Strategic k=2 is a prefix of strategic k=4 (stable ranking).
        let net = network();
        let two = PlacementStrategy::Strategic { k: 2 }.select(&net);
        let four = PlacementStrategy::Strategic { k: 4 }.select(&net);
        assert_eq!(&four[..2], &two[..]);
    }
}
