//! Diversity configurations: which variant of each component class every
//! node runs.

use diversify_scada::components::{
    ComponentClass, ComponentProfile, FirewallPolicy, HistorianStack, OsVariant, PlcFirmware,
    SensorVendor,
};
use diversify_scada::network::ScadaNetwork;
use diversify_scada::protocol::dialect::ProtocolDialect;
use serde::{Deserialize, Serialize};

/// A system-wide diversity configuration: one profile applied uniformly,
/// plus per-class overrides that *rotate* variants across nodes to create
/// heterogeneity.
///
/// `rotate` classes assign variant `i % variants` to the `i`-th node of
/// the relevant kind, which is the cheapest way to guarantee that two
/// adjacent nodes rarely share a variant (the paper's "smartly combine
/// diverse technologies").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct DiversityConfig {
    /// The base profile applied to every node first.
    pub base: ComponentProfile,
    /// Component classes whose variants are rotated across nodes.
    pub rotate: Vec<ComponentClass>,
}

impl DiversityConfig {
    /// The homogeneous monoculture (the paper's baseline).
    #[must_use]
    pub fn monoculture() -> Self {
        DiversityConfig::default()
    }

    /// Rotate every component class — maximum heterogeneity.
    #[must_use]
    pub fn full_rotation() -> Self {
        DiversityConfig {
            base: ComponentProfile::default(),
            rotate: ComponentClass::ALL.to_vec(),
        }
    }

    /// Rotates a single class (used by the per-factor ablations).
    #[must_use]
    pub fn rotate_only(class: ComponentClass) -> Self {
        DiversityConfig {
            base: ComponentProfile::default(),
            rotate: vec![class],
        }
    }

    /// Applies the configuration to every node of `network`.
    pub fn apply(&self, network: &mut ScadaNetwork) {
        let ids: Vec<_> = network.node_ids().collect();
        for (i, id) in ids.into_iter().enumerate() {
            let mut profile = self.base;
            for class in &self.rotate {
                rotate_class(&mut profile, *class, i);
            }
            *network.profile_mut(id) = profile;
        }
    }
}

/// Sets the `class` variant of `profile` to the `i`-th variant (mod the
/// class's variant count).
fn rotate_class(profile: &mut ComponentProfile, class: ComponentClass, i: usize) {
    match class {
        ComponentClass::OperatingSystem => {
            profile.os = OsVariant::ALL[i % OsVariant::ALL.len()];
        }
        ComponentClass::PlcFirmware => {
            profile.plc_firmware = PlcFirmware::ALL[i % PlcFirmware::ALL.len()];
        }
        ComponentClass::ProtocolDialect => {
            profile.dialect = ProtocolDialect::ALL[i % ProtocolDialect::ALL.len()];
        }
        ComponentClass::Firewall => {
            profile.firewall = FirewallPolicy::ALL[i % FirewallPolicy::ALL.len()];
        }
        ComponentClass::Sensor => {
            profile.sensor = SensorVendor::ALL[i % SensorVendor::ALL.len()];
        }
        ComponentClass::Historian => {
            profile.historian = HistorianStack::ALL[i % HistorianStack::ALL.len()];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversify_scada::scope::{ScopeConfig, ScopeSystem};

    fn network() -> ScadaNetwork {
        ScopeSystem::build(&ScopeConfig::default())
            .network()
            .clone()
    }

    #[test]
    fn monoculture_leaves_everything_identical() {
        let mut net = network();
        DiversityConfig::monoculture().apply(&mut net);
        let profiles: Vec<_> = net.node_ids().map(|id| *net.profile(id)).collect();
        assert!(profiles.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(profiles[0], ComponentProfile::default());
    }

    #[test]
    fn full_rotation_diversifies_neighbors() {
        let mut net = network();
        DiversityConfig::full_rotation().apply(&mut net);
        // Adjacent node indices get different OS variants.
        let ids: Vec<_> = net.node_ids().collect();
        let a = *net.profile(ids[0]);
        let b = *net.profile(ids[1]);
        assert_ne!(a.os, b.os);
        assert_ne!(a.dialect, b.dialect);
    }

    #[test]
    fn rotate_only_touches_one_class() {
        let mut net = network();
        DiversityConfig::rotate_only(ComponentClass::ProtocolDialect).apply(&mut net);
        let ids: Vec<_> = net.node_ids().collect();
        let a = *net.profile(ids[0]);
        let b = *net.profile(ids[1]);
        assert_ne!(a.dialect, b.dialect);
        assert_eq!(a.os, b.os);
        assert_eq!(a.plc_firmware, b.plc_firmware);
    }

    #[test]
    fn rotation_cycles_through_all_variants() {
        let mut net = network();
        DiversityConfig::rotate_only(ComponentClass::OperatingSystem).apply(&mut net);
        let distinct: std::collections::HashSet<_> =
            net.node_ids().map(|id| net.profile(id).os).collect();
        assert_eq!(distinct.len(), OsVariant::ALL.len());
    }

    #[test]
    fn config_serializes() {
        let c = DiversityConfig::full_rotation();
        let json = serde_json::to_string(&c).unwrap();
        let back: DiversityConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
