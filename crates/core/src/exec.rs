//! The unified execution layer, specialized for campaign measurement.
//!
//! Re-exports the generic engine from [`diversify_des::exec`] — a
//! [`ReplicationPlan`] (seeds + batch structure) run by a serial or
//! parallel [`Executor`] and folded by a [`Collector`] — and adds the
//! campaign-level pieces: [`MeasurementsCollector`], which turns ordered
//! [`CampaignOutcome`]s into the batched [`Measurements`] the ANOVA
//! stage consumes, and the stream namespace campaign measurement has
//! always used for its seed schedule.
//!
//! This is the single seam every replication loop in the workspace goes
//! through: `core::runner::measure_configuration`, the
//! [`Pipeline`](crate::pipeline::Pipeline) design-point sweep,
//! `des::replication::ReplicationRunner`, the attack-crate Monte-Carlo
//! helpers, and the bench experiments all build a plan and hand it to an
//! executor. Future scaling work (sharding, multi-backend execution,
//! result caching) lands here once.

pub use diversify_des::exec::{
    Collector, ExecMode, Executor, MeanCollector, Replication, ReplicationPlan,
    DEFAULT_STREAM_NAMESPACE,
};

use crate::indicators::IndicatorSummary;
use crate::runner::Measurements;
use diversify_attack::campaign::CampaignOutcome;

/// The stream namespace campaign measurement derives its per-replication
/// seeds under. The original hand-rolled loop used *additive* stream ids
/// (`0x4E_0000 + i`); the plan's XOR derivation reproduces that schedule
/// exactly for every index below 2^17 (the lowest set bit of the
/// namespace) — far above any plan size this workspace runs. Plans with
/// ≥ 2^17 replications get a valid but different (still
/// collision-free) schedule.
pub const CAMPAIGN_STREAM_NAMESPACE: u64 = 0x4E_0000;

/// A campaign-measurement plan: `batches × batch_size` replications
/// under the campaign stream namespace.
///
/// # Panics
///
/// Panics if `batches` or `batch_size` is zero.
#[must_use]
pub fn campaign_plan(batches: u32, batch_size: u32, master_seed: u64) -> ReplicationPlan {
    ReplicationPlan::new(batches, batch_size, master_seed).with_namespace(CAMPAIGN_STREAM_NAMESPACE)
}

/// A [`Collector`] aggregating campaign outcomes into [`Measurements`]:
/// the overall [`IndicatorSummary`] plus per-batch success fractions and
/// compromised ratios (the ANOVA replicate units).
#[derive(Debug, Clone, Copy, Default)]
pub struct MeasurementsCollector;

impl Collector<CampaignOutcome> for MeasurementsCollector {
    type Output = Measurements;

    fn finish(&self, plan: &ReplicationPlan, samples: Vec<CampaignOutcome>) -> Measurements {
        let summary = IndicatorSummary::from_outcomes(&samples);
        let batch_size = f64::from(plan.batch_size());
        let mut batch_p_success = Vec::with_capacity(plan.batches() as usize);
        let mut batch_compromised = Vec::with_capacity(plan.batches() as usize);
        for range in plan.batch_ranges() {
            let slice = &samples[range];
            let successes = slice.iter().filter(|o| o.succeeded()).count() as f64;
            batch_p_success.push(successes / batch_size);
            batch_compromised.push(
                slice
                    .iter()
                    .map(CampaignOutcome::final_compromised_ratio)
                    .sum::<f64>()
                    / batch_size,
            );
        }
        Measurements {
            summary,
            batch_p_success,
            batch_compromised,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_plan_keeps_legacy_seed_schedule() {
        // The original loop seeded replication i with
        // derive_seed(master, StreamId(0x4E_0000 + i)).
        let plan = campaign_plan(4, 25, 0xD1CE);
        for i in 0..plan.total() {
            assert_eq!(
                plan.seed_for(i),
                diversify_des::derive_seed(
                    0xD1CE,
                    diversify_des::StreamId(0x4E_0000 + u64::from(i))
                )
            );
        }
    }
}
