//! The unified execution layer, specialized for campaign measurement.
//!
//! Re-exports the generic engine from [`diversify_des::exec`] — a
//! [`ReplicationPlan`] (seeds + batch structure) run by a serial or
//! parallel [`Executor`] and folded by a mergeable [`Collector`] — and
//! adds the campaign-level pieces: [`MeasurementsCollector`], which
//! streams ordered campaign outcomes into the batched
//! [`Measurements`] the ANOVA stage consumes, [`IndicatorsCollector`]
//! for plain (unbatched) indicator summaries, and the stream namespace
//! campaign measurement has always used for its seed schedule. Both
//! collectors fold anything the scalar [`CampaignStats`] can be read
//! from: a materialized
//! [`CampaignOutcome`](diversify_attack::campaign::CampaignOutcome) or
//! the stats themselves (the allocation-free workspace path behind
//! `Executor::run_ws`).
//!
//! This is the single seam every replication loop in the workspace goes
//! through: `core::runner::measure_configuration` (and its adaptive
//! variant), the [`Pipeline`](crate::pipeline::Pipeline) design-point
//! sweep, `des::replication::ReplicationRunner`, the attack-crate
//! Monte-Carlo helpers, and the bench experiments all build a plan and
//! hand it to an executor. Collectors are mergeable folds, so the same
//! code path serves fixed plans, parallel partial aggregation, and
//! [`Executor::run_adaptive`] precision-targeted runs.

pub use diversify_des::exec::{
    accept_all, AdaptiveRun, Budget, BudgetOutcome, CancelToken, Collector, ExecMode, Executor,
    FailureCause, MeanCollector, PartialRun, PlanError, Precision, Replication, ReplicationFailure,
    ReplicationPlan, Reseed, RetryPolicy, RunPolicy, StopRule, VecCollector,
    DEFAULT_STREAM_NAMESPACE,
};
pub use diversify_des::faults::{FaultKind, FaultPlan, InjectedPanic};

use crate::indicators::{IndicatorAccum, IndicatorSummary};
use crate::runner::Measurements;
use diversify_attack::campaign::CampaignStats;
use serde::{Deserialize, Serialize};

/// The stream namespace campaign measurement derives its per-replication
/// seeds under. The original hand-rolled loop used *additive* stream ids
/// (`0x4E_0000 + i`); the plan's XOR derivation reproduces that schedule
/// exactly for every index below 2^17 (the lowest set bit of the
/// namespace) — far above any plan size this workspace runs. Plans with
/// ≥ 2^17 replications get a valid but different (still
/// collision-free) schedule.
pub const CAMPAIGN_STREAM_NAMESPACE: u64 = 0x4E_0000;

/// A campaign-measurement plan: `batches × batch_size` replications
/// under the campaign stream namespace.
///
/// # Panics
///
/// Panics if `batches` or `batch_size` is zero.
#[must_use]
pub fn campaign_plan(batches: u32, batch_size: u32, master_seed: u64) -> ReplicationPlan {
    ReplicationPlan::new(batches, batch_size, master_seed).with_namespace(CAMPAIGN_STREAM_NAMESPACE)
}

/// Streaming accumulator behind [`MeasurementsCollector`]: the indicator
/// moments plus per-batch counters. O(batches) state — no campaign
/// outcome survives its own `accumulate` call.
#[derive(Debug, Clone, Default)]
pub struct MeasurementsAccum {
    /// Indicator moments over every folded replication.
    pub indicators: IndicatorAccum,
    /// Per-batch partial sums, in batch order.
    batches: Vec<BatchAccum>,
}

/// Running per-batch state: the counters batch means derive from.
/// `count` tracks how many replications actually folded into the batch —
/// equal to the plan's batch size on a fault-free run, smaller when the
/// budgeted paths skipped failed replications, so batch means stay
/// means over *completed* replications instead of silently deflating.
#[derive(Debug, Clone, Copy)]
struct BatchAccum {
    batch: u32,
    count: u32,
    successes: u32,
    compromised_sum: f64,
}

/// One batch's wire-portable counters — the exported form of the
/// accumulator's private per-batch state, so shard workers can ship
/// batch-granular partial measurements and a coordinator can rebuild a
/// [`MeasurementsAccum`] bit-exactly with
/// [`MeasurementsAccum::from_parts`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchRecord {
    /// Global batch index (a shard reports `plan.first_batch() + local`).
    pub batch: u32,
    /// Replications folded into the batch.
    pub count: u32,
    /// Successful campaigns in the batch.
    pub successes: u32,
    /// Sum of final compromised ratios over the batch.
    pub compromised_sum: f64,
}

impl MeasurementsAccum {
    /// The per-batch counters, in fold order.
    pub fn batch_records(&self) -> impl Iterator<Item = BatchRecord> + '_ {
        self.batches.iter().map(|b| BatchRecord {
            batch: b.batch,
            count: b.count,
            successes: b.successes,
            compromised_sum: b.compromised_sum,
        })
    }

    /// Rebuilds an accumulator from transported parts. The caller owns
    /// the fold contract: `records` must be in batch order and
    /// `indicators` must cover exactly the replications the records
    /// count — the serve coordinator guarantees both by folding shard
    /// results in global batch order.
    pub fn from_parts(
        indicators: IndicatorAccum,
        records: impl IntoIterator<Item = BatchRecord>,
    ) -> Self {
        MeasurementsAccum {
            indicators,
            batches: records
                .into_iter()
                .map(|r| BatchAccum {
                    batch: r.batch,
                    count: r.count,
                    successes: r.successes,
                    compromised_sum: r.compromised_sum,
                })
                .collect(),
        }
    }
}

/// A [`Collector`] streaming campaign outcomes into [`Measurements`]:
/// the overall [`IndicatorSummary`] plus per-batch success fractions and
/// compromised ratios (the ANOVA replicate units).
///
/// Generic over the replication output: it folds anything the scalar
/// [`CampaignStats`] can be read from — a full
/// [`CampaignOutcome`](diversify_attack::campaign::CampaignOutcome)
/// (the materializing reference path) or `CampaignStats` itself (the
/// allocation-free workspace path). Both fold to bit-identical
/// [`Measurements`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MeasurementsCollector;

impl<T> Collector<T> for MeasurementsCollector
where
    T: Send,
    for<'a> CampaignStats: From<&'a T>,
{
    type Accum = MeasurementsAccum;
    type Output = Measurements;

    fn empty(&self) -> MeasurementsAccum {
        MeasurementsAccum::default()
    }

    fn accumulate(
        &self,
        plan: &ReplicationPlan,
        acc: &mut MeasurementsAccum,
        rep: Replication,
        outcome: T,
    ) {
        let stats = CampaignStats::from(&outcome);
        let batch = plan.batch_of(rep.index);
        match acc.batches.last_mut() {
            Some(last) if last.batch == batch => {
                last.count += 1;
                last.successes += u32::from(stats.succeeded());
                last.compromised_sum += stats.final_compromised_ratio;
            }
            _ => acc.batches.push(BatchAccum {
                batch,
                count: 1,
                successes: u32::from(stats.succeeded()),
                compromised_sum: stats.final_compromised_ratio,
            }),
        }
        acc.indicators.push_stats(&stats);
    }

    fn merge(&self, into: &mut MeasurementsAccum, other: MeasurementsAccum) {
        into.indicators.merge(&other.indicators);
        into.batches.extend(other.batches);
    }

    fn finish(&self, plan: &ReplicationPlan, acc: MeasurementsAccum) -> Measurements {
        // Budgeted runs may fold fewer batches (truncation) or fewer
        // replications per batch (isolated failures) than the plan.
        debug_assert!(acc.batches.len() <= plan.batches() as usize);
        // Divide by the folded count, so a degraded batch reports the
        // mean over its survivors. On a fault-free run every count
        // equals the plan's batch size and the division — and therefore
        // the output — is bit-identical to the pre-fault-tolerance
        // collector.
        let batch_p_success = acc
            .batches
            .iter()
            .map(|b| f64::from(b.successes) / f64::from(b.count))
            .collect();
        let batch_compromised = acc
            .batches
            .iter()
            .map(|b| b.compromised_sum / f64::from(b.count))
            .collect();
        Measurements {
            // The executor never calls `finish` on an empty fold
            // (budgeted paths return `output: None` instead), so the
            // accumulator holds at least one replication here.
            #[allow(clippy::disallowed_methods)]
            summary: acc
                .indicators
                .finish()
                .expect("finish is never called on an empty fold"),
            batch_p_success,
            batch_compromised,
        }
    }
}

/// A [`Collector`] streaming campaign outcomes into a plain
/// [`IndicatorSummary`], ignoring batch structure — the fold behind
/// unbatched campaign sweeps such as the R6 threat-model comparison.
/// Like [`MeasurementsCollector`] it is generic over anything
/// [`CampaignStats`] can be read from.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndicatorsCollector;

impl<T> Collector<T> for IndicatorsCollector
where
    T: Send,
    for<'a> CampaignStats: From<&'a T>,
{
    type Accum = IndicatorAccum;
    type Output = IndicatorSummary;

    fn empty(&self) -> IndicatorAccum {
        IndicatorAccum::new()
    }

    fn accumulate(
        &self,
        _plan: &ReplicationPlan,
        acc: &mut IndicatorAccum,
        _rep: Replication,
        outcome: T,
    ) {
        acc.push_stats(&CampaignStats::from(&outcome));
    }

    fn merge(&self, into: &mut IndicatorAccum, other: IndicatorAccum) {
        into.merge(&other);
    }

    fn finish(&self, _plan: &ReplicationPlan, acc: IndicatorAccum) -> IndicatorSummary {
        // The executor never calls `finish` on an empty fold (budgeted
        // paths return `output: None` instead).
        #[allow(clippy::disallowed_methods)]
        acc.finish()
            .expect("finish is never called on an empty fold")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_plan_keeps_legacy_seed_schedule() {
        // The original loop seeded replication i with
        // derive_seed(master, StreamId(0x4E_0000 + i)).
        let plan = campaign_plan(4, 25, 0xD1CE);
        for i in 0..plan.total() {
            assert_eq!(
                plan.seed_for(i),
                diversify_des::derive_seed(
                    0xD1CE,
                    diversify_des::StreamId(0x4E_0000 + u64::from(i))
                )
            );
        }
    }
}
