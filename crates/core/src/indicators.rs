//! The paper's security indicators, aggregated over campaign replications.
//!
//! Aggregation is *streaming*: outcomes fold one at a time into an
//! [`IndicatorAccum`] — Bernoulli counters for the binary responses,
//! Welford moments for the real-valued ones — so memory stays O(1) per
//! metric no matter how many replications run, partial accumulators from
//! parallel workers merge exactly, and confidence intervals come from
//! the moments alone. No per-replication sample vector survives the hot
//! path; batch means for ANOVA live in
//! [`Measurements`](crate::runner::Measurements).

use diversify_attack::campaign::{CampaignOutcome, CampaignStats};
use diversify_des::Precision;
use diversify_stats::{
    proportion_ci, BernoulliCounter, ConfidenceInterval, RawMoments, StatsError, StreamingSummary,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The indicator an adaptive run monitors for its precision target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PrecisionResponse {
    /// The attack-success probability (the paper's P_SA), judged by its
    /// Wilson interval.
    PSuccess,
    /// The mean final compromised ratio, judged by its Student-t
    /// interval.
    CompromisedRatio,
}

/// Streaming accumulator for the security indicators: every campaign
/// outcome folds in as it completes, and two partial accumulators merge
/// into the accumulator of their concatenated outcome streams.
#[derive(Debug, Clone, Default)]
pub struct IndicatorAccum {
    /// Success per replication (trials = replications).
    success: BernoulliCounter,
    /// Detection per replication (trials = replications).
    detection: BernoulliCounter,
    /// Time-To-Attack moments, successful campaigns only.
    tta: StreamingSummary,
    /// Time-To-Security-Failure moments, detected campaigns only.
    ttsf: StreamingSummary,
    /// Final compromised-ratio moments, every campaign.
    compromised: StreamingSummary,
}

impl IndicatorAccum {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        IndicatorAccum::default()
    }

    /// Folds one campaign outcome in.
    pub fn push(&mut self, outcome: &CampaignOutcome) {
        self.push_stats(&outcome.stats());
    }

    /// Folds one replication's scalar [`CampaignStats`] in — the
    /// allocation-free fold behind the workspace hot path, where no full
    /// [`CampaignOutcome`] is ever materialized.
    pub fn push_stats(&mut self, stats: &CampaignStats) {
        self.success.push(stats.succeeded());
        self.detection.push(stats.time_to_detection.is_some());
        if let Some(t) = stats.time_to_attack {
            self.tta.push(f64::from(t));
        }
        if let Some(t) = stats.time_to_detection {
            self.ttsf.push(f64::from(t));
        }
        self.compromised.push(stats.final_compromised_ratio);
    }

    /// Merges another accumulator (covering later replications) in.
    pub fn merge(&mut self, other: &IndicatorAccum) {
        self.success.merge(&other.success);
        self.detection.merge(&other.detection);
        self.tta.merge(&other.tta);
        self.ttsf.merge(&other.ttsf);
        self.compromised.merge(&other.compromised);
    }

    /// Replications folded in so far.
    #[must_use]
    pub fn replications(&self) -> u64 {
        self.success.trials()
    }

    /// The current precision of `response` at confidence `level`, or
    /// `None` while the interval cannot be computed yet (e.g. fewer than
    /// two observations for a t interval) — or while the estimate is
    /// still an all-zero degenerate.
    ///
    /// The all-zero guard is deliberate: with zero successes the point
    /// estimate is 0, so a *relative* half-width target is unjudgeable —
    /// a degenerate interval must never let an adaptive run stop
    /// "confident" at exactly the rare design points it cannot resolve.
    /// Such runs keep going to their replication cap (and rare-event
    /// splitting is the right tool past that).
    #[must_use]
    pub fn precision(&self, response: PrecisionResponse, level: f64) -> Option<Precision> {
        let ci = match response {
            PrecisionResponse::PSuccess => {
                if self.success.successes() == 0 {
                    return None;
                }
                self.success.ci(level).ok()?
            }
            PrecisionResponse::CompromisedRatio => {
                if self.compromised.is_empty() || self.compromised.mean() == 0.0 {
                    return None;
                }
                self.compromised.mean_ci(level).ok()?
            }
        };
        Some(Precision {
            estimate: ci.estimate,
            half_width: ci.half_width(),
        })
    }

    /// Exports the accumulator's full state as a wire-portable
    /// [`IndicatorSnapshot`]. `IndicatorAccum::from_snapshot(&s)` is the
    /// bit-exact inverse, so an accumulator can be built on one machine,
    /// shipped, and merged on another as if it had been folded locally.
    #[must_use]
    pub fn snapshot(&self) -> IndicatorSnapshot {
        IndicatorSnapshot {
            success: CounterSnapshot::from_counter(&self.success),
            detection: CounterSnapshot::from_counter(&self.detection),
            tta: MomentsSnapshot::from_summary(&self.tta),
            ttsf: MomentsSnapshot::from_summary(&self.ttsf),
            compromised: MomentsSnapshot::from_summary(&self.compromised),
        }
    }

    /// Rebuilds an accumulator from an exported snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for counter states no
    /// sequence of folds can produce (successes exceeding trials) — the
    /// structural check a transport layer relies on to reject forged or
    /// corrupted payloads before they poison a merge.
    pub fn from_snapshot(snap: &IndicatorSnapshot) -> Result<IndicatorAccum, StatsError> {
        Ok(IndicatorAccum {
            success: snap.success.to_counter()?,
            detection: snap.detection.to_counter()?,
            tta: snap.tta.to_summary(),
            ttsf: snap.ttsf.to_summary(),
            compromised: snap.compromised.to_summary(),
        })
    }

    /// Closes the accumulator into an [`IndicatorSummary`].
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] when no outcome was
    /// folded in.
    pub fn finish(self) -> Result<IndicatorSummary, StatsError> {
        let replications =
            u32::try_from(self.success.trials()).map_err(|_| StatsError::InvalidParameter {
                what: "replication count exceeds u32",
            })?;
        if replications == 0 {
            return Err(StatsError::InsufficientData {
                needed: "at least one campaign outcome",
            });
        }
        Ok(IndicatorSummary {
            replications,
            successes: self.success.successes() as u32,
            detections: self.detection.successes() as u32,
            p_success: self.success.proportion(),
            mean_tta: self.tta.mean_opt(),
            mean_ttsf: self.ttsf.mean_opt(),
            mean_compromised_ratio: self.compromised.mean(),
            tta: self.tta,
            ttsf: self.ttsf,
            compromised: self.compromised,
        })
    }
}

/// Wire-portable state of a [`BernoulliCounter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Number of successes.
    pub successes: u64,
    /// Number of trials.
    pub trials: u64,
}

impl CounterSnapshot {
    fn from_counter(counter: &BernoulliCounter) -> Self {
        CounterSnapshot {
            successes: counter.successes(),
            trials: counter.trials(),
        }
    }

    fn to_counter(self) -> Result<BernoulliCounter, StatsError> {
        BernoulliCounter::from_counts(self.successes, self.trials)
    }
}

/// Wire-portable Welford state of a [`StreamingSummary`]. The `f64`
/// fields round-trip bit-exactly through the serve crate's binary codec
/// (which transports `f64::to_bits`), including the `±∞` min/max
/// sentinels of an empty summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MomentsSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Running mean.
    pub mean: f64,
    /// Summed squared deviation from the mean.
    pub m2: f64,
    /// Smallest observation (`+∞` when empty).
    pub min: f64,
    /// Largest observation (`-∞` when empty).
    pub max: f64,
}

impl MomentsSnapshot {
    fn from_summary(summary: &StreamingSummary) -> Self {
        let raw = summary.to_raw();
        MomentsSnapshot {
            count: raw.count,
            mean: raw.mean,
            m2: raw.m2,
            min: raw.min,
            max: raw.max,
        }
    }

    fn to_summary(self) -> StreamingSummary {
        StreamingSummary::from_raw(RawMoments {
            count: self.count,
            mean: self.mean,
            m2: self.m2,
            min: self.min,
            max: self.max,
        })
    }
}

/// The full exported state of an [`IndicatorAccum`] — the unit the serve
/// crate ships from shard workers to the coordinator, and the payload a
/// memo store persists between requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndicatorSnapshot {
    /// Success counter state.
    pub success: CounterSnapshot,
    /// Detection counter state.
    pub detection: CounterSnapshot,
    /// Time-To-Attack moments.
    pub tta: MomentsSnapshot,
    /// Time-To-Security-Failure moments.
    pub ttsf: MomentsSnapshot,
    /// Compromised-ratio moments.
    pub compromised: MomentsSnapshot,
}

/// Aggregated security indicators for one system configuration.
///
/// * `p_success` — probability of a successful attack (the paper's P_SA);
/// * `time_to_attack` — hours until the goal, over successful campaigns;
/// * `time_to_detection` — hours until the defenders perceive the attack
///   (the paper's Time-To-Security-Failure), over detected campaigns;
/// * `mean_compromised_ratio` — average of each campaign's final
///   compromised ratio (compromised components / total components).
///
/// Distributional information is carried as streaming moments
/// ([`StreamingSummary`]: count/mean/M2/min/max) rather than raw
/// per-replication vectors, so a summary costs O(1) memory regardless of
/// the replication count and confidence intervals derive from the
/// moments alone.
#[derive(Debug, Clone, Serialize)]
pub struct IndicatorSummary {
    /// Number of campaign replications aggregated.
    pub replications: u32,
    /// Count of successful campaigns.
    pub successes: u32,
    /// Count of detected campaigns.
    pub detections: u32,
    /// P(successful attack).
    pub p_success: f64,
    /// Mean Time-To-Attack in ticks (hours), successful campaigns only.
    pub mean_tta: Option<f64>,
    /// Mean Time-To-Security-Failure in ticks, detected campaigns only.
    pub mean_ttsf: Option<f64>,
    /// Mean final compromised ratio.
    pub mean_compromised_ratio: f64,
    /// Streaming TTA moments (successes only).
    #[serde(skip)]
    pub tta: StreamingSummary,
    /// Streaming TTSF moments (detections only).
    #[serde(skip)]
    pub ttsf: StreamingSummary,
    /// Streaming final-compromised-ratio moments (every replication).
    #[serde(skip)]
    pub compromised: StreamingSummary,
}

impl IndicatorSummary {
    /// Aggregates a batch of campaign outcomes.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] when `outcomes` is
    /// empty.
    pub fn from_outcomes(outcomes: &[CampaignOutcome]) -> Result<Self, StatsError> {
        let mut acc = IndicatorAccum::new();
        for outcome in outcomes {
            acc.push(outcome);
        }
        acc.finish()
    }

    /// Wilson confidence interval for the attack-success probability.
    ///
    /// # Errors
    ///
    /// Propagates [`StatsError`] for degenerate inputs.
    pub fn p_success_ci(&self, level: f64) -> Result<ConfidenceInterval, StatsError> {
        proportion_ci(
            u64::from(self.successes),
            u64::from(self.replications),
            level,
        )
    }

    /// Student-t confidence interval for the mean Time-To-Attack, from
    /// the streaming moments.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] when fewer than two
    /// campaigns succeeded.
    pub fn tta_ci(&self, level: f64) -> Result<ConfidenceInterval, StatsError> {
        self.tta.mean_ci(level)
    }
}

impl fmt::Display for IndicatorSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P_SA={:.3} ({} of {}) | TTA={} h | TTSF={} h | compromised={:.3}",
            self.p_success,
            self.successes,
            self.replications,
            self.mean_tta.map_or("-".to_string(), |v| format!("{v:.1}")),
            self.mean_ttsf
                .map_or("-".to_string(), |v| format!("{v:.1}")),
            self.mean_compromised_ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversify_attack::campaign::{CampaignConfig, CampaignSimulator, ThreatModel};
    use diversify_scada::scope::{ScopeConfig, ScopeSystem};

    fn outcomes(n: u32) -> Vec<CampaignOutcome> {
        let net = ScopeSystem::build(&ScopeConfig::default())
            .network()
            .clone();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        sim.run_many(n, 5)
    }

    #[test]
    fn aggregation_counts_match() {
        let os = outcomes(30);
        let s = IndicatorSummary::from_outcomes(&os).unwrap();
        assert_eq!(s.replications, 30);
        assert_eq!(
            s.successes as usize,
            os.iter().filter(|o| o.succeeded()).count()
        );
        assert_eq!(s.tta.count(), u64::from(s.successes));
        assert_eq!(s.ttsf.count(), u64::from(s.detections));
        assert_eq!(s.compromised.count(), 30);
        assert!((0.0..=1.0).contains(&s.p_success));
        assert!((0.0..=1.0).contains(&s.mean_compromised_ratio));
    }

    #[test]
    fn streaming_means_match_slice_means() {
        let os = outcomes(25);
        let s = IndicatorSummary::from_outcomes(&os).unwrap();
        let ttas: Vec<f64> = os
            .iter()
            .filter_map(|o| o.time_to_attack.map(f64::from))
            .collect();
        if !ttas.is_empty() {
            let mean = ttas.iter().sum::<f64>() / ttas.len() as f64;
            assert!((s.mean_tta.unwrap() - mean).abs() < 1e-9);
        }
        let ratios: Vec<f64> = os
            .iter()
            .map(CampaignOutcome::final_compromised_ratio)
            .collect();
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!((s.mean_compromised_ratio - mean).abs() < 1e-12);
    }

    #[test]
    fn accum_merge_equals_single_pass() {
        let os = outcomes(20);
        let whole = IndicatorSummary::from_outcomes(&os).unwrap();
        let mut a = IndicatorAccum::new();
        for o in &os[..8] {
            a.push(o);
        }
        let mut b = IndicatorAccum::new();
        for o in &os[8..] {
            b.push(o);
        }
        a.merge(&b);
        let merged = a.finish().unwrap();
        assert_eq!(merged.replications, whole.replications);
        assert_eq!(merged.successes, whole.successes);
        assert_eq!(merged.detections, whole.detections);
        assert!((merged.mean_compromised_ratio - whole.mean_compromised_ratio).abs() < 1e-12);
        assert_eq!(merged.tta.count(), whole.tta.count());
    }

    #[test]
    fn precision_reports_match_cis() {
        let mut acc = IndicatorAccum::new();
        for o in outcomes(40) {
            acc.push(&o);
        }
        let p = acc
            .precision(PrecisionResponse::PSuccess, 0.95)
            .expect("40 trials suffice");
        assert!(p.half_width > 0.0);
        assert!((0.0..=1.0).contains(&p.estimate));
        let c = acc
            .precision(PrecisionResponse::CompromisedRatio, 0.95)
            .expect("40 observations suffice");
        assert!(c.half_width >= 0.0);
        // An empty accumulator has no precision to report.
        assert!(IndicatorAccum::new()
            .precision(PrecisionResponse::PSuccess, 0.95)
            .is_none());
    }

    #[test]
    fn zero_success_accumulator_reports_no_precision() {
        // Regression: many all-failure replications used to surface a
        // degenerate interval a relative stop rule could accept; the
        // accumulator must instead report "not judgeable yet" so
        // adaptive runs continue to their cap.
        let mut acc = IndicatorAccum::new();
        for _ in 0..500 {
            acc.push_stats(&CampaignStats {
                time_to_attack: None,
                time_to_detection: None,
                final_compromised_ratio: 0.0,
                deepest_stage: diversify_attack::stage::AttackStage::Initial,
                firewall_blocks: 0,
                payload_failures: 0,
            });
        }
        assert!(acc.precision(PrecisionResponse::PSuccess, 0.95).is_none());
        assert!(acc
            .precision(PrecisionResponse::CompromisedRatio, 0.95)
            .is_none());
        // One success unlocks a judgeable interval again.
        acc.push_stats(&CampaignStats {
            time_to_attack: Some(7),
            time_to_detection: None,
            final_compromised_ratio: 0.25,
            deepest_stage: diversify_attack::stage::AttackStage::DeviceImpairment,
            firewall_blocks: 0,
            payload_failures: 0,
        });
        let p = acc
            .precision(PrecisionResponse::PSuccess, 0.95)
            .expect("one success makes the interval judgeable");
        assert!(p.estimate > 0.0 && p.half_width > 0.0);
        assert!(acc
            .precision(PrecisionResponse::CompromisedRatio, 0.95)
            .is_some());
    }

    #[test]
    fn confidence_intervals_contain_estimates() {
        let s = IndicatorSummary::from_outcomes(&outcomes(40)).unwrap();
        let ci = s.p_success_ci(0.95).unwrap();
        assert!(ci.contains(s.p_success));
        if s.successes >= 2 {
            let tci = s.tta_ci(0.95).unwrap();
            assert!(tci.contains(s.mean_tta.unwrap()));
        }
    }

    #[test]
    fn display_renders() {
        let s = IndicatorSummary::from_outcomes(&outcomes(5)).unwrap();
        let text = s.to_string();
        assert!(text.contains("P_SA="));
    }

    #[test]
    fn empty_outcomes_error() {
        assert!(matches!(
            IndicatorSummary::from_outcomes(&[]),
            Err(StatsError::InsufficientData { .. })
        ));
    }
}
