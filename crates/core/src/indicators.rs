//! The paper's security indicators, aggregated over campaign replications.

use diversify_attack::campaign::CampaignOutcome;
use diversify_stats::{mean_ci, proportion_ci, ConfidenceInterval, StatsError};
use serde::Serialize;
use std::fmt;

/// Aggregated security indicators for one system configuration.
///
/// * `p_success` — probability of a successful attack (the paper's P_SA);
/// * `time_to_attack` — hours until the goal, over successful campaigns;
/// * `time_to_detection` — hours until the defenders perceive the attack
///   (the paper's Time-To-Security-Failure), over detected campaigns;
/// * `mean_compromised_ratio` — average of each campaign's final
///   compromised ratio (compromised components / total components).
#[derive(Debug, Clone, Serialize)]
pub struct IndicatorSummary {
    /// Number of campaign replications aggregated.
    pub replications: u32,
    /// Count of successful campaigns.
    pub successes: u32,
    /// Count of detected campaigns.
    pub detections: u32,
    /// P(successful attack).
    pub p_success: f64,
    /// Mean Time-To-Attack in ticks (hours), successful campaigns only.
    pub mean_tta: Option<f64>,
    /// Mean Time-To-Security-Failure in ticks, detected campaigns only.
    pub mean_ttsf: Option<f64>,
    /// Mean final compromised ratio.
    pub mean_compromised_ratio: f64,
    /// Per-replication final compromised ratios (kept for ANOVA).
    #[serde(skip)]
    pub compromised_ratios: Vec<f64>,
    /// Per-replication TTA values (successes only, kept for ANOVA).
    #[serde(skip)]
    pub tta_samples: Vec<f64>,
}

impl IndicatorSummary {
    /// Aggregates a batch of campaign outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is empty.
    #[must_use]
    pub fn from_outcomes(outcomes: &[CampaignOutcome]) -> Self {
        assert!(!outcomes.is_empty(), "at least one outcome required");
        let replications = outcomes.len() as u32;
        let successes = outcomes.iter().filter(|o| o.succeeded()).count() as u32;
        let detections = outcomes
            .iter()
            .filter(|o| o.time_to_detection.is_some())
            .count() as u32;
        let tta_samples: Vec<f64> = outcomes
            .iter()
            .filter_map(|o| o.time_to_attack.map(f64::from))
            .collect();
        let ttsf: Vec<f64> = outcomes
            .iter()
            .filter_map(|o| o.time_to_detection.map(f64::from))
            .collect();
        let compromised_ratios: Vec<f64> = outcomes
            .iter()
            .map(CampaignOutcome::final_compromised_ratio)
            .collect();
        let mean = |xs: &[f64]| {
            if xs.is_empty() {
                None
            } else {
                Some(xs.iter().sum::<f64>() / xs.len() as f64)
            }
        };
        IndicatorSummary {
            replications,
            successes,
            detections,
            p_success: f64::from(successes) / f64::from(replications),
            mean_tta: mean(&tta_samples),
            mean_ttsf: mean(&ttsf),
            mean_compromised_ratio: mean(&compromised_ratios).unwrap_or(0.0),
            compromised_ratios,
            tta_samples,
        }
    }

    /// Wilson confidence interval for the attack-success probability.
    ///
    /// # Errors
    ///
    /// Propagates [`StatsError`] for degenerate inputs.
    pub fn p_success_ci(&self, level: f64) -> Result<ConfidenceInterval, StatsError> {
        proportion_ci(
            u64::from(self.successes),
            u64::from(self.replications),
            level,
        )
    }

    /// Student-t confidence interval for the mean Time-To-Attack.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] when fewer than two
    /// campaigns succeeded.
    pub fn tta_ci(&self, level: f64) -> Result<ConfidenceInterval, StatsError> {
        mean_ci(&self.tta_samples, level)
    }
}

impl fmt::Display for IndicatorSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P_SA={:.3} ({} of {}) | TTA={} h | TTSF={} h | compromised={:.3}",
            self.p_success,
            self.successes,
            self.replications,
            self.mean_tta.map_or("-".to_string(), |v| format!("{v:.1}")),
            self.mean_ttsf
                .map_or("-".to_string(), |v| format!("{v:.1}")),
            self.mean_compromised_ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversify_attack::campaign::{CampaignConfig, CampaignSimulator, ThreatModel};
    use diversify_scada::scope::{ScopeConfig, ScopeSystem};

    fn outcomes(n: u32) -> Vec<CampaignOutcome> {
        let net = ScopeSystem::build(&ScopeConfig::default())
            .network()
            .clone();
        let sim =
            CampaignSimulator::new(&net, ThreatModel::stuxnet_like(), CampaignConfig::default());
        sim.run_many(n, 5)
    }

    #[test]
    fn aggregation_counts_match() {
        let os = outcomes(30);
        let s = IndicatorSummary::from_outcomes(&os);
        assert_eq!(s.replications, 30);
        assert_eq!(
            s.successes as usize,
            os.iter().filter(|o| o.succeeded()).count()
        );
        assert_eq!(s.tta_samples.len(), s.successes as usize);
        assert_eq!(s.compromised_ratios.len(), 30);
        assert!((0.0..=1.0).contains(&s.p_success));
        assert!((0.0..=1.0).contains(&s.mean_compromised_ratio));
    }

    #[test]
    fn confidence_intervals_contain_estimates() {
        let s = IndicatorSummary::from_outcomes(&outcomes(40));
        let ci = s.p_success_ci(0.95).unwrap();
        assert!(ci.contains(s.p_success));
        if s.successes >= 2 {
            let tci = s.tta_ci(0.95).unwrap();
            assert!(tci.contains(s.mean_tta.unwrap()));
        }
    }

    #[test]
    fn display_renders() {
        let s = IndicatorSummary::from_outcomes(&outcomes(5));
        let text = s.to_string();
        assert!(text.contains("P_SA="));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_outcomes_panics() {
        let _ = IndicatorSummary::from_outcomes(&[]);
    }
}
