//! Typed errors for user-reachable configuration and pipeline paths.
//!
//! The DoE pipeline and the measurement runners validate untrusted
//! configuration (precision targets, replication shapes, resilience
//! budgets) up front and report problems as [`PipelineError`] values
//! through the `try_*` entry points; the historical panicking entry
//! points delegate to them and panic with the same messages, so
//! existing callers and tests observe identical behavior.

use crate::exec::{BudgetOutcome, PlanError};
use diversify_stats::StatsError;

/// Why a pipeline run or measurement configuration was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The precision target's replication cap is below the floor the
    /// ANOVA stage needs (at least two batches per design run).
    PrecisionCapTooTight {
        /// The configured replication cap.
        cap: u32,
        /// The minimum the design needs.
        floor: u32,
    },
    /// A confidence level outside `(0, 1)`.
    InvalidLevel(f64),
    /// A structurally invalid replication plan or stop rule.
    Plan(PlanError),
    /// A design point's budgeted measurement completed zero
    /// replications, so the design matrix has a hole ANOVA cannot
    /// tolerate.
    EmptyDesignPoint {
        /// The design-run index (0-based).
        run: usize,
        /// How the cell's budget ended.
        outcome: BudgetOutcome,
    },
    /// A statistical stage failed (degenerate variance, insufficient
    /// data, …).
    Stats(StatsError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::PrecisionCapTooTight { cap, floor } => write!(
                f,
                "precision target caps replications at {cap} but the factorial design needs at \
                 least {floor} per design point (two batches for the ANOVA error term)"
            ),
            PipelineError::InvalidLevel(level) => {
                write!(f, "confidence level must be in (0,1), got {level}")
            }
            PipelineError::Plan(err) => write!(f, "{err}"),
            PipelineError::EmptyDesignPoint { run, outcome } => write!(
                f,
                "design run {run} completed zero replications (budget outcome: {outcome}); the \
                 factorial design cannot tolerate an empty cell"
            ),
            PipelineError::Stats(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Plan(err) => Some(err),
            PipelineError::Stats(err) => Some(err),
            _ => None,
        }
    }
}

impl From<PlanError> for PipelineError {
    fn from(err: PlanError) -> Self {
        PipelineError::Plan(err)
    }
}

impl From<StatsError> for PipelineError {
    fn from(err: StatsError) -> Self {
        PipelineError::Stats(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_preserve_legacy_panic_substrings() {
        let cap = PipelineError::PrecisionCapTooTight { cap: 5, floor: 10 };
        assert!(cap.to_string().contains("caps replications"));
        let plan = PipelineError::from(PlanError::EmptyPlan);
        assert!(plan.to_string().contains("non-empty batch plan"));
        let level = PipelineError::InvalidLevel(1.5);
        assert!(level.to_string().contains("(0,1)"));
    }
}
