//! The three-step pipeline — the paper's Figure 1 as an executable API.

use crate::content::ContentKey;
use crate::error::PipelineError;
use crate::exec::{
    campaign_plan, BudgetOutcome, Executor, Precision, ReplicationFailure, RunPolicy,
};
use crate::factors::{factor_profile, FactorLevel};
use crate::report::{
    render_adaptive_table, render_health_table, render_measurement_table, render_rare_event_table,
};
use crate::runner::{
    measure_configuration_adaptive, measure_configuration_adaptive_budgeted,
    measure_configuration_budgeted, measure_configuration_splitting, measure_configuration_with,
    Measurements, PartialMeasurements, PrecisionTarget, SplittingMeasurements,
};
use diversify_attack::campaign::{CampaignConfig, ThreatModel};
use diversify_attack::to_san::{compile_stage_chain, success_place, StageParams};
use diversify_attack::tree::{stuxnet_tree, AttackTree};
use diversify_des::{SimTime, StreamId};
use diversify_doe::design::{fractional_factorial, DesignMatrix};
use diversify_san::{solve as san_solve, Method, RewardSpec, TransientSolver};
use diversify_scada::components::ComponentClass;
use diversify_scada::scope::{ScopeConfig, ScopeSystem};
use diversify_stats::anova::{factorial_two_level, EffectSpec, FactorialAnova};
use std::collections::HashMap;
use std::fmt;

/// Configuration of a full pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The modeled plant.
    pub scope: ScopeConfig,
    /// The threat model.
    pub threat: ThreatModel,
    /// Campaign parameters.
    pub campaign: CampaignConfig,
    /// Replicate batches per design run (ANOVA replicates).
    pub batches: u32,
    /// Campaigns per batch.
    pub batch_size: u32,
    /// Master seed.
    pub seed: u64,
    /// How measurement replications are scheduled. Serial and parallel
    /// executors produce bit-identical reports.
    pub executor: Executor,
    /// Opt-in: cross-check the staged attack model against the exact
    /// CTMC backend (the stage chain solved analytically vs by
    /// Monte-Carlo) and include the comparison in the report.
    pub analytic_check: bool,
    /// Opt-in: spend replications per design point according to its
    /// variance. When set, every design run executes batch-sized rounds
    /// until the target's confidence-interval half-width is reached
    /// (within its replication bounds) instead of the fixed
    /// `batches × batch_size` budget, and the report gains per-run
    /// replication counts and achieved half-widths. `min_replications`
    /// is raised to at least two batches so ANOVA keeps an error term;
    /// `max_replications` is honored as a hard cap and must therefore
    /// allow two batches ([`Pipeline::doe_measurements`] panics on a
    /// tighter cap rather than silently exceeding it).
    pub precision: Option<PrecisionTarget>,
    /// Opt-in rare-event estimation: when set, every design point is
    /// *additionally* measured by fixed-effort multilevel splitting over
    /// the campaign's goal-implied milestones
    /// ([`measure_configuration_splitting`]) — the estimation mode for
    /// design points whose P_SA is far below what the fixed or adaptive
    /// Monte-Carlo budget can resolve. The report then carries a
    /// per-run splitting estimate with its product-of-conditionals
    /// confidence interval. The plain measurements are unchanged (the
    /// splitting sweep draws from its own seed streams), so ANOVA
    /// results are bit-identical with and without this option.
    pub rare_event: Option<RareEventTarget>,
    /// Opt-in fault tolerance: when set, every design point is measured
    /// under this [`RunPolicy`] — panicking or invalid replications are
    /// isolated (and retried per the policy) instead of aborting the
    /// sweep, and the per-cell budget (replication cap, deadline, cancel
    /// token) truncates a cell at a round boundary rather than the whole
    /// run. The report then carries a per-cell [`CellHealth`] record and
    /// flags degraded cells. `None` keeps the historical strict behavior:
    /// any replication panic aborts the sweep.
    pub resilience: Option<RunPolicy>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            scope: ScopeConfig::default(),
            threat: ThreatModel::stuxnet_like(),
            campaign: CampaignConfig {
                max_ticks: 24 * 30, // one month of attacker persistence
                detection_stops_attack: false,
            },
            batches: 4,
            batch_size: 25,
            seed: 0xD1CE,
            executor: Executor::default(),
            analytic_check: false,
            precision: None,
            rare_event: None,
            resilience: None,
        }
    }
}

/// Settings of a rare-event splitting sweep
/// ([`PipelineConfig::rare_event`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RareEventTarget {
    /// Fixed per-level splitting population (replications launched
    /// toward every milestone).
    pub population: u32,
    /// Confidence level of the product-of-conditionals interval, e.g.
    /// `0.95`.
    pub level: f64,
}

impl Default for RareEventTarget {
    fn default() -> Self {
        RareEventTarget {
            population: 200,
            level: 0.95,
        }
    }
}

/// How one design point fared under a resilient
/// ([`PipelineConfig::resilience`]) sweep: what its budget allowed, what
/// actually completed, and which replications failed.
#[derive(Debug, Clone)]
pub struct CellHealth {
    /// Replications the cell attempted (completed rounds × batch size).
    pub attempted: u32,
    /// Replications that completed and folded into the cell's
    /// measurements.
    pub completed: u32,
    /// Replications that failed every attempt, with seeds and causes.
    pub failures: Vec<ReplicationFailure>,
    /// How the cell's run ended.
    pub budget_outcome: BudgetOutcome,
}

impl CellHealth {
    /// Whether this cell lost replications to failures or truncation —
    /// its measurements cover fewer replications than the plan asked
    /// for.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !self.failures.is_empty() || self.budget_outcome.is_truncation()
    }

    fn from_partial(part: &PartialMeasurements) -> CellHealth {
        CellHealth {
            attempted: part.attempted,
            completed: part.completed,
            failures: part.failed.clone(),
            budget_outcome: part.budget_outcome,
        }
    }
}

/// Opt-in artifact of step 1: the staged threat compiled to an
/// all-exponential stage-chain SAN and solved twice — exactly (CTMC
/// uniformization) and by Monte-Carlo — over the campaign window. The
/// two backends share nothing but the model, so agreement here certifies
/// the simulation machinery against an independent oracle.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticCrossCheck {
    /// Campaign window used for both backends, hours.
    pub window_hours: f64,
    /// P(attack succeeds within the window), exact.
    pub p_window_analytic: f64,
    /// P(attack succeeds within the window), Monte-Carlo estimate.
    pub p_window_simulated: f64,
    /// Mean TTA conditional on success within the window, exact (hours).
    pub mean_tta_analytic: Option<f64>,
    /// Mean TTA conditional on success within the window, Monte-Carlo
    /// (hours).
    pub mean_tta_simulated: Option<f64>,
    /// Unconditional closed-form mean TTA (`Σ 1/(pᵢ·rate)`, hours) for
    /// reference.
    pub mean_tta_closed_form: f64,
}

/// Output of step 1 (Attack Modeling).
#[derive(Debug)]
pub struct AttackModel {
    /// The threat model to be simulated.
    pub threat: ThreatModel,
    /// The equivalent attack tree over the monoculture baseline (for the
    /// formalism cross-check).
    pub tree: AttackTree,
}

/// How one design run of an adaptive sweep spent its replications.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveSweepPoint {
    /// Replications executed for this design run.
    pub replications: u32,
    /// Replicate batches executed (the ANOVA replicate units).
    pub batches: u32,
    /// Whether the precision target was met (vs hitting the cap).
    pub target_met: bool,
    /// Monitored response's final estimate and CI half-width, if the
    /// monitor could compute one.
    pub precision: Option<Precision>,
}

/// Output of step 2 (DoE & Measurements).
#[derive(Debug)]
pub struct DoeMeasurements {
    /// The 2^(6−2) fractional factorial design over the six component
    /// classes.
    pub design: DesignMatrix,
    /// Per-run measurements, in design order.
    pub measurements: Vec<Measurements>,
    /// Per-run adaptive-replication report, in design order — present
    /// exactly when [`PipelineConfig::precision`] was set.
    pub adaptive: Option<Vec<AdaptiveSweepPoint>>,
    /// Per-run rare-event splitting estimates, in design order — present
    /// exactly when [`PipelineConfig::rare_event`] was set.
    pub rare_event: Option<Vec<SplittingMeasurements>>,
    /// Per-run fault-tolerance record, in design order — present exactly
    /// when [`PipelineConfig::resilience`] was set.
    pub health: Option<Vec<CellHealth>>,
}

impl DoeMeasurements {
    /// Whether any design point lost replications to failures or budget
    /// truncation. Always `false` for strict (non-resilient) sweeps.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.health
            .as_ref()
            .is_some_and(|cells| cells.iter().any(CellHealth::is_degraded))
    }
}

/// Output of step 3 (Diversity Assessment).
#[derive(Debug)]
pub struct Assessment {
    /// ANOVA of the attack-success probability response.
    pub anova_p_success: FactorialAnova,
    /// ANOVA of the compromised-ratio response.
    pub anova_compromised: FactorialAnova,
    /// Component classes ranked by variance explained on P_SA,
    /// descending — "the components valuable to diversify".
    pub ranking: Vec<(ComponentClass, f64)>,
}

/// The complete pipeline result.
#[derive(Debug)]
pub struct PipelineReport {
    /// Step 1 artifact.
    pub model: AttackModel,
    /// Step 2 artifact.
    pub doe: DoeMeasurements,
    /// Step 3 artifact.
    pub assessment: Assessment,
    /// Analytic-vs-simulation cross-check, when
    /// [`PipelineConfig::analytic_check`] is set.
    pub analytic: Option<AnalyticCrossCheck>,
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Step 1: Attack Modeling ==")?;
        writeln!(f, "threat: {}", self.model.threat.name)?;
        writeln!(
            f,
            "attack-tree P_SA (monoculture, per-attempt): {:.4}",
            self.model.tree.success_probability()
        )?;
        if let Some(x) = &self.analytic {
            writeln!(
                f,
                "analytic cross-check ({}h window): P_SA analytic {:.4} vs simulated {:.4}",
                x.window_hours, x.p_window_analytic, x.p_window_simulated
            )?;
            let fmt_opt = |v: Option<f64>| v.map_or("-".to_string(), |m: f64| format!("{m:.1}"));
            writeln!(
                f,
                "analytic cross-check: mean TTA analytic {}h vs simulated {}h \
                 (closed form, unbounded: {:.1}h)",
                fmt_opt(x.mean_tta_analytic),
                fmt_opt(x.mean_tta_simulated),
                x.mean_tta_closed_form
            )?;
        }
        writeln!(f)?;
        writeln!(f, "== Step 2: DoE & Measurements ==")?;
        write!(
            f,
            "{}",
            render_measurement_table(&self.doe.design, &self.doe.measurements)
        )?;
        if let Some(adaptive) = &self.doe.adaptive {
            writeln!(f)?;
            write!(f, "{}", render_adaptive_table(adaptive))?;
        }
        if let Some(rare) = &self.doe.rare_event {
            writeln!(f)?;
            write!(f, "{}", render_rare_event_table(rare))?;
        }
        if let Some(health) = &self.doe.health {
            writeln!(f)?;
            write!(f, "{}", render_health_table(health))?;
        }
        writeln!(f)?;
        writeln!(f, "== Step 3: Diversity Assessment (ANOVA on P_SA) ==")?;
        write!(f, "{}", self.assessment.anova_p_success)?;
        writeln!(f)?;
        writeln!(f, "components ranked by variance explained:")?;
        for (class, var) in &self.assessment.ranking {
            writeln!(f, "  {:<10} {:>6.2}%", class.label(), var * 100.0)?;
        }
        Ok(())
    }
}

/// The three-step pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline.
    #[must_use]
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Step 1 — Attack Modeling: instantiate the staged threat model and
    /// derive the equivalent attack tree for the monoculture baseline.
    #[must_use]
    pub fn attack_modeling(&self) -> AttackModel {
        let cat = &self.config.threat.catalog;
        let base = diversify_scada::components::ComponentProfile::default();
        let tree = stuxnet_tree(
            cat.infection_probability(&base),
            cat.infection_probability(&base) * 0.5, // phishing half as reliable
            cat.escalation_probability(&base),
            cat.firewall_pass_probability(&base),
            cat.firewall_pass_probability(&base) * 0.8,
            cat.plc_payload_probability(&base).max(1e-9),
        );
        AttackModel {
            threat: self.config.threat.clone(),
            tree,
        }
    }

    /// Step 2 — DoE & Measurements: build the 2^(6−2) resolution-IV
    /// design over the six component classes and measure every run —
    /// with the fixed `batches × batch_size` budget, or adaptively per
    /// design point when [`PipelineConfig::precision`] is set.
    ///
    /// # Panics
    ///
    /// Panics if a configured precision target caps replications below
    /// two batches (`rule.max_replications < 2 × batch_size`), or if a
    /// configured resilience budget leaves a design point with zero
    /// completed replications (an empty factorial cell) — see
    /// [`Pipeline::try_doe_measurements`] for the non-panicking form.
    /// Never panics otherwise (the built-in design is statically valid).
    #[must_use]
    pub fn doe_measurements(&self) -> DoeMeasurements {
        match self.try_doe_measurements() {
            Ok(doe) => doe,
            Err(err) => panic!("{err}"),
        }
    }

    /// The fallible form of [`Pipeline::doe_measurements`]: rejects a
    /// precision target whose cap is below two batches
    /// ([`PipelineError::PrecisionCapTooTight`] — the sweep must never
    /// exceed the caller's hard cap, and ANOVA needs at least two
    /// replicate batches per run for an error term), and reports a
    /// resilience budget that starves a design point of every
    /// replication as [`PipelineError::EmptyDesignPoint`] instead of
    /// leaving a hole in the factorial design.
    ///
    /// # Errors
    ///
    /// [`PipelineError::PrecisionCapTooTight`] and
    /// [`PipelineError::EmptyDesignPoint`], as above.
    pub fn try_doe_measurements(&self) -> Result<DoeMeasurements, PipelineError> {
        let labels: Vec<&str> = ComponentClass::ALL.iter().map(|c| c.label()).collect();
        // The built-in 2^(6-2) design is statically valid; its generator
        // words are fixed at compile time, so this cannot fail for any
        // configuration.
        #[allow(clippy::disallowed_methods)]
        let (design, _words) = fractional_factorial(&labels, &[vec![0, 1, 2], vec![1, 2, 3]])
            .expect("built-in 2^(6-2) design is valid");
        self.try_doe_measurements_with(design)
    }

    /// [`Pipeline::try_doe_measurements`] over a caller-supplied design
    /// matrix (one coded ±1 level per component class per row) instead
    /// of the built-in 2^(6−2) fractional factorial.
    ///
    /// Design points that decode to **identical plant configurations**
    /// (same profile, threat and campaign — keyed by their
    /// [`ContentKey`]) are simulated once and the measurements reused
    /// for every duplicate, so a degenerate design — replicated rows, a
    /// factor grid that collapses under aliasing — costs one simulation
    /// per *distinct* cell. Duplicates share the first occurrence's
    /// seed stream by construction, which is what "the same cell"
    /// should mean: re-running it through a different stream would
    /// re-measure the identical distribution at full price.
    ///
    /// # Errors
    ///
    /// As [`Pipeline::try_doe_measurements`], plus
    /// [`PipelineError::EmptyDesignPoint`] semantics for budgeted runs.
    pub fn try_doe_measurements_with(
        &self,
        design: DesignMatrix,
    ) -> Result<DoeMeasurements, PipelineError> {
        // One base plan; every design point gets its own decorrelated
        // sub-plan derived from its run index. Replications inside a run
        // are scheduled by the configured executor.
        let base_plan = campaign_plan(
            self.config.batches,
            self.config.batch_size,
            self.config.seed,
        );
        // An adaptive sweep needs at least two replicate batches per run
        // so the ANOVA error term survives the worst case. The floor
        // raises `min` only — a cap below it is rejected, never
        // silently exceeded.
        let floor = 2 * self.config.batch_size;
        let target = match self.config.precision {
            Some(mut t) => {
                if t.rule.max_replications < floor {
                    return Err(PipelineError::PrecisionCapTooTight {
                        cap: t.rule.max_replications,
                        floor,
                    });
                }
                t.rule.min_replications = t.rule.min_replications.max(floor);
                Some(t)
            }
            None => None,
        };
        let resilience = self.config.resilience.as_ref();
        let mut measurements: Vec<Measurements> = Vec::with_capacity(design.runs());
        let mut adaptive = target.map(|_| Vec::with_capacity(design.runs()));
        let mut rare_event = self
            .config
            .rare_event
            .map(|_| Vec::<SplittingMeasurements>::with_capacity(design.runs()));
        let mut health = resilience.map(|_| Vec::<CellHealth>::with_capacity(design.runs()));
        let mut seen: HashMap<ContentKey, usize> = HashMap::with_capacity(design.runs());
        for (run_idx, row) in design.rows.iter().enumerate() {
            let levels: Vec<FactorLevel> =
                row.iter().map(|&l| FactorLevel::from_coded(l)).collect();
            let profile = factor_profile(&levels);
            let mut scope_cfg = self.config.scope.clone();
            scope_cfg.baseline_profile = profile;
            // Deduplicate identical cells by content: two rows whose
            // decoded configurations match measure the same population,
            // so the first result is reused verbatim (bit-identical,
            // zero extra replications). Indexing is safe: every earlier
            // iteration pushed exactly one entry per active vector.
            let key = ContentKey::of(&cell_content(
                &scope_cfg,
                &self.config.threat,
                &self.config.campaign,
            ));
            if let Some(&first) = seen.get(&key) {
                let repeat = measurements[first].clone();
                measurements.push(repeat);
                if let Some(points) = &mut adaptive {
                    let repeat = points[first];
                    points.push(repeat);
                }
                if let Some(cells) = &mut health {
                    let repeat = cells[first].clone();
                    cells.push(repeat);
                }
                if let Some(points) = &mut rare_event {
                    let repeat = points[first].clone();
                    points.push(repeat);
                }
                continue;
            }
            seen.insert(key, run_idx);
            let system = ScopeSystem::build(&scope_cfg);
            let run_plan = base_plan.derived(StreamId(run_idx as u64));
            match (&target, &mut adaptive, resilience) {
                (Some(target), Some(points), None) => {
                    let run = measure_configuration_adaptive(
                        system.network(),
                        &self.config.threat,
                        self.config.campaign,
                        &run_plan,
                        self.config.executor,
                        target,
                    );
                    points.push(AdaptiveSweepPoint {
                        replications: run.replications,
                        batches: run.rounds,
                        target_met: run.target_met,
                        precision: run.precision,
                    });
                    measurements.push(run.output);
                }
                (Some(target), Some(points), Some(policy)) => {
                    let part = measure_configuration_adaptive_budgeted(
                        system.network(),
                        &self.config.threat,
                        self.config.campaign,
                        &run_plan,
                        self.config.executor,
                        target,
                        policy,
                    );
                    points.push(AdaptiveSweepPoint {
                        replications: part.attempted,
                        batches: part.rounds,
                        target_met: part.budget_outcome == BudgetOutcome::PrecisionMet,
                        precision: part.achieved_precision,
                    });
                    measurements.push(Self::take_cell(run_idx, part, &mut health)?);
                }
                (None, _, Some(policy)) => {
                    let part = measure_configuration_budgeted(
                        system.network(),
                        &self.config.threat,
                        self.config.campaign,
                        &run_plan,
                        self.config.executor,
                        policy,
                    );
                    measurements.push(Self::take_cell(run_idx, part, &mut health)?);
                }
                _ => measurements.push(measure_configuration_with(
                    system.network(),
                    &self.config.threat,
                    self.config.campaign,
                    &run_plan,
                    self.config.executor,
                )),
            }
            if let (Some(rare), Some(points)) = (self.config.rare_event, &mut rare_event) {
                // The splitting sweep seeds from the design run's derived
                // plan seed but draws through the splitting engine's own
                // stream namespace, so it never correlates with (or
                // perturbs) the plain measurements above.
                points.push(measure_configuration_splitting(
                    system.network(),
                    &self.config.threat,
                    self.config.campaign,
                    rare.population,
                    run_plan.master_seed(),
                    self.config.executor,
                    rare.level,
                )?);
            }
        }
        Ok(DoeMeasurements {
            design,
            measurements,
            adaptive,
            rare_event,
            health,
        })
    }

    /// Unwraps a budgeted cell: records its health and surfaces an empty
    /// cell (zero completed replications) as
    /// [`PipelineError::EmptyDesignPoint`].
    fn take_cell(
        run_idx: usize,
        part: PartialMeasurements,
        health: &mut Option<Vec<CellHealth>>,
    ) -> Result<Measurements, PipelineError> {
        if let Some(cells) = health {
            cells.push(CellHealth::from_partial(&part));
        }
        part.measurements.ok_or(PipelineError::EmptyDesignPoint {
            run: run_idx,
            outcome: part.budget_outcome,
        })
    }

    /// Step 3 — Diversity Assessment: ANOVA the measurements, allocating
    /// indicator variance to component classes.
    ///
    /// # Panics
    ///
    /// Panics only if `doe` was not produced by
    /// [`Pipeline::doe_measurements`] (mismatched shapes) — see
    /// [`Pipeline::try_assess`] for the non-panicking form.
    #[must_use]
    pub fn assess(&self, doe: &DoeMeasurements) -> Assessment {
        match self.try_assess(doe) {
            Ok(assessment) => assessment,
            Err(err) => panic!("{err}"),
        }
    }

    /// The fallible form of [`Pipeline::assess`]: reports a degenerate
    /// measurement set (mismatched shapes, too few replicate batches for
    /// an ANOVA error term — possible when a resilient sweep truncated
    /// every design point to under two batches) as
    /// [`PipelineError::Stats`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Stats`] when the factorial ANOVA rejects the
    /// measurement shape.
    pub fn try_assess(&self, doe: &DoeMeasurements) -> Result<Assessment, PipelineError> {
        let effects: Vec<EffectSpec> = ComponentClass::ALL
            .iter()
            .enumerate()
            .map(|(i, c)| EffectSpec::main(c.label(), i))
            .collect();
        // Adaptive sweeps may give design points different batch counts;
        // the factorial ANOVA needs balanced replicates, so truncate
        // every run to the common minimum (each batch mean is an iid
        // replicate unit, so dropping the tail keeps estimates unbiased).
        let min_batches = doe
            .measurements
            .iter()
            .map(|m| m.batch_p_success.len())
            .min()
            .unwrap_or(0);
        let truncated = |batch_means: &Vec<f64>| batch_means[..min_batches].to_vec();
        let responses_p: Vec<Vec<f64>> = doe
            .measurements
            .iter()
            .map(|m| truncated(&m.batch_p_success))
            .collect();
        let responses_c: Vec<Vec<f64>> = doe
            .measurements
            .iter()
            .map(|m| truncated(&m.batch_compromised))
            .collect();
        let anova_p_success = factorial_two_level(&doe.design.rows, &responses_p, &effects)?;
        let anova_compromised = factorial_two_level(&doe.design.rows, &responses_c, &effects)?;
        let mut ranking: Vec<(ComponentClass, f64)> = ComponentClass::ALL
            .iter()
            .map(|c| {
                let var = anova_p_success
                    .effect(c.label())
                    .map_or(0.0, |r| r.variance_explained);
                (*c, var)
            })
            .collect();
        ranking.sort_by(|a, b| b.1.total_cmp(&a.1));
        Ok(Assessment {
            anova_p_success,
            anova_compromised,
            ranking,
        })
    }

    /// Cross-checks the staged attack model against the exact CTMC
    /// backend: the monoculture stage chain is compiled to an
    /// all-exponential SAN and the attack-success probability and mean
    /// TTA over the campaign window are computed both analytically
    /// (uniformization, exact) and by Monte-Carlo replication.
    ///
    /// # Panics
    ///
    /// Never panics for catalog-derived parameters: the stage chain has
    /// five tangible states, far under every cap.
    // The `expect`s below all guard static invariants of the built-in
    // stage chain (valid catalog parameters, five tangible states under
    // every solver cap, the "tta" reward always registered) — no user
    // configuration reaches them.
    #[allow(clippy::disallowed_methods)]
    #[must_use]
    pub fn analytic_cross_check(&self) -> AnalyticCrossCheck {
        let cat = &self.config.threat.catalog;
        let base = diversify_scada::components::ComponentProfile::default();
        let rate = 1.0; // one attempt per hour, the campaign tick rate
        let probs = [
            cat.infection_probability(&base),
            cat.escalation_probability(&base),
            cat.firewall_pass_probability(&base),
            cat.plc_payload_probability(&base).max(1e-9),
        ];
        let params: Vec<StageParams> = probs
            .iter()
            .map(|&p| StageParams {
                success_probability: p,
                attempt_rate_per_hour: rate,
            })
            .collect();
        let model = compile_stage_chain(&params).expect("catalog stage chain is valid");
        let success = success_place(&model);
        let window_hours = f64::from(self.config.campaign.max_ticks);
        let reward = || {
            [RewardSpec::first_passage("tta", move |m| {
                m.tokens(success) == 1
            })]
        };
        let analytic = san_solve(
            &model,
            &reward(),
            Method::Analytic {
                horizon: SimTime::from_secs(window_hours),
                tol: 1e-10,
                max_states: 64,
            },
        )
        .expect("stage chain is analytic-solvable");
        let a = analytic.estimate("tta").expect("reward present");
        let replications = 400;
        let simulated = TransientSolver::new(
            SimTime::from_secs(window_hours),
            replications,
            self.config.seed ^ 0xA11C,
        )
        .solve(&model, &reward());
        let s = simulated.estimate("tta").expect("reward present");
        AnalyticCrossCheck {
            window_hours,
            p_window_analytic: a.probability(0),
            p_window_simulated: s.probability(replications),
            mean_tta_analytic: (a.stats.count() > 0).then(|| a.stats.mean()),
            mean_tta_simulated: (s.occurrences > 0).then(|| s.stats.mean()),
            mean_tta_closed_form: probs.iter().map(|p| 1.0 / (p * rate)).sum(),
        }
    }

    /// Runs all three steps (plus the analytic cross-check when
    /// configured).
    ///
    /// # Panics
    ///
    /// Panics where [`Pipeline::doe_measurements`] or
    /// [`Pipeline::assess`] would — see [`Pipeline::try_run`] for the
    /// non-panicking form.
    #[must_use]
    pub fn run(&self) -> PipelineReport {
        match self.try_run() {
            Ok(report) => report,
            Err(err) => panic!("{err}"),
        }
    }

    /// The fallible form of [`Pipeline::run`]: configuration problems
    /// (a precision cap below the ANOVA floor, a resilience budget that
    /// empties a design point, a measurement set the ANOVA rejects)
    /// come back as [`PipelineError`] values instead of panics.
    ///
    /// # Errors
    ///
    /// Any error of [`Pipeline::try_doe_measurements`] or
    /// [`Pipeline::try_assess`].
    pub fn try_run(&self) -> Result<PipelineReport, PipelineError> {
        let model = self.attack_modeling();
        let doe = self.try_doe_measurements()?;
        let assessment = self.try_assess(&doe)?;
        let analytic = self
            .config
            .analytic_check
            .then(|| self.analytic_cross_check());
        Ok(PipelineReport {
            model,
            doe,
            assessment,
            analytic,
        })
    }
}

/// The content a design cell is addressed by: everything that
/// determines its measured distribution — decoded plant configuration,
/// threat, and campaign parameters. Seeds deliberately stay out of the
/// key (two rows measuring the same population are duplicates no matter
/// which stream each would have drawn).
fn cell_content(
    scope: &ScopeConfig,
    threat: &ThreatModel,
    campaign: &CampaignConfig,
) -> serde::Value {
    use serde::Serialize as _;
    serde::Value::Array(vec![
        scope.to_json_value(),
        threat.to_json_value(),
        campaign.to_json_value(),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> PipelineConfig {
        PipelineConfig {
            batches: 2,
            batch_size: 4,
            campaign: CampaignConfig {
                max_ticks: 24 * 10,
                detection_stops_attack: false,
            },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn full_pipeline_runs_end_to_end() {
        let report = Pipeline::new(tiny_config()).run();
        assert_eq!(report.doe.design.runs(), 16);
        assert_eq!(report.doe.measurements.len(), 16);
        assert_eq!(report.assessment.ranking.len(), 6);
        // Variance fractions sum to ≤ 1 (rest is error + interactions).
        let total: f64 = report.assessment.ranking.iter().map(|(_, v)| v).sum();
        assert!((0.0..=1.0 + 1e-9).contains(&total));
        let text = report.to_string();
        assert!(text.contains("Step 1"));
        assert!(text.contains("Step 2"));
        assert!(text.contains("Step 3"));
    }

    #[test]
    fn duplicate_design_points_reuse_the_first_cell() {
        // A degenerate design: rows 0 and 2 decode to the same profile.
        let labels: Vec<&str> = ComponentClass::ALL.iter().map(|c| c.label()).collect();
        let dup_row = vec![1i8, -1, 1, -1, 1, -1];
        let design = DesignMatrix {
            factors: labels.iter().map(|l| l.to_string()).collect(),
            rows: vec![dup_row.clone(), vec![-1, 1, -1, 1, -1, 1], dup_row.clone()],
        };
        let pipeline = Pipeline::new(tiny_config());
        let doe = pipeline
            .try_doe_measurements_with(design)
            .expect("sweep succeeds");
        assert_eq!(doe.measurements.len(), 3);
        // The duplicate cell is the first occurrence, bit for bit —
        // without dedup it would draw its own derived stream (row index
        // 2) and differ. The distinct middle row must keep differing.
        let json =
            |m: &Measurements| serde_json::to_string(&m.summary).expect("summary serializes");
        assert_eq!(json(&doe.measurements[0]), json(&doe.measurements[2]));
        assert_eq!(
            doe.measurements[0].batch_p_success,
            doe.measurements[2].batch_p_success
        );
        assert_ne!(json(&doe.measurements[0]), json(&doe.measurements[1]));
        // The built-in fractional factorial has 16 distinct cells, so
        // dedup must leave the standard sweep untouched.
        let full = pipeline.try_doe_measurements().expect("standard sweep");
        assert_eq!(full.measurements.len(), 16);
    }

    #[test]
    fn attack_modeling_tree_probability_in_bounds() {
        let model = Pipeline::new(tiny_config()).attack_modeling();
        let p = model.tree.success_probability();
        assert!((0.0..=1.0).contains(&p));
        assert!(p > 0.0, "monoculture baseline must be attackable");
    }

    #[test]
    fn serial_and_parallel_sweeps_are_bit_identical() {
        let serial = Pipeline::new(PipelineConfig {
            executor: Executor::serial(),
            ..tiny_config()
        })
        .doe_measurements();
        let parallel = Pipeline::new(PipelineConfig {
            executor: Executor::parallel(),
            ..tiny_config()
        })
        .doe_measurements();
        for (a, b) in serial.measurements.iter().zip(&parallel.measurements) {
            assert_eq!(a.batch_p_success, b.batch_p_success);
            assert_eq!(a.batch_compromised, b.batch_compromised);
            assert_eq!(a.summary.p_success, b.summary.p_success);
        }
    }

    #[test]
    fn analytic_cross_check_is_opt_in_and_agrees() {
        let off = Pipeline::new(tiny_config()).run();
        assert!(off.analytic.is_none());
        let pipeline = Pipeline::new(PipelineConfig {
            analytic_check: true,
            ..tiny_config()
        });
        let report = pipeline.run();
        let x = report.analytic.expect("cross-check requested");
        assert!((0.0..=1.0).contains(&x.p_window_analytic));
        // 400 Monte-Carlo replications: a generous 99%+ band around the
        // exact value.
        let half_width =
            3.0 * (x.p_window_analytic * (1.0 - x.p_window_analytic) / 400.0).sqrt() + 0.01;
        assert!(
            (x.p_window_simulated - x.p_window_analytic).abs() < half_width,
            "simulated {} vs analytic {}",
            x.p_window_simulated,
            x.p_window_analytic
        );
        assert!(x.mean_tta_closed_form > 0.0);
        let text = report.to_string();
        assert!(text.contains("analytic cross-check"));
    }

    #[test]
    fn precision_targeted_sweep_reports_adaptive_points() {
        let fixed = Pipeline::new(tiny_config()).doe_measurements();
        assert!(fixed.adaptive.is_none());
        let pipeline = Pipeline::new(PipelineConfig {
            precision: Some(PrecisionTarget::p_success(0.25, 8, 40)),
            ..tiny_config()
        });
        let report = pipeline.run();
        let points = report.doe.adaptive.as_ref().expect("adaptive sweep");
        assert_eq!(points.len(), report.doe.measurements.len());
        for (p, m) in points.iter().zip(&report.doe.measurements) {
            assert_eq!(p.replications, m.summary.replications);
            assert_eq!(p.batches as usize, m.batch_p_success.len());
            // Bounds hold (min raised to 2 batches of 4): 8..=40.
            assert!((8..=40).contains(&p.replications));
        }
        // The assessment still runs on the (truncated) balanced batches.
        assert_eq!(report.assessment.ranking.len(), 6);
        let text = report.to_string();
        assert!(text.contains("adaptive replication"));
        assert!(text.contains("halfwidth"));
    }

    #[test]
    fn rare_event_sweep_reports_splitting_points_without_perturbing_measurements() {
        let plain = Pipeline::new(tiny_config()).doe_measurements();
        assert!(plain.rare_event.is_none());
        let report = Pipeline::new(PipelineConfig {
            rare_event: Some(RareEventTarget {
                population: 64,
                level: 0.95,
            }),
            ..tiny_config()
        })
        .run();
        let rare = report.doe.rare_event.as_ref().expect("rare-event sweep");
        assert_eq!(rare.len(), report.doe.measurements.len());
        for p in rare {
            assert!((0.0..=1.0).contains(&p.estimate));
            assert!(p.ci.lower <= p.estimate && p.estimate <= p.ci.upper);
            assert_eq!(p.population, 64);
            assert!(!p.levels.is_empty());
        }
        // The splitting sweep must not perturb the plain measurements.
        for (a, b) in plain.measurements.iter().zip(&report.doe.measurements) {
            assert_eq!(a.batch_p_success, b.batch_p_success);
            assert_eq!(a.summary.p_success.to_bits(), b.summary.p_success.to_bits());
        }
        let text = report.to_string();
        assert!(text.contains("rare-event splitting"));
    }

    #[test]
    fn rare_event_sweep_rejects_bad_target_with_typed_error() {
        let err = Pipeline::new(PipelineConfig {
            rare_event: Some(RareEventTarget {
                population: 0,
                level: 0.95,
            }),
            ..tiny_config()
        })
        .try_doe_measurements()
        .expect_err("zero population");
        assert!(matches!(err, PipelineError::Plan(_)));
    }

    #[test]
    #[should_panic(expected = "caps replications")]
    fn precision_cap_below_two_batches_is_rejected() {
        // batch_size 4 needs a cap of >= 8; a cap of 5 must be refused
        // rather than silently exceeded.
        let _ = Pipeline::new(PipelineConfig {
            precision: Some(PrecisionTarget::p_success(0.25, 1, 5)),
            ..tiny_config()
        })
        .doe_measurements();
    }

    #[test]
    fn resilient_sweep_is_bit_identical_to_strict_and_reports_health() {
        use crate::exec::RunPolicy;
        let strict = Pipeline::new(tiny_config()).doe_measurements();
        let pipeline = Pipeline::new(PipelineConfig {
            resilience: Some(RunPolicy::new()),
            ..tiny_config()
        });
        let report = pipeline.run();
        let resilient = &report.doe;
        assert!(!resilient.is_degraded());
        let health = resilient.health.as_ref().expect("resilient sweep");
        assert_eq!(health.len(), resilient.measurements.len());
        for cell in health {
            assert!(!cell.is_degraded());
            assert_eq!(cell.budget_outcome, BudgetOutcome::Completed);
            assert_eq!(cell.attempted, 8);
            assert_eq!(cell.completed, 8);
        }
        // An unconstrained fault-free resilient sweep folds the same
        // replications in the same order as the strict sweep.
        for (a, b) in strict.measurements.iter().zip(&resilient.measurements) {
            assert_eq!(a.batch_p_success, b.batch_p_success);
            assert_eq!(a.summary.p_success, b.summary.p_success);
        }
        let text = report.to_string();
        assert!(text.contains("cell health"));
        assert!(text.contains("0 of 16 degraded"));
    }

    #[test]
    fn per_cell_budget_truncates_to_a_shorter_plan_bit_identically() {
        use crate::exec::{Budget, RunPolicy};
        // Cap each cell at one batch (4 of the planned 8 replications).
        let capped = Pipeline::new(PipelineConfig {
            resilience: Some(
                RunPolicy::new().with_budget(Budget::unlimited().with_max_replications(4)),
            ),
            ..tiny_config()
        })
        .try_doe_measurements()
        .expect("one batch per cell survives");
        let one_batch = Pipeline::new(PipelineConfig {
            batches: 1,
            ..tiny_config()
        })
        .doe_measurements();
        let health = capped.health.as_ref().expect("resilient sweep");
        assert!(capped.is_degraded());
        for cell in health {
            assert_eq!(cell.budget_outcome, BudgetOutcome::ReplicationBudget);
            assert_eq!(cell.completed, 4);
            assert!(cell.failures.is_empty());
        }
        // Graceful degradation is deterministic: the truncated cell IS
        // the one-batch plan's measurement, bit for bit.
        for (a, b) in capped.measurements.iter().zip(&one_batch.measurements) {
            assert_eq!(a.batch_p_success, b.batch_p_success);
            assert_eq!(a.batch_compromised, b.batch_compromised);
            assert_eq!(a.summary.p_success, b.summary.p_success);
        }
    }

    #[test]
    fn budget_that_empties_a_cell_is_a_typed_error() {
        use crate::exec::{Budget, RunPolicy};
        // A 2-replication cap cannot finish one 4-replication batch.
        let err = Pipeline::new(PipelineConfig {
            resilience: Some(
                RunPolicy::new().with_budget(Budget::unlimited().with_max_replications(2)),
            ),
            ..tiny_config()
        })
        .try_doe_measurements()
        .expect_err("empty cells must be rejected");
        match err {
            PipelineError::EmptyDesignPoint { run, outcome } => {
                assert_eq!(run, 0);
                assert_eq!(outcome, BudgetOutcome::ReplicationBudget);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn resilient_adaptive_sweep_reports_points_and_health() {
        use crate::exec::RunPolicy;
        let plain = Pipeline::new(PipelineConfig {
            precision: Some(PrecisionTarget::p_success(0.25, 8, 40)),
            ..tiny_config()
        })
        .doe_measurements();
        let resilient = Pipeline::new(PipelineConfig {
            precision: Some(PrecisionTarget::p_success(0.25, 8, 40)),
            resilience: Some(RunPolicy::new()),
            ..tiny_config()
        })
        .doe_measurements();
        let points = resilient.adaptive.as_ref().expect("adaptive sweep");
        let health = resilient.health.as_ref().expect("resilient sweep");
        assert_eq!(points.len(), 16);
        assert_eq!(health.len(), 16);
        assert!(!resilient.is_degraded());
        // The hardened adaptive path spends replications identically.
        let plain_points = plain.adaptive.as_ref().expect("adaptive sweep");
        for (a, b) in plain_points.iter().zip(points) {
            assert_eq!(a.replications, b.replications);
            assert_eq!(a.batches, b.batches);
            assert_eq!(a.target_met, b.target_met);
        }
        for (a, b) in plain.measurements.iter().zip(&resilient.measurements) {
            assert_eq!(a.batch_p_success, b.batch_p_success);
            assert_eq!(a.summary.p_success, b.summary.p_success);
        }
    }

    #[test]
    fn try_run_reports_tight_precision_cap_as_typed_error() {
        let err = Pipeline::new(PipelineConfig {
            precision: Some(PrecisionTarget::p_success(0.25, 1, 5)),
            ..tiny_config()
        })
        .try_run()
        .expect_err("cap below two batches");
        assert!(matches!(
            err,
            PipelineError::PrecisionCapTooTight { cap: 5, floor: 8 }
        ));
        assert!(err.to_string().contains("caps replications"));
    }

    #[test]
    fn assessment_is_deterministic() {
        let p = Pipeline::new(tiny_config());
        let a = p.doe_measurements();
        let b = p.doe_measurements();
        let ra = p.assess(&a);
        let rb = p.assess(&b);
        assert_eq!(ra.anova_p_success.rows.len(), rb.anova_p_success.rows.len());
        for (x, y) in ra.ranking.iter().zip(&rb.ranking) {
            assert_eq!(x.0, y.0);
            assert!((x.1 - y.1).abs() < 1e-12);
        }
    }
}
