//! The three-step pipeline — the paper's Figure 1 as an executable API.

use crate::exec::{campaign_plan, Executor};
use crate::factors::{factor_profile, FactorLevel};
use crate::report::render_measurement_table;
use crate::runner::{measure_configuration_with, Measurements};
use diversify_attack::campaign::{CampaignConfig, ThreatModel};
use diversify_attack::tree::{stuxnet_tree, AttackTree};
use diversify_des::StreamId;
use diversify_doe::design::{fractional_factorial, DesignMatrix};
use diversify_scada::components::ComponentClass;
use diversify_scada::scope::{ScopeConfig, ScopeSystem};
use diversify_stats::anova::{factorial_two_level, EffectSpec, FactorialAnova};
use std::fmt;

/// Configuration of a full pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The modeled plant.
    pub scope: ScopeConfig,
    /// The threat model.
    pub threat: ThreatModel,
    /// Campaign parameters.
    pub campaign: CampaignConfig,
    /// Replicate batches per design run (ANOVA replicates).
    pub batches: u32,
    /// Campaigns per batch.
    pub batch_size: u32,
    /// Master seed.
    pub seed: u64,
    /// How measurement replications are scheduled. Serial and parallel
    /// executors produce bit-identical reports.
    pub executor: Executor,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            scope: ScopeConfig::default(),
            threat: ThreatModel::stuxnet_like(),
            campaign: CampaignConfig {
                max_ticks: 24 * 30, // one month of attacker persistence
                detection_stops_attack: false,
            },
            batches: 4,
            batch_size: 25,
            seed: 0xD1CE,
            executor: Executor::default(),
        }
    }
}

/// Output of step 1 (Attack Modeling).
#[derive(Debug)]
pub struct AttackModel {
    /// The threat model to be simulated.
    pub threat: ThreatModel,
    /// The equivalent attack tree over the monoculture baseline (for the
    /// formalism cross-check).
    pub tree: AttackTree,
}

/// Output of step 2 (DoE & Measurements).
#[derive(Debug)]
pub struct DoeMeasurements {
    /// The 2^(6−2) fractional factorial design over the six component
    /// classes.
    pub design: DesignMatrix,
    /// Per-run measurements, in design order.
    pub measurements: Vec<Measurements>,
}

/// Output of step 3 (Diversity Assessment).
#[derive(Debug)]
pub struct Assessment {
    /// ANOVA of the attack-success probability response.
    pub anova_p_success: FactorialAnova,
    /// ANOVA of the compromised-ratio response.
    pub anova_compromised: FactorialAnova,
    /// Component classes ranked by variance explained on P_SA,
    /// descending — "the components valuable to diversify".
    pub ranking: Vec<(ComponentClass, f64)>,
}

/// The complete pipeline result.
#[derive(Debug)]
pub struct PipelineReport {
    /// Step 1 artifact.
    pub model: AttackModel,
    /// Step 2 artifact.
    pub doe: DoeMeasurements,
    /// Step 3 artifact.
    pub assessment: Assessment,
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Step 1: Attack Modeling ==")?;
        writeln!(f, "threat: {}", self.model.threat.name)?;
        writeln!(
            f,
            "attack-tree P_SA (monoculture, per-attempt): {:.4}",
            self.model.tree.success_probability()
        )?;
        writeln!(f)?;
        writeln!(f, "== Step 2: DoE & Measurements ==")?;
        write!(
            f,
            "{}",
            render_measurement_table(&self.doe.design, &self.doe.measurements)
        )?;
        writeln!(f)?;
        writeln!(f, "== Step 3: Diversity Assessment (ANOVA on P_SA) ==")?;
        write!(f, "{}", self.assessment.anova_p_success)?;
        writeln!(f)?;
        writeln!(f, "components ranked by variance explained:")?;
        for (class, var) in &self.assessment.ranking {
            writeln!(f, "  {:<10} {:>6.2}%", class.label(), var * 100.0)?;
        }
        Ok(())
    }
}

/// The three-step pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline.
    #[must_use]
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Step 1 — Attack Modeling: instantiate the staged threat model and
    /// derive the equivalent attack tree for the monoculture baseline.
    #[must_use]
    pub fn attack_modeling(&self) -> AttackModel {
        let cat = &self.config.threat.catalog;
        let base = diversify_scada::components::ComponentProfile::default();
        let tree = stuxnet_tree(
            cat.infection_probability(&base),
            cat.infection_probability(&base) * 0.5, // phishing half as reliable
            cat.escalation_probability(&base),
            cat.firewall_pass_probability(&base),
            cat.firewall_pass_probability(&base) * 0.8,
            cat.plc_payload_probability(&base).max(1e-9),
        );
        AttackModel {
            threat: self.config.threat.clone(),
            tree,
        }
    }

    /// Step 2 — DoE & Measurements: build the 2^(6−2) resolution-IV
    /// design over the six component classes and measure every run.
    ///
    /// # Panics
    ///
    /// Never panics for the built-in design (it is statically valid).
    #[must_use]
    pub fn doe_measurements(&self) -> DoeMeasurements {
        let labels: Vec<&str> = ComponentClass::ALL.iter().map(|c| c.label()).collect();
        let (design, _words) = fractional_factorial(&labels, &[vec![0, 1, 2], vec![1, 2, 3]])
            .expect("built-in 2^(6-2) design is valid");
        // One base plan; every design point gets its own decorrelated
        // sub-plan derived from its run index. Replications inside a run
        // are scheduled by the configured executor.
        let base_plan = campaign_plan(
            self.config.batches,
            self.config.batch_size,
            self.config.seed,
        );
        let mut measurements = Vec::with_capacity(design.runs());
        for (run_idx, row) in design.rows.iter().enumerate() {
            let levels: Vec<FactorLevel> =
                row.iter().map(|&l| FactorLevel::from_coded(l)).collect();
            let profile = factor_profile(&levels);
            let mut scope_cfg = self.config.scope.clone();
            scope_cfg.baseline_profile = profile;
            let system = ScopeSystem::build(&scope_cfg);
            let m = measure_configuration_with(
                system.network(),
                &self.config.threat,
                self.config.campaign,
                &base_plan.derived(StreamId(run_idx as u64)),
                self.config.executor,
            );
            measurements.push(m);
        }
        DoeMeasurements {
            design,
            measurements,
        }
    }

    /// Step 3 — Diversity Assessment: ANOVA the measurements, allocating
    /// indicator variance to component classes.
    ///
    /// # Panics
    ///
    /// Panics only if `doe` was not produced by
    /// [`Pipeline::doe_measurements`] (mismatched shapes).
    #[must_use]
    pub fn assess(&self, doe: &DoeMeasurements) -> Assessment {
        let effects: Vec<EffectSpec> = ComponentClass::ALL
            .iter()
            .enumerate()
            .map(|(i, c)| EffectSpec::main(c.label(), i))
            .collect();
        let responses_p: Vec<Vec<f64>> = doe
            .measurements
            .iter()
            .map(|m| m.batch_p_success.clone())
            .collect();
        let responses_c: Vec<Vec<f64>> = doe
            .measurements
            .iter()
            .map(|m| m.batch_compromised.clone())
            .collect();
        let anova_p_success = factorial_two_level(&doe.design.rows, &responses_p, &effects)
            .expect("design produced by doe_measurements is regular");
        let anova_compromised = factorial_two_level(&doe.design.rows, &responses_c, &effects)
            .expect("design produced by doe_measurements is regular");
        let mut ranking: Vec<(ComponentClass, f64)> = ComponentClass::ALL
            .iter()
            .map(|c| {
                let var = anova_p_success
                    .effect(c.label())
                    .map_or(0.0, |r| r.variance_explained);
                (*c, var)
            })
            .collect();
        ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite variances"));
        Assessment {
            anova_p_success,
            anova_compromised,
            ranking,
        }
    }

    /// Runs all three steps.
    #[must_use]
    pub fn run(&self) -> PipelineReport {
        let model = self.attack_modeling();
        let doe = self.doe_measurements();
        let assessment = self.assess(&doe);
        PipelineReport {
            model,
            doe,
            assessment,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> PipelineConfig {
        PipelineConfig {
            batches: 2,
            batch_size: 4,
            campaign: CampaignConfig {
                max_ticks: 24 * 10,
                detection_stops_attack: false,
            },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn full_pipeline_runs_end_to_end() {
        let report = Pipeline::new(tiny_config()).run();
        assert_eq!(report.doe.design.runs(), 16);
        assert_eq!(report.doe.measurements.len(), 16);
        assert_eq!(report.assessment.ranking.len(), 6);
        // Variance fractions sum to ≤ 1 (rest is error + interactions).
        let total: f64 = report.assessment.ranking.iter().map(|(_, v)| v).sum();
        assert!((0.0..=1.0 + 1e-9).contains(&total));
        let text = report.to_string();
        assert!(text.contains("Step 1"));
        assert!(text.contains("Step 2"));
        assert!(text.contains("Step 3"));
    }

    #[test]
    fn attack_modeling_tree_probability_in_bounds() {
        let model = Pipeline::new(tiny_config()).attack_modeling();
        let p = model.tree.success_probability();
        assert!((0.0..=1.0).contains(&p));
        assert!(p > 0.0, "monoculture baseline must be attackable");
    }

    #[test]
    fn serial_and_parallel_sweeps_are_bit_identical() {
        let serial = Pipeline::new(PipelineConfig {
            executor: Executor::serial(),
            ..tiny_config()
        })
        .doe_measurements();
        let parallel = Pipeline::new(PipelineConfig {
            executor: Executor::parallel(),
            ..tiny_config()
        })
        .doe_measurements();
        for (a, b) in serial.measurements.iter().zip(&parallel.measurements) {
            assert_eq!(a.batch_p_success, b.batch_p_success);
            assert_eq!(a.batch_compromised, b.batch_compromised);
            assert_eq!(a.summary.p_success, b.summary.p_success);
        }
    }

    #[test]
    fn assessment_is_deterministic() {
        let p = Pipeline::new(tiny_config());
        let a = p.doe_measurements();
        let b = p.doe_measurements();
        let ra = p.assess(&a);
        let rb = p.assess(&b);
        assert_eq!(ra.anova_p_success.rows.len(), rb.anova_p_success.rows.len());
        for (x, y) in ra.ranking.iter().zip(&rb.ranking) {
            assert_eq!(x.0, y.0);
            assert!((x.1 - y.1).abs() < 1e-12);
        }
    }
}
