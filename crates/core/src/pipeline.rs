//! The three-step pipeline — the paper's Figure 1 as an executable API.

use crate::exec::{campaign_plan, Executor, Precision};
use crate::factors::{factor_profile, FactorLevel};
use crate::report::{render_adaptive_table, render_measurement_table};
use crate::runner::{
    measure_configuration_adaptive, measure_configuration_with, Measurements, PrecisionTarget,
};
use diversify_attack::campaign::{CampaignConfig, ThreatModel};
use diversify_attack::to_san::{compile_stage_chain, success_place, StageParams};
use diversify_attack::tree::{stuxnet_tree, AttackTree};
use diversify_des::{SimTime, StreamId};
use diversify_doe::design::{fractional_factorial, DesignMatrix};
use diversify_san::{solve as san_solve, Method, RewardSpec, TransientSolver};
use diversify_scada::components::ComponentClass;
use diversify_scada::scope::{ScopeConfig, ScopeSystem};
use diversify_stats::anova::{factorial_two_level, EffectSpec, FactorialAnova};
use std::fmt;

/// Configuration of a full pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The modeled plant.
    pub scope: ScopeConfig,
    /// The threat model.
    pub threat: ThreatModel,
    /// Campaign parameters.
    pub campaign: CampaignConfig,
    /// Replicate batches per design run (ANOVA replicates).
    pub batches: u32,
    /// Campaigns per batch.
    pub batch_size: u32,
    /// Master seed.
    pub seed: u64,
    /// How measurement replications are scheduled. Serial and parallel
    /// executors produce bit-identical reports.
    pub executor: Executor,
    /// Opt-in: cross-check the staged attack model against the exact
    /// CTMC backend (the stage chain solved analytically vs by
    /// Monte-Carlo) and include the comparison in the report.
    pub analytic_check: bool,
    /// Opt-in: spend replications per design point according to its
    /// variance. When set, every design run executes batch-sized rounds
    /// until the target's confidence-interval half-width is reached
    /// (within its replication bounds) instead of the fixed
    /// `batches × batch_size` budget, and the report gains per-run
    /// replication counts and achieved half-widths. `min_replications`
    /// is raised to at least two batches so ANOVA keeps an error term;
    /// `max_replications` is honored as a hard cap and must therefore
    /// allow two batches ([`Pipeline::doe_measurements`] panics on a
    /// tighter cap rather than silently exceeding it).
    pub precision: Option<PrecisionTarget>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            scope: ScopeConfig::default(),
            threat: ThreatModel::stuxnet_like(),
            campaign: CampaignConfig {
                max_ticks: 24 * 30, // one month of attacker persistence
                detection_stops_attack: false,
            },
            batches: 4,
            batch_size: 25,
            seed: 0xD1CE,
            executor: Executor::default(),
            analytic_check: false,
            precision: None,
        }
    }
}

/// Opt-in artifact of step 1: the staged threat compiled to an
/// all-exponential stage-chain SAN and solved twice — exactly (CTMC
/// uniformization) and by Monte-Carlo — over the campaign window. The
/// two backends share nothing but the model, so agreement here certifies
/// the simulation machinery against an independent oracle.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticCrossCheck {
    /// Campaign window used for both backends, hours.
    pub window_hours: f64,
    /// P(attack succeeds within the window), exact.
    pub p_window_analytic: f64,
    /// P(attack succeeds within the window), Monte-Carlo estimate.
    pub p_window_simulated: f64,
    /// Mean TTA conditional on success within the window, exact (hours).
    pub mean_tta_analytic: Option<f64>,
    /// Mean TTA conditional on success within the window, Monte-Carlo
    /// (hours).
    pub mean_tta_simulated: Option<f64>,
    /// Unconditional closed-form mean TTA (`Σ 1/(pᵢ·rate)`, hours) for
    /// reference.
    pub mean_tta_closed_form: f64,
}

/// Output of step 1 (Attack Modeling).
#[derive(Debug)]
pub struct AttackModel {
    /// The threat model to be simulated.
    pub threat: ThreatModel,
    /// The equivalent attack tree over the monoculture baseline (for the
    /// formalism cross-check).
    pub tree: AttackTree,
}

/// How one design run of an adaptive sweep spent its replications.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveSweepPoint {
    /// Replications executed for this design run.
    pub replications: u32,
    /// Replicate batches executed (the ANOVA replicate units).
    pub batches: u32,
    /// Whether the precision target was met (vs hitting the cap).
    pub target_met: bool,
    /// Monitored response's final estimate and CI half-width, if the
    /// monitor could compute one.
    pub precision: Option<Precision>,
}

/// Output of step 2 (DoE & Measurements).
#[derive(Debug)]
pub struct DoeMeasurements {
    /// The 2^(6−2) fractional factorial design over the six component
    /// classes.
    pub design: DesignMatrix,
    /// Per-run measurements, in design order.
    pub measurements: Vec<Measurements>,
    /// Per-run adaptive-replication report, in design order — present
    /// exactly when [`PipelineConfig::precision`] was set.
    pub adaptive: Option<Vec<AdaptiveSweepPoint>>,
}

/// Output of step 3 (Diversity Assessment).
#[derive(Debug)]
pub struct Assessment {
    /// ANOVA of the attack-success probability response.
    pub anova_p_success: FactorialAnova,
    /// ANOVA of the compromised-ratio response.
    pub anova_compromised: FactorialAnova,
    /// Component classes ranked by variance explained on P_SA,
    /// descending — "the components valuable to diversify".
    pub ranking: Vec<(ComponentClass, f64)>,
}

/// The complete pipeline result.
#[derive(Debug)]
pub struct PipelineReport {
    /// Step 1 artifact.
    pub model: AttackModel,
    /// Step 2 artifact.
    pub doe: DoeMeasurements,
    /// Step 3 artifact.
    pub assessment: Assessment,
    /// Analytic-vs-simulation cross-check, when
    /// [`PipelineConfig::analytic_check`] is set.
    pub analytic: Option<AnalyticCrossCheck>,
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Step 1: Attack Modeling ==")?;
        writeln!(f, "threat: {}", self.model.threat.name)?;
        writeln!(
            f,
            "attack-tree P_SA (monoculture, per-attempt): {:.4}",
            self.model.tree.success_probability()
        )?;
        if let Some(x) = &self.analytic {
            writeln!(
                f,
                "analytic cross-check ({}h window): P_SA analytic {:.4} vs simulated {:.4}",
                x.window_hours, x.p_window_analytic, x.p_window_simulated
            )?;
            let fmt_opt = |v: Option<f64>| v.map_or("-".to_string(), |m: f64| format!("{m:.1}"));
            writeln!(
                f,
                "analytic cross-check: mean TTA analytic {}h vs simulated {}h \
                 (closed form, unbounded: {:.1}h)",
                fmt_opt(x.mean_tta_analytic),
                fmt_opt(x.mean_tta_simulated),
                x.mean_tta_closed_form
            )?;
        }
        writeln!(f)?;
        writeln!(f, "== Step 2: DoE & Measurements ==")?;
        write!(
            f,
            "{}",
            render_measurement_table(&self.doe.design, &self.doe.measurements)
        )?;
        if let Some(adaptive) = &self.doe.adaptive {
            writeln!(f)?;
            write!(f, "{}", render_adaptive_table(adaptive))?;
        }
        writeln!(f)?;
        writeln!(f, "== Step 3: Diversity Assessment (ANOVA on P_SA) ==")?;
        write!(f, "{}", self.assessment.anova_p_success)?;
        writeln!(f)?;
        writeln!(f, "components ranked by variance explained:")?;
        for (class, var) in &self.assessment.ranking {
            writeln!(f, "  {:<10} {:>6.2}%", class.label(), var * 100.0)?;
        }
        Ok(())
    }
}

/// The three-step pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline.
    #[must_use]
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Step 1 — Attack Modeling: instantiate the staged threat model and
    /// derive the equivalent attack tree for the monoculture baseline.
    #[must_use]
    pub fn attack_modeling(&self) -> AttackModel {
        let cat = &self.config.threat.catalog;
        let base = diversify_scada::components::ComponentProfile::default();
        let tree = stuxnet_tree(
            cat.infection_probability(&base),
            cat.infection_probability(&base) * 0.5, // phishing half as reliable
            cat.escalation_probability(&base),
            cat.firewall_pass_probability(&base),
            cat.firewall_pass_probability(&base) * 0.8,
            cat.plc_payload_probability(&base).max(1e-9),
        );
        AttackModel {
            threat: self.config.threat.clone(),
            tree,
        }
    }

    /// Step 2 — DoE & Measurements: build the 2^(6−2) resolution-IV
    /// design over the six component classes and measure every run —
    /// with the fixed `batches × batch_size` budget, or adaptively per
    /// design point when [`PipelineConfig::precision`] is set.
    ///
    /// # Panics
    ///
    /// Panics if a configured precision target caps replications below
    /// two batches (`rule.max_replications < 2 × batch_size`) — the
    /// sweep must never exceed the caller's hard cap, and ANOVA needs at
    /// least two replicate batches per run for an error term. Never
    /// panics otherwise (the built-in design is statically valid).
    #[must_use]
    pub fn doe_measurements(&self) -> DoeMeasurements {
        let labels: Vec<&str> = ComponentClass::ALL.iter().map(|c| c.label()).collect();
        let (design, _words) = fractional_factorial(&labels, &[vec![0, 1, 2], vec![1, 2, 3]])
            .expect("built-in 2^(6-2) design is valid");
        // One base plan; every design point gets its own decorrelated
        // sub-plan derived from its run index. Replications inside a run
        // are scheduled by the configured executor.
        let base_plan = campaign_plan(
            self.config.batches,
            self.config.batch_size,
            self.config.seed,
        );
        // An adaptive sweep needs at least two replicate batches per run
        // so the ANOVA error term survives the worst case. The floor
        // raises `min` only — a cap below it is rejected, never
        // silently exceeded.
        let target = self.config.precision.map(|mut t| {
            let floor = 2 * self.config.batch_size;
            assert!(
                t.rule.max_replications >= floor,
                "precision target caps replications at {} but the ANOVA error term needs \
                 at least two batches of {} per design run",
                t.rule.max_replications,
                self.config.batch_size
            );
            t.rule.min_replications = t.rule.min_replications.max(floor);
            t
        });
        let mut measurements = Vec::with_capacity(design.runs());
        let mut adaptive = target.map(|_| Vec::with_capacity(design.runs()));
        for (run_idx, row) in design.rows.iter().enumerate() {
            let levels: Vec<FactorLevel> =
                row.iter().map(|&l| FactorLevel::from_coded(l)).collect();
            let profile = factor_profile(&levels);
            let mut scope_cfg = self.config.scope.clone();
            scope_cfg.baseline_profile = profile;
            let system = ScopeSystem::build(&scope_cfg);
            let run_plan = base_plan.derived(StreamId(run_idx as u64));
            match (&target, &mut adaptive) {
                (Some(target), Some(points)) => {
                    let run = measure_configuration_adaptive(
                        system.network(),
                        &self.config.threat,
                        self.config.campaign,
                        &run_plan,
                        self.config.executor,
                        target,
                    );
                    points.push(AdaptiveSweepPoint {
                        replications: run.replications,
                        batches: run.rounds,
                        target_met: run.target_met,
                        precision: run.precision,
                    });
                    measurements.push(run.output);
                }
                _ => measurements.push(measure_configuration_with(
                    system.network(),
                    &self.config.threat,
                    self.config.campaign,
                    &run_plan,
                    self.config.executor,
                )),
            }
        }
        DoeMeasurements {
            design,
            measurements,
            adaptive,
        }
    }

    /// Step 3 — Diversity Assessment: ANOVA the measurements, allocating
    /// indicator variance to component classes.
    ///
    /// # Panics
    ///
    /// Panics only if `doe` was not produced by
    /// [`Pipeline::doe_measurements`] (mismatched shapes).
    #[must_use]
    pub fn assess(&self, doe: &DoeMeasurements) -> Assessment {
        let effects: Vec<EffectSpec> = ComponentClass::ALL
            .iter()
            .enumerate()
            .map(|(i, c)| EffectSpec::main(c.label(), i))
            .collect();
        // Adaptive sweeps may give design points different batch counts;
        // the factorial ANOVA needs balanced replicates, so truncate
        // every run to the common minimum (each batch mean is an iid
        // replicate unit, so dropping the tail keeps estimates unbiased).
        let min_batches = doe
            .measurements
            .iter()
            .map(|m| m.batch_p_success.len())
            .min()
            .unwrap_or(0);
        let truncated = |batch_means: &Vec<f64>| batch_means[..min_batches].to_vec();
        let responses_p: Vec<Vec<f64>> = doe
            .measurements
            .iter()
            .map(|m| truncated(&m.batch_p_success))
            .collect();
        let responses_c: Vec<Vec<f64>> = doe
            .measurements
            .iter()
            .map(|m| truncated(&m.batch_compromised))
            .collect();
        let anova_p_success = factorial_two_level(&doe.design.rows, &responses_p, &effects)
            .expect("design produced by doe_measurements is regular");
        let anova_compromised = factorial_two_level(&doe.design.rows, &responses_c, &effects)
            .expect("design produced by doe_measurements is regular");
        let mut ranking: Vec<(ComponentClass, f64)> = ComponentClass::ALL
            .iter()
            .map(|c| {
                let var = anova_p_success
                    .effect(c.label())
                    .map_or(0.0, |r| r.variance_explained);
                (*c, var)
            })
            .collect();
        ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite variances"));
        Assessment {
            anova_p_success,
            anova_compromised,
            ranking,
        }
    }

    /// Cross-checks the staged attack model against the exact CTMC
    /// backend: the monoculture stage chain is compiled to an
    /// all-exponential SAN and the attack-success probability and mean
    /// TTA over the campaign window are computed both analytically
    /// (uniformization, exact) and by Monte-Carlo replication.
    ///
    /// # Panics
    ///
    /// Never panics for catalog-derived parameters: the stage chain has
    /// five tangible states, far under every cap.
    #[must_use]
    pub fn analytic_cross_check(&self) -> AnalyticCrossCheck {
        let cat = &self.config.threat.catalog;
        let base = diversify_scada::components::ComponentProfile::default();
        let rate = 1.0; // one attempt per hour, the campaign tick rate
        let probs = [
            cat.infection_probability(&base),
            cat.escalation_probability(&base),
            cat.firewall_pass_probability(&base),
            cat.plc_payload_probability(&base).max(1e-9),
        ];
        let params: Vec<StageParams> = probs
            .iter()
            .map(|&p| StageParams {
                success_probability: p,
                attempt_rate_per_hour: rate,
            })
            .collect();
        let model = compile_stage_chain(&params).expect("catalog stage chain is valid");
        let success = success_place(&model);
        let window_hours = f64::from(self.config.campaign.max_ticks);
        let reward = || {
            [RewardSpec::first_passage("tta", move |m| {
                m.tokens(success) == 1
            })]
        };
        let analytic = san_solve(
            &model,
            &reward(),
            Method::Analytic {
                horizon: SimTime::from_secs(window_hours),
                tol: 1e-10,
                max_states: 64,
            },
        )
        .expect("stage chain is analytic-solvable");
        let a = analytic.estimate("tta").expect("reward present");
        let replications = 400;
        let simulated = TransientSolver::new(
            SimTime::from_secs(window_hours),
            replications,
            self.config.seed ^ 0xA11C,
        )
        .solve(&model, &reward());
        let s = simulated.estimate("tta").expect("reward present");
        AnalyticCrossCheck {
            window_hours,
            p_window_analytic: a.probability(0),
            p_window_simulated: s.probability(replications),
            mean_tta_analytic: (a.stats.count() > 0).then(|| a.stats.mean()),
            mean_tta_simulated: (s.occurrences > 0).then(|| s.stats.mean()),
            mean_tta_closed_form: probs.iter().map(|p| 1.0 / (p * rate)).sum(),
        }
    }

    /// Runs all three steps (plus the analytic cross-check when
    /// configured).
    #[must_use]
    pub fn run(&self) -> PipelineReport {
        let model = self.attack_modeling();
        let doe = self.doe_measurements();
        let assessment = self.assess(&doe);
        let analytic = self
            .config
            .analytic_check
            .then(|| self.analytic_cross_check());
        PipelineReport {
            model,
            doe,
            assessment,
            analytic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> PipelineConfig {
        PipelineConfig {
            batches: 2,
            batch_size: 4,
            campaign: CampaignConfig {
                max_ticks: 24 * 10,
                detection_stops_attack: false,
            },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn full_pipeline_runs_end_to_end() {
        let report = Pipeline::new(tiny_config()).run();
        assert_eq!(report.doe.design.runs(), 16);
        assert_eq!(report.doe.measurements.len(), 16);
        assert_eq!(report.assessment.ranking.len(), 6);
        // Variance fractions sum to ≤ 1 (rest is error + interactions).
        let total: f64 = report.assessment.ranking.iter().map(|(_, v)| v).sum();
        assert!((0.0..=1.0 + 1e-9).contains(&total));
        let text = report.to_string();
        assert!(text.contains("Step 1"));
        assert!(text.contains("Step 2"));
        assert!(text.contains("Step 3"));
    }

    #[test]
    fn attack_modeling_tree_probability_in_bounds() {
        let model = Pipeline::new(tiny_config()).attack_modeling();
        let p = model.tree.success_probability();
        assert!((0.0..=1.0).contains(&p));
        assert!(p > 0.0, "monoculture baseline must be attackable");
    }

    #[test]
    fn serial_and_parallel_sweeps_are_bit_identical() {
        let serial = Pipeline::new(PipelineConfig {
            executor: Executor::serial(),
            ..tiny_config()
        })
        .doe_measurements();
        let parallel = Pipeline::new(PipelineConfig {
            executor: Executor::parallel(),
            ..tiny_config()
        })
        .doe_measurements();
        for (a, b) in serial.measurements.iter().zip(&parallel.measurements) {
            assert_eq!(a.batch_p_success, b.batch_p_success);
            assert_eq!(a.batch_compromised, b.batch_compromised);
            assert_eq!(a.summary.p_success, b.summary.p_success);
        }
    }

    #[test]
    fn analytic_cross_check_is_opt_in_and_agrees() {
        let off = Pipeline::new(tiny_config()).run();
        assert!(off.analytic.is_none());
        let pipeline = Pipeline::new(PipelineConfig {
            analytic_check: true,
            ..tiny_config()
        });
        let report = pipeline.run();
        let x = report.analytic.expect("cross-check requested");
        assert!((0.0..=1.0).contains(&x.p_window_analytic));
        // 400 Monte-Carlo replications: a generous 99%+ band around the
        // exact value.
        let half_width =
            3.0 * (x.p_window_analytic * (1.0 - x.p_window_analytic) / 400.0).sqrt() + 0.01;
        assert!(
            (x.p_window_simulated - x.p_window_analytic).abs() < half_width,
            "simulated {} vs analytic {}",
            x.p_window_simulated,
            x.p_window_analytic
        );
        assert!(x.mean_tta_closed_form > 0.0);
        let text = report.to_string();
        assert!(text.contains("analytic cross-check"));
    }

    #[test]
    fn precision_targeted_sweep_reports_adaptive_points() {
        let fixed = Pipeline::new(tiny_config()).doe_measurements();
        assert!(fixed.adaptive.is_none());
        let pipeline = Pipeline::new(PipelineConfig {
            precision: Some(PrecisionTarget::p_success(0.25, 8, 40)),
            ..tiny_config()
        });
        let report = pipeline.run();
        let points = report.doe.adaptive.as_ref().expect("adaptive sweep");
        assert_eq!(points.len(), report.doe.measurements.len());
        for (p, m) in points.iter().zip(&report.doe.measurements) {
            assert_eq!(p.replications, m.summary.replications);
            assert_eq!(p.batches as usize, m.batch_p_success.len());
            // Bounds hold (min raised to 2 batches of 4): 8..=40.
            assert!((8..=40).contains(&p.replications));
        }
        // The assessment still runs on the (truncated) balanced batches.
        assert_eq!(report.assessment.ranking.len(), 6);
        let text = report.to_string();
        assert!(text.contains("adaptive replication"));
        assert!(text.contains("halfwidth"));
    }

    #[test]
    #[should_panic(expected = "caps replications")]
    fn precision_cap_below_two_batches_is_rejected() {
        // batch_size 4 needs a cap of >= 8; a cap of 5 must be refused
        // rather than silently exceeded.
        let _ = Pipeline::new(PipelineConfig {
            precision: Some(PrecisionTarget::p_success(0.25, 1, 5)),
            ..tiny_config()
        })
        .doe_measurements();
    }

    #[test]
    fn assessment_is_deterministic() {
        let p = Pipeline::new(tiny_config());
        let a = p.doe_measurements();
        let b = p.doe_measurements();
        let ra = p.assess(&a);
        let rb = p.assess(&b);
        assert_eq!(ra.anova_p_success.rows.len(), rb.anova_p_success.rows.len());
        for (x, y) in ra.ranking.iter().zip(&rb.ranking) {
            assert_eq!(x.0, y.0);
            assert!((x.1 - y.1).abs() < 1e-12);
        }
    }
}
