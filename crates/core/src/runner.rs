//! Monte-Carlo measurement of one system configuration, on the unified
//! [`exec`](crate::exec) layer — fixed replication plans or
//! adaptive-precision runs that stop once a confidence-interval target
//! is met.

use crate::exec::{
    campaign_plan, AdaptiveRun, Executor, MeasurementsCollector, Precision, ReplicationPlan,
    StopRule,
};
use crate::indicators::{IndicatorSummary, PrecisionResponse};
use diversify_attack::campaign::{CampaignConfig, CampaignSimulator, ThreatModel};
use diversify_scada::network::ScadaNetwork;

/// Replication-level measurements of one configuration, batched so ANOVA
/// has replicate groups with an error term.
#[derive(Debug, Clone)]
pub struct Measurements {
    /// Aggregated indicators over all replications.
    pub summary: IndicatorSummary,
    /// Per-batch success fractions (one value per batch — the ANOVA
    /// replicate unit for the P_SA response).
    pub batch_p_success: Vec<f64>,
    /// Per-batch mean final compromised ratios.
    pub batch_compromised: Vec<f64>,
}

/// An adaptive measurement: the [`Measurements`] over the replications
/// actually executed, plus how many ran and the precision achieved.
pub type AdaptiveMeasurements = AdaptiveRun<Measurements>;

/// What "precise enough" means for an adaptive measurement: which
/// indicator to watch, at what confidence level, under which
/// [`StopRule`] bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionTarget {
    /// The monitored indicator.
    pub response: PrecisionResponse,
    /// Confidence level of the monitored interval, e.g. `0.95`.
    pub level: f64,
    /// Relative-half-width target and replication bounds.
    pub rule: StopRule,
}

impl PrecisionTarget {
    /// A 95%-level target on the attack-success probability — the
    /// common case for campaign sweeps.
    ///
    /// # Panics
    ///
    /// Panics on degenerate bounds (see [`StopRule::relative`]).
    #[must_use]
    pub fn p_success(
        relative_half_width: f64,
        min_replications: u32,
        max_replications: u32,
    ) -> Self {
        PrecisionTarget {
            response: PrecisionResponse::PSuccess,
            level: 0.95,
            rule: StopRule::relative(relative_half_width, min_replications, max_replications),
        }
    }

    /// The same target at a different confidence level.
    ///
    /// # Panics
    ///
    /// Panics unless `level` lies in `(0, 1)`.
    #[must_use]
    pub fn with_level(mut self, level: f64) -> Self {
        assert!(
            0.0 < level && level < 1.0,
            "confidence level must be in (0,1)"
        );
        self.level = level;
        self
    }
}

/// Runs `batches × batch_size` campaign replications of `threat` against
/// `network` on the default (parallel) [`Executor`] and aggregates the
/// indicators.
///
/// # Panics
///
/// Panics if `batches` or `batch_size` is zero.
#[must_use]
pub fn measure_configuration(
    network: &ScadaNetwork,
    threat: &ThreatModel,
    config: CampaignConfig,
    batches: u32,
    batch_size: u32,
    master_seed: u64,
) -> Measurements {
    measure_configuration_with(
        network,
        threat,
        config,
        &campaign_plan(batches, batch_size, master_seed),
        Executor::default(),
    )
}

/// Measures one configuration under an explicit [`ReplicationPlan`] and
/// [`Executor`] — the entry point for callers that manage their own
/// plans (the pipeline sweep, the bench experiments, determinism tests).
///
/// Runs on the workspace executor ([`Executor::run_ws`]): each worker
/// keeps one [`CampaignWorkspace`](diversify_attack::campaign::CampaignWorkspace)
/// alive across its replications and folds the scalar per-replication
/// [`CampaignStats`](diversify_attack::campaign::CampaignStats), so the
/// hot loop performs no steady-state allocation. Results are
/// bit-identical to the materializing per-replication path.
#[must_use]
pub fn measure_configuration_with(
    network: &ScadaNetwork,
    threat: &ThreatModel,
    config: CampaignConfig,
    plan: &ReplicationPlan,
    executor: Executor,
) -> Measurements {
    let sim = CampaignSimulator::new(network, threat.clone(), config);
    executor.run_ws(
        plan,
        || sim.workspace(),
        |ws, rep| sim.run_into(ws, rep.seed),
        &MeasurementsCollector,
    )
}

/// Measures one configuration adaptively: batch-sized rounds of `plan`
/// execute until `target` is met (or its replication cap is hit), so a
/// low-variance configuration spends a fraction of the replications a
/// high-variance one needs.
///
/// Seeds stay the plan's `namespace ^ index` derivation and outcomes
/// fold through the same per-round structure as fixed plans, so an
/// adaptive run that stops after *N* replications returns
/// [`Measurements`] **bit-identical** to
/// [`measure_configuration_with`] on `plan.with_batches(N / batch_size)`.
/// Campaign workspaces live in a pool that survives across rounds
/// ([`Executor::run_adaptive_ws`]), so later rounds re-pay no
/// per-replication setup.
#[must_use]
pub fn measure_configuration_adaptive(
    network: &ScadaNetwork,
    threat: &ThreatModel,
    config: CampaignConfig,
    plan: &ReplicationPlan,
    executor: Executor,
    target: &PrecisionTarget,
) -> AdaptiveMeasurements {
    let sim = CampaignSimulator::new(network, threat.clone(), config);
    executor.run_adaptive_ws(
        plan,
        &target.rule,
        || sim.workspace(),
        |ws, rep| sim.run_into(ws, rep.seed),
        &MeasurementsCollector,
        |acc, _replications| acc.indicators.precision(target.response, target.level),
    )
}

/// The [`Precision`] achieved by a finished adaptive run, as a relative
/// half-width (`None` when the monitor never produced an interval).
#[must_use]
pub fn achieved_relative_half_width(run: &AdaptiveMeasurements) -> Option<f64> {
    run.precision.as_ref().map(Precision::relative_half_width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversify_scada::scope::{ScopeConfig, ScopeSystem};

    fn scope_network() -> ScadaNetwork {
        ScopeSystem::build(&ScopeConfig::default())
            .network()
            .clone()
    }

    #[test]
    fn batching_covers_all_replications() {
        let net = scope_network();
        let m = measure_configuration(
            &net,
            &ThreatModel::stuxnet_like(),
            CampaignConfig::default(),
            4,
            5,
            9,
        );
        assert_eq!(m.summary.replications, 20);
        assert_eq!(m.batch_p_success.len(), 4);
        assert_eq!(m.batch_compromised.len(), 4);
        // Batch means average back to the global mean.
        let batch_mean: f64 = m.batch_p_success.iter().sum::<f64>() / 4.0;
        assert!((batch_mean - m.summary.p_success).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let net = scope_network();
        let run = |seed| {
            measure_configuration(
                &net,
                &ThreatModel::stuxnet_like(),
                CampaignConfig::default(),
                2,
                5,
                seed,
            )
            .summary
            .p_success
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn serial_and_parallel_measurements_are_bit_identical() {
        let net = scope_network();
        let plan = campaign_plan(3, 8, 0xFEED);
        let threat = ThreatModel::stuxnet_like();
        let config = CampaignConfig::default();
        let serial = measure_configuration_with(&net, &threat, config, &plan, Executor::serial());
        let parallel =
            measure_configuration_with(&net, &threat, config, &plan, Executor::parallel());
        assert_eq!(serial.summary.p_success, parallel.summary.p_success);
        assert_eq!(serial.batch_p_success, parallel.batch_p_success);
        assert_eq!(serial.batch_compromised, parallel.batch_compromised);
        assert_eq!(serial.summary.compromised, parallel.summary.compromised);
        assert_eq!(serial.summary.tta, parallel.summary.tta);
        assert_eq!(serial.summary.ttsf, parallel.summary.ttsf);
    }

    #[test]
    fn adaptive_truncation_matches_fixed_plan() {
        let net = scope_network();
        let threat = ThreatModel::stuxnet_like();
        let config = CampaignConfig {
            max_ticks: 24 * 10,
            detection_stops_attack: false,
        };
        let base = campaign_plan(1, 6, 0xADA);
        // A rule that can never be met: the run executes exactly the cap.
        let target = PrecisionTarget::p_success(1e-12, 6, 24);
        let adaptive = measure_configuration_adaptive(
            &net,
            &threat,
            config,
            &base,
            Executor::default(),
            &target,
        );
        assert!(!adaptive.target_met);
        assert_eq!(adaptive.replications, 24);
        assert_eq!(adaptive.plan, base.with_batches(4));
        let fixed =
            measure_configuration_with(&net, &threat, config, &adaptive.plan, Executor::default());
        assert_eq!(
            adaptive.output.summary.p_success.to_bits(),
            fixed.summary.p_success.to_bits()
        );
        assert_eq!(adaptive.output.batch_p_success, fixed.batch_p_success);
        assert_eq!(adaptive.output.batch_compromised, fixed.batch_compromised);
        assert_eq!(adaptive.output.summary.tta, fixed.summary.tta);
    }

    #[test]
    fn adaptive_stops_early_on_low_variance_point() {
        // The default SCoPE monoculture falls almost always inside a
        // month: P_SA near 1 tightens the Wilson interval quickly, so a
        // 5% relative target stops well under the cap.
        let net = scope_network();
        let target = PrecisionTarget::p_success(0.05, 50, 1000);
        let run = measure_configuration_adaptive(
            &net,
            &ThreatModel::stuxnet_like(),
            CampaignConfig {
                max_ticks: 24 * 30,
                detection_stops_attack: false,
            },
            &campaign_plan(1, 25, 0xD1CE),
            Executor::default(),
            &target,
        );
        assert!(run.target_met, "precision target should be reachable");
        assert!(
            run.replications < 1000,
            "adaptive run should stop before the cap ({} replications)",
            run.replications
        );
        let achieved = achieved_relative_half_width(&run).expect("precision was computed");
        assert!(achieved <= 0.05, "achieved {achieved} > target");
    }

    #[test]
    #[should_panic(expected = "non-empty batch plan")]
    fn zero_batches_panics() {
        let net = scope_network();
        let _ = measure_configuration(
            &net,
            &ThreatModel::stuxnet_like(),
            CampaignConfig::default(),
            0,
            5,
            1,
        );
    }
}
