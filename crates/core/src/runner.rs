//! Monte-Carlo measurement of one system configuration, on the unified
//! [`exec`](crate::exec) layer.

use crate::exec::{campaign_plan, Executor, MeasurementsCollector, ReplicationPlan};
use crate::indicators::IndicatorSummary;
use diversify_attack::campaign::{CampaignConfig, CampaignSimulator, ThreatModel};
use diversify_scada::network::ScadaNetwork;

/// Replication-level measurements of one configuration, batched so ANOVA
/// has replicate groups with an error term.
#[derive(Debug, Clone)]
pub struct Measurements {
    /// Aggregated indicators over all replications.
    pub summary: IndicatorSummary,
    /// Per-batch success fractions (one value per batch — the ANOVA
    /// replicate unit for the P_SA response).
    pub batch_p_success: Vec<f64>,
    /// Per-batch mean final compromised ratios.
    pub batch_compromised: Vec<f64>,
}

/// Runs `batches × batch_size` campaign replications of `threat` against
/// `network` on the default (parallel) [`Executor`] and aggregates the
/// indicators.
///
/// # Panics
///
/// Panics if `batches` or `batch_size` is zero.
#[must_use]
pub fn measure_configuration(
    network: &ScadaNetwork,
    threat: &ThreatModel,
    config: CampaignConfig,
    batches: u32,
    batch_size: u32,
    master_seed: u64,
) -> Measurements {
    measure_configuration_with(
        network,
        threat,
        config,
        &campaign_plan(batches, batch_size, master_seed),
        Executor::default(),
    )
}

/// Measures one configuration under an explicit [`ReplicationPlan`] and
/// [`Executor`] — the entry point for callers that manage their own
/// plans (the pipeline sweep, the bench experiments, determinism tests).
#[must_use]
pub fn measure_configuration_with(
    network: &ScadaNetwork,
    threat: &ThreatModel,
    config: CampaignConfig,
    plan: &ReplicationPlan,
    executor: Executor,
) -> Measurements {
    let sim = CampaignSimulator::new(network, threat.clone(), config);
    executor.collect(plan, |rep| sim.run(rep.seed), &MeasurementsCollector)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversify_scada::scope::{ScopeConfig, ScopeSystem};

    #[test]
    fn batching_covers_all_replications() {
        let net = ScopeSystem::build(&ScopeConfig::default())
            .network()
            .clone();
        let m = measure_configuration(
            &net,
            &ThreatModel::stuxnet_like(),
            CampaignConfig::default(),
            4,
            5,
            9,
        );
        assert_eq!(m.summary.replications, 20);
        assert_eq!(m.batch_p_success.len(), 4);
        assert_eq!(m.batch_compromised.len(), 4);
        // Batch means average back to the global mean.
        let batch_mean: f64 = m.batch_p_success.iter().sum::<f64>() / 4.0;
        assert!((batch_mean - m.summary.p_success).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let net = ScopeSystem::build(&ScopeConfig::default())
            .network()
            .clone();
        let run = |seed| {
            measure_configuration(
                &net,
                &ThreatModel::stuxnet_like(),
                CampaignConfig::default(),
                2,
                5,
                seed,
            )
            .summary
            .p_success
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn serial_and_parallel_measurements_are_bit_identical() {
        let net = ScopeSystem::build(&ScopeConfig::default())
            .network()
            .clone();
        let plan = campaign_plan(3, 8, 0xFEED);
        let threat = ThreatModel::stuxnet_like();
        let config = CampaignConfig::default();
        let serial = measure_configuration_with(&net, &threat, config, &plan, Executor::serial());
        let parallel =
            measure_configuration_with(&net, &threat, config, &plan, Executor::parallel());
        assert_eq!(serial.summary.p_success, parallel.summary.p_success);
        assert_eq!(serial.batch_p_success, parallel.batch_p_success);
        assert_eq!(serial.batch_compromised, parallel.batch_compromised);
        assert_eq!(
            serial.summary.compromised_ratios,
            parallel.summary.compromised_ratios
        );
        assert_eq!(serial.summary.tta_samples, parallel.summary.tta_samples);
    }

    #[test]
    #[should_panic(expected = "non-empty batch plan")]
    fn zero_batches_panics() {
        let net = ScopeSystem::build(&ScopeConfig::default())
            .network()
            .clone();
        let _ = measure_configuration(
            &net,
            &ThreatModel::stuxnet_like(),
            CampaignConfig::default(),
            0,
            5,
            1,
        );
    }
}
