//! Parallel Monte-Carlo measurement of one system configuration.

use crate::indicators::IndicatorSummary;
use diversify_attack::campaign::{CampaignConfig, CampaignSimulator, ThreatModel};
use diversify_des::{derive_seed, StreamId};
use diversify_scada::network::ScadaNetwork;
use rayon::prelude::*;

/// Replication-level measurements of one configuration, batched so ANOVA
/// has replicate groups with an error term.
#[derive(Debug, Clone)]
pub struct Measurements {
    /// Aggregated indicators over all replications.
    pub summary: IndicatorSummary,
    /// Per-batch success fractions (one value per batch — the ANOVA
    /// replicate unit for the P_SA response).
    pub batch_p_success: Vec<f64>,
    /// Per-batch mean final compromised ratios.
    pub batch_compromised: Vec<f64>,
}

/// Runs `batches × batch_size` campaign replications of `threat` against
/// `network` (parallelized with rayon) and aggregates the indicators.
///
/// # Panics
///
/// Panics if `batches` or `batch_size` is zero.
#[must_use]
pub fn measure_configuration(
    network: &ScadaNetwork,
    threat: &ThreatModel,
    config: CampaignConfig,
    batches: u32,
    batch_size: u32,
    master_seed: u64,
) -> Measurements {
    assert!(batches > 0 && batch_size > 0, "non-empty batch plan required");
    let sim = CampaignSimulator::new(network, threat.clone(), config);
    let all: Vec<_> = (0..batches * batch_size)
        .into_par_iter()
        .map(|i| sim.run(derive_seed(master_seed, StreamId(0x4E_0000 + u64::from(i)))))
        .collect();
    let summary = IndicatorSummary::from_outcomes(&all);
    let mut batch_p_success = Vec::with_capacity(batches as usize);
    let mut batch_compromised = Vec::with_capacity(batches as usize);
    for b in 0..batches {
        let slice = &all[(b * batch_size) as usize..((b + 1) * batch_size) as usize];
        let succ = slice.iter().filter(|o| o.succeeded()).count() as f64;
        batch_p_success.push(succ / f64::from(batch_size));
        batch_compromised.push(
            slice
                .iter()
                .map(|o| o.final_compromised_ratio())
                .sum::<f64>()
                / f64::from(batch_size),
        );
    }
    Measurements {
        summary,
        batch_p_success,
        batch_compromised,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversify_scada::scope::{ScopeConfig, ScopeSystem};

    #[test]
    fn batching_covers_all_replications() {
        let net = ScopeSystem::build(&ScopeConfig::default()).network().clone();
        let m = measure_configuration(
            &net,
            &ThreatModel::stuxnet_like(),
            CampaignConfig::default(),
            4,
            5,
            9,
        );
        assert_eq!(m.summary.replications, 20);
        assert_eq!(m.batch_p_success.len(), 4);
        assert_eq!(m.batch_compromised.len(), 4);
        // Batch means average back to the global mean.
        let batch_mean: f64 = m.batch_p_success.iter().sum::<f64>() / 4.0;
        assert!((batch_mean - m.summary.p_success).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let net = ScopeSystem::build(&ScopeConfig::default()).network().clone();
        let run = |seed| {
            measure_configuration(
                &net,
                &ThreatModel::stuxnet_like(),
                CampaignConfig::default(),
                2,
                5,
                seed,
            )
            .summary
            .p_success
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    #[should_panic(expected = "non-empty batch plan")]
    fn zero_batches_panics() {
        let net = ScopeSystem::build(&ScopeConfig::default()).network().clone();
        let _ = measure_configuration(
            &net,
            &ThreatModel::stuxnet_like(),
            CampaignConfig::default(),
            0,
            5,
            1,
        );
    }
}
