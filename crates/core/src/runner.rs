//! Monte-Carlo measurement of one system configuration, on the unified
//! [`exec`](crate::exec) layer — fixed replication plans or
//! adaptive-precision runs that stop once a confidence-interval target
//! is met.

use crate::error::PipelineError;
use crate::exec::{
    campaign_plan, AdaptiveRun, BudgetOutcome, Executor, MeasurementsCollector, PartialRun,
    Precision, ReplicationFailure, ReplicationPlan, RunPolicy, StopRule,
};
use crate::indicators::{IndicatorSummary, PrecisionResponse};
use diversify_attack::campaign::{
    CampaignConfig, CampaignMilestone, CampaignSimulator, CampaignStats, MilestonePlacement,
    ThreatModel,
};
use diversify_attack::split::CampaignSplitTask;
use diversify_des::splitting::{LevelSummary, Splitting};
use diversify_scada::network::ScadaNetwork;
use diversify_stats::{product_proportion_ci, ConfidenceInterval};

/// Replication-level measurements of one configuration, batched so ANOVA
/// has replicate groups with an error term.
#[derive(Debug, Clone)]
pub struct Measurements {
    /// Aggregated indicators over all replications.
    pub summary: IndicatorSummary,
    /// Per-batch success fractions (one value per batch — the ANOVA
    /// replicate unit for the P_SA response).
    pub batch_p_success: Vec<f64>,
    /// Per-batch mean final compromised ratios.
    pub batch_compromised: Vec<f64>,
}

/// An adaptive measurement: the [`Measurements`] over the replications
/// actually executed, plus how many ran and the precision achieved.
pub type AdaptiveMeasurements = AdaptiveRun<Measurements>;

/// What "precise enough" means for an adaptive measurement: which
/// indicator to watch, at what confidence level, under which
/// [`StopRule`] bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionTarget {
    /// The monitored indicator.
    pub response: PrecisionResponse,
    /// Confidence level of the monitored interval, e.g. `0.95`.
    pub level: f64,
    /// Relative-half-width target and replication bounds.
    pub rule: StopRule,
}

impl PrecisionTarget {
    /// A 95%-level target on the attack-success probability — the
    /// common case for campaign sweeps.
    ///
    /// # Panics
    ///
    /// Panics on degenerate bounds (see [`StopRule::relative`]).
    #[must_use]
    pub fn p_success(
        relative_half_width: f64,
        min_replications: u32,
        max_replications: u32,
    ) -> Self {
        PrecisionTarget {
            response: PrecisionResponse::PSuccess,
            level: 0.95,
            rule: StopRule::relative(relative_half_width, min_replications, max_replications),
        }
    }

    /// The same target at a different confidence level, rejecting
    /// levels outside `(0, 1)` with a typed error.
    pub fn try_with_level(mut self, level: f64) -> Result<Self, PipelineError> {
        if !(0.0 < level && level < 1.0) {
            return Err(PipelineError::InvalidLevel(level));
        }
        self.level = level;
        Ok(self)
    }

    /// The same target at a different confidence level.
    ///
    /// # Panics
    ///
    /// Panics unless `level` lies in `(0, 1)`. Use
    /// [`PrecisionTarget::try_with_level`] to validate untrusted
    /// configuration.
    #[must_use]
    pub fn with_level(self, level: f64) -> Self {
        match self.try_with_level(level) {
            Ok(target) => target,
            Err(err) => panic!("{err}"),
        }
    }
}

/// The gracefully degraded result of a budgeted measurement: the
/// [`Measurements`] over every replication that completed (if any),
/// plus the failure and budget record. Produced by
/// [`measure_configuration_budgeted`] and
/// [`measure_configuration_adaptive_budgeted`].
#[derive(Debug, Clone)]
pub struct PartialMeasurements {
    /// Aggregated measurements over completed replications, or `None`
    /// if nothing completed.
    pub measurements: Option<Measurements>,
    /// The monitored response's precision at the last adaptive check.
    pub achieved_precision: Option<Precision>,
    /// Batch-sized rounds executed.
    pub rounds: u32,
    /// Replications attempted.
    pub attempted: u32,
    /// Replications that completed and were accepted.
    pub completed: u32,
    /// Replications that failed (panicked, or produced non-finite
    /// statistics), in replication order.
    pub failed: Vec<ReplicationFailure>,
    /// Why the run ended.
    pub budget_outcome: BudgetOutcome,
}

impl PartialMeasurements {
    fn from_run(run: PartialRun<Measurements>) -> Self {
        PartialMeasurements {
            measurements: run.output,
            achieved_precision: run.precision,
            rounds: run.rounds,
            attempted: run.attempted,
            completed: run.completed,
            failed: run.failed,
            budget_outcome: run.budget_outcome,
        }
    }

    /// The indicator summary over completed replications, if any.
    #[must_use]
    pub fn indicators(&self) -> Option<&IndicatorSummary> {
        self.measurements.as_ref().map(|m| &m.summary)
    }

    /// Whether the result is degraded: some replications failed, or an
    /// external budget truncated the run.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !self.failed.is_empty() || self.budget_outcome.is_truncation()
    }
}

/// Runs `batches × batch_size` campaign replications of `threat` against
/// `network` on the default (parallel) [`Executor`] and aggregates the
/// indicators.
///
/// # Panics
///
/// Panics if `batches` or `batch_size` is zero.
#[must_use]
pub fn measure_configuration(
    network: &ScadaNetwork,
    threat: &ThreatModel,
    config: CampaignConfig,
    batches: u32,
    batch_size: u32,
    master_seed: u64,
) -> Measurements {
    measure_configuration_with(
        network,
        threat,
        config,
        &campaign_plan(batches, batch_size, master_seed),
        Executor::default(),
    )
}

/// Measures one configuration under an explicit [`ReplicationPlan`] and
/// [`Executor`] — the entry point for callers that manage their own
/// plans (the pipeline sweep, the bench experiments, determinism tests).
///
/// Runs on the workspace executor ([`Executor::run_ws`]): each worker
/// keeps one [`CampaignWorkspace`](diversify_attack::campaign::CampaignWorkspace)
/// alive across its replications and folds the scalar per-replication
/// [`CampaignStats`], so the
/// hot loop performs no steady-state allocation. Results are
/// bit-identical to the materializing per-replication path.
#[must_use]
pub fn measure_configuration_with(
    network: &ScadaNetwork,
    threat: &ThreatModel,
    config: CampaignConfig,
    plan: &ReplicationPlan,
    executor: Executor,
) -> Measurements {
    let sim = CampaignSimulator::new(network, threat.clone(), config);
    executor.run_ws(
        plan,
        || sim.workspace(),
        |ws, rep| sim.run_into(ws, rep.seed),
        &MeasurementsCollector,
    )
}

/// Measures one configuration adaptively: batch-sized rounds of `plan`
/// execute until `target` is met (or its replication cap is hit), so a
/// low-variance configuration spends a fraction of the replications a
/// high-variance one needs.
///
/// Seeds stay the plan's `namespace ^ index` derivation and outcomes
/// fold through the same per-round structure as fixed plans, so an
/// adaptive run that stops after *N* replications returns
/// [`Measurements`] **bit-identical** to
/// [`measure_configuration_with`] on `plan.with_batches(N / batch_size)`.
/// Campaign workspaces live in a pool that survives across rounds
/// ([`Executor::run_adaptive_ws`]), so later rounds re-pay no
/// per-replication setup.
#[must_use]
pub fn measure_configuration_adaptive(
    network: &ScadaNetwork,
    threat: &ThreatModel,
    config: CampaignConfig,
    plan: &ReplicationPlan,
    executor: Executor,
    target: &PrecisionTarget,
) -> AdaptiveMeasurements {
    let sim = CampaignSimulator::new(network, threat.clone(), config);
    executor.run_adaptive_ws(
        plan,
        &target.rule,
        || sim.workspace(),
        |ws, rep| sim.run_into(ws, rep.seed),
        &MeasurementsCollector,
        |acc, _replications| acc.indicators.precision(target.response, target.level),
    )
}

/// The fault-tolerant form of [`measure_configuration_with`]: measures
/// one configuration under a [`RunPolicy`] — replications run
/// unwind-caught, failures are retried per policy and otherwise
/// recorded, non-finite campaign statistics are rejected as invalid
/// output, and the policy's budget (replication cap, deadline,
/// cancellation) truncates at round boundaries. Returns
/// [`PartialMeasurements`] over whatever completed; every surviving
/// replication is bit-identical to the fault-free run, and with no
/// faults and an unlimited budget the measurements are bit-identical
/// to [`measure_configuration_with`].
#[must_use]
pub fn measure_configuration_budgeted(
    network: &ScadaNetwork,
    threat: &ThreatModel,
    config: CampaignConfig,
    plan: &ReplicationPlan,
    executor: Executor,
    policy: &RunPolicy,
) -> PartialMeasurements {
    let sim = CampaignSimulator::new(network, threat.clone(), config);
    PartialMeasurements::from_run(executor.run_ws_checked(
        plan,
        || sim.workspace(),
        |ws, rep| sim.run_into(ws, rep.seed),
        &MeasurementsCollector,
        policy,
        CampaignStats::is_finite,
    ))
}

/// The fault-tolerant form of [`measure_configuration_adaptive`]:
/// adaptive rounds under a [`RunPolicy`]. The returned
/// `budget_outcome` distinguishes the target being met
/// ([`BudgetOutcome::PrecisionMet`]), the rule's own replication cap
/// ([`BudgetOutcome::RuleCapped`]), and external truncation; a
/// truncated run's measurements are bit-identical to the fixed plan of
/// the rounds it completed.
#[must_use]
pub fn measure_configuration_adaptive_budgeted(
    network: &ScadaNetwork,
    threat: &ThreatModel,
    config: CampaignConfig,
    plan: &ReplicationPlan,
    executor: Executor,
    target: &PrecisionTarget,
    policy: &RunPolicy,
) -> PartialMeasurements {
    let sim = CampaignSimulator::new(network, threat.clone(), config);
    PartialMeasurements::from_run(executor.run_adaptive_ws_checked(
        plan,
        &target.rule,
        || sim.workspace(),
        |ws, rep| sim.run_into(ws, rep.seed),
        &MeasurementsCollector,
        |acc, _replications| acc.indicators.precision(target.response, target.level),
        policy,
        CampaignStats::is_finite,
    ))
}

/// A rare-event measurement of one configuration: the
/// multilevel-splitting estimate of the attack-success probability with
/// its product-of-conditionals confidence interval and the per-level
/// cost record. Produced by [`measure_configuration_splitting`].
#[derive(Debug, Clone)]
pub struct SplittingMeasurements {
    /// Product-of-conditionals estimate of P_SA (0 when a level dried
    /// up).
    pub estimate: f64,
    /// Confidence interval over the executed levels
    /// ([`product_proportion_ci`]). When the run dried up the interval
    /// covers the executed prefix, which still bounds the full product
    /// (unattempted conditionals are at most 1).
    pub ci: ConfidenceInterval,
    /// The milestone schedule (one entry per level).
    pub milestones: Vec<CampaignMilestone>,
    /// Per-level attempt/survivor/tick tallies, in level order.
    pub levels: Vec<LevelSummary>,
    /// Total campaign ticks simulated — the cost to compare against a
    /// brute-force plan's tick count.
    pub total_ticks: u64,
    /// Fixed per-level population.
    pub population: u32,
    /// How the spread milestone was placed: `None` for the fixed default
    /// schedule, `Some` when [`measure_configuration_splitting_adaptive`]
    /// ran a pilot (either a piloted threshold or a recorded fallback).
    pub placement: Option<MilestonePlacement>,
}

impl SplittingMeasurements {
    /// Whether a level produced zero survivors (later levels skipped,
    /// estimate 0).
    #[must_use]
    pub fn dried_up(&self) -> bool {
        self.levels.last().is_some_and(|l| l.survivors == 0)
    }
}

/// Measures one configuration's attack-success probability by
/// fixed-effort multilevel splitting over the simulator's goal-implied
/// campaign milestones — the estimation mode for *rare* design points,
/// where `measure_configuration` would need millions of replications to
/// see a single success.
///
/// `population` replications run per level; survivors of each milestone
/// are checkpointed and resampled as the next level's starting states,
/// with every clone's seed derived from the plan's `namespace ^ index`
/// schedule, so the estimate is deterministic in `master_seed` and
/// bit-identical on serial and parallel executors.
///
/// # Errors
///
/// Returns [`PipelineError::InvalidLevel`] for a confidence level
/// outside `(0, 1)`, [`PipelineError::Plan`] for a zero population, and
/// [`PipelineError::Stats`] if the interval cannot be formed.
pub fn measure_configuration_splitting(
    network: &ScadaNetwork,
    threat: &ThreatModel,
    config: CampaignConfig,
    population: u32,
    master_seed: u64,
    executor: Executor,
    level: f64,
) -> Result<SplittingMeasurements, PipelineError> {
    if !(0.0 < level && level < 1.0) {
        return Err(PipelineError::InvalidLevel(level));
    }
    let sim = CampaignSimulator::new(network, threat.clone(), config);
    let task = CampaignSplitTask::with_default_milestones(&sim);
    let milestones = task.milestones().to_vec();
    let run = Splitting::try_new(population, master_seed)?.run(&task, &executor)?;
    let ci = product_proportion_ci(&run.conditionals(), level)?;
    Ok(SplittingMeasurements {
        estimate: run.estimate,
        ci,
        milestones,
        levels: run.levels,
        total_ticks: run.total_ticks,
        population: run.population,
        placement: None,
    })
}

/// Like [`measure_configuration_splitting`], but places the spread
/// milestone adaptively from a lockstep pilot and runs every level
/// population through the batched lockstep executor path.
///
/// A pilot of `pilot_population` trajectories estimates the conditional
/// survivor fractions past `Rooted` and places the `SpreadAtLeast`
/// threshold to equalize conditional passage probabilities (falling
/// back to the fixed heuristic with a recorded reason when the pilot is
/// uninformative — see [`MilestonePlacement`]). Levels then execute
/// `lockstep_lanes` replications per tick over SoA lane state; a lane
/// count of 1 is the scalar path. Both knobs are pure cost/placement
/// choices: for a given milestone schedule the estimate is bit-identical
/// across lane counts and executors.
///
/// # Errors
///
/// Returns [`PipelineError::InvalidLevel`] for a confidence level
/// outside `(0, 1)`, [`PipelineError::Plan`] for a zero population, and
/// [`PipelineError::Stats`] if the interval cannot be formed.
#[allow(clippy::too_many_arguments)]
pub fn measure_configuration_splitting_adaptive(
    network: &ScadaNetwork,
    threat: &ThreatModel,
    config: CampaignConfig,
    population: u32,
    master_seed: u64,
    executor: Executor,
    level: f64,
    pilot_population: u32,
    lockstep_lanes: usize,
) -> Result<SplittingMeasurements, PipelineError> {
    if !(0.0 < level && level < 1.0) {
        return Err(PipelineError::InvalidLevel(level));
    }
    let sim = CampaignSimulator::new(network, threat.clone(), config);
    let (task, placement) =
        CampaignSplitTask::with_piloted_milestones(&sim, pilot_population, master_seed);
    let milestones = task.milestones().to_vec();
    let run = Splitting::try_new(population, master_seed)?
        .with_lockstep(lockstep_lanes.max(1))
        .run(&task, &executor)?;
    let ci = product_proportion_ci(&run.conditionals(), level)?;
    Ok(SplittingMeasurements {
        estimate: run.estimate,
        ci,
        milestones,
        levels: run.levels,
        total_ticks: run.total_ticks,
        population: run.population,
        placement: Some(placement),
    })
}

/// The [`Precision`] achieved by a finished adaptive run, as a relative
/// half-width (`None` when the monitor never produced an interval).
#[must_use]
pub fn achieved_relative_half_width(run: &AdaptiveMeasurements) -> Option<f64> {
    run.precision.as_ref().map(Precision::relative_half_width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversify_scada::scope::{ScopeConfig, ScopeSystem};

    fn scope_network() -> ScadaNetwork {
        ScopeSystem::build(&ScopeConfig::default())
            .network()
            .clone()
    }

    #[test]
    fn batching_covers_all_replications() {
        let net = scope_network();
        let m = measure_configuration(
            &net,
            &ThreatModel::stuxnet_like(),
            CampaignConfig::default(),
            4,
            5,
            9,
        );
        assert_eq!(m.summary.replications, 20);
        assert_eq!(m.batch_p_success.len(), 4);
        assert_eq!(m.batch_compromised.len(), 4);
        // Batch means average back to the global mean.
        let batch_mean: f64 = m.batch_p_success.iter().sum::<f64>() / 4.0;
        assert!((batch_mean - m.summary.p_success).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let net = scope_network();
        let run = |seed| {
            measure_configuration(
                &net,
                &ThreatModel::stuxnet_like(),
                CampaignConfig::default(),
                2,
                5,
                seed,
            )
            .summary
            .p_success
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn serial_and_parallel_measurements_are_bit_identical() {
        let net = scope_network();
        let plan = campaign_plan(3, 8, 0xFEED);
        let threat = ThreatModel::stuxnet_like();
        let config = CampaignConfig::default();
        let serial = measure_configuration_with(&net, &threat, config, &plan, Executor::serial());
        let parallel =
            measure_configuration_with(&net, &threat, config, &plan, Executor::parallel());
        assert_eq!(serial.summary.p_success, parallel.summary.p_success);
        assert_eq!(serial.batch_p_success, parallel.batch_p_success);
        assert_eq!(serial.batch_compromised, parallel.batch_compromised);
        assert_eq!(serial.summary.compromised, parallel.summary.compromised);
        assert_eq!(serial.summary.tta, parallel.summary.tta);
        assert_eq!(serial.summary.ttsf, parallel.summary.ttsf);
    }

    #[test]
    fn adaptive_truncation_matches_fixed_plan() {
        let net = scope_network();
        let threat = ThreatModel::stuxnet_like();
        let config = CampaignConfig {
            max_ticks: 24 * 10,
            detection_stops_attack: false,
        };
        let base = campaign_plan(1, 6, 0xADA);
        // A rule that can never be met: the run executes exactly the cap.
        let target = PrecisionTarget::p_success(1e-12, 6, 24);
        let adaptive = measure_configuration_adaptive(
            &net,
            &threat,
            config,
            &base,
            Executor::default(),
            &target,
        );
        assert!(!adaptive.target_met);
        assert_eq!(adaptive.replications, 24);
        assert_eq!(adaptive.plan, base.with_batches(4));
        let fixed =
            measure_configuration_with(&net, &threat, config, &adaptive.plan, Executor::default());
        assert_eq!(
            adaptive.output.summary.p_success.to_bits(),
            fixed.summary.p_success.to_bits()
        );
        assert_eq!(adaptive.output.batch_p_success, fixed.batch_p_success);
        assert_eq!(adaptive.output.batch_compromised, fixed.batch_compromised);
        assert_eq!(adaptive.output.summary.tta, fixed.summary.tta);
    }

    #[test]
    fn adaptive_stops_early_on_low_variance_point() {
        // The default SCoPE monoculture falls almost always inside a
        // month: P_SA near 1 tightens the Wilson interval quickly, so a
        // 5% relative target stops well under the cap.
        let net = scope_network();
        let target = PrecisionTarget::p_success(0.05, 50, 1000);
        let run = measure_configuration_adaptive(
            &net,
            &ThreatModel::stuxnet_like(),
            CampaignConfig {
                max_ticks: 24 * 30,
                detection_stops_attack: false,
            },
            &campaign_plan(1, 25, 0xD1CE),
            Executor::default(),
            &target,
        );
        assert!(run.target_met, "precision target should be reachable");
        assert!(
            run.replications < 1000,
            "adaptive run should stop before the cap ({} replications)",
            run.replications
        );
        let achieved = achieved_relative_half_width(&run).expect("precision was computed");
        assert!(achieved <= 0.05, "achieved {achieved} > target");
    }

    #[test]
    fn budgeted_measurement_matches_plain_when_unconstrained() {
        let net = scope_network();
        let threat = ThreatModel::stuxnet_like();
        let config = CampaignConfig::default();
        let plan = campaign_plan(3, 6, 0xB0B);
        let plain = measure_configuration_with(&net, &threat, config, &plan, Executor::serial());
        let run = measure_configuration_budgeted(
            &net,
            &threat,
            config,
            &plan,
            Executor::serial(),
            &RunPolicy::new(),
        );
        assert!(!run.is_degraded());
        assert_eq!(run.budget_outcome, BudgetOutcome::Completed);
        assert_eq!(run.completed, 18);
        let m = run.measurements.expect("all replications completed");
        assert_eq!(
            m.summary.p_success.to_bits(),
            plain.summary.p_success.to_bits()
        );
        assert_eq!(m.batch_p_success, plain.batch_p_success);
        assert_eq!(m.batch_compromised, plain.batch_compromised);
    }

    #[test]
    fn budget_truncated_measurement_is_bit_identical_to_shorter_plan() {
        use crate::exec::Budget;
        let net = scope_network();
        let threat = ThreatModel::stuxnet_like();
        let config = CampaignConfig::default();
        let plan = campaign_plan(4, 5, 0x7A7);
        let policy = RunPolicy::new().with_budget(Budget::unlimited().with_max_replications(10));
        let run = measure_configuration_budgeted(
            &net,
            &threat,
            config,
            &plan,
            Executor::default(),
            &policy,
        );
        assert_eq!(run.budget_outcome, BudgetOutcome::ReplicationBudget);
        assert!(run.is_degraded());
        assert_eq!(run.completed, 10);
        let fixed = measure_configuration_with(
            &net,
            &threat,
            config,
            &plan.with_batches(2),
            Executor::default(),
        );
        let m = run.measurements.expect("two rounds completed");
        assert_eq!(
            m.summary.p_success.to_bits(),
            fixed.summary.p_success.to_bits()
        );
        assert_eq!(m.batch_p_success, fixed.batch_p_success);
    }

    #[test]
    fn splitting_measurement_brackets_plain_estimate_and_is_deterministic() {
        let net = scope_network();
        let threat = ThreatModel::stuxnet_like();
        let config = CampaignConfig::default();
        // Non-rare monoculture point: splitting must agree with the
        // plain fixed-plan estimate within Monte-Carlo noise.
        let plain = measure_configuration(&net, &threat, config, 10, 40, 0xACE);
        let split = measure_configuration_splitting(
            &net,
            &threat,
            config,
            400,
            0xACE,
            Executor::serial(),
            0.95,
        )
        .expect("valid configuration");
        assert!(
            (split.estimate - plain.summary.p_success).abs() < 0.1,
            "splitting {} vs plain {}",
            split.estimate,
            plain.summary.p_success
        );
        assert_eq!(split.milestones.len(), split.levels.len());
        assert!(split.ci.lower <= split.estimate && split.estimate <= split.ci.upper);
        assert!(split.total_ticks > 0);

        let parallel = measure_configuration_splitting(
            &net,
            &threat,
            config,
            400,
            0xACE,
            Executor::parallel(),
            0.95,
        )
        .expect("valid configuration");
        assert_eq!(split.estimate.to_bits(), parallel.estimate.to_bits());
        assert_eq!(split.levels, parallel.levels);
    }

    #[test]
    fn splitting_measurement_rejects_bad_configuration() {
        let net = scope_network();
        let threat = ThreatModel::stuxnet_like();
        assert!(matches!(
            measure_configuration_splitting(
                &net,
                &threat,
                CampaignConfig::default(),
                100,
                1,
                Executor::serial(),
                1.5,
            ),
            Err(PipelineError::InvalidLevel(_))
        ));
        assert!(matches!(
            measure_configuration_splitting(
                &net,
                &threat,
                CampaignConfig::default(),
                0,
                1,
                Executor::serial(),
                0.95,
            ),
            Err(PipelineError::Plan(_))
        ));
    }

    #[test]
    fn adaptive_splitting_pilots_placement_and_stays_deterministic() {
        let net = scope_network();
        let threat = ThreatModel::stuxnet_like();
        let config = CampaignConfig {
            max_ticks: 48,
            detection_stops_attack: true,
        };
        let run = |executor, lanes| {
            measure_configuration_splitting_adaptive(
                &net, &threat, config, 256, 0xADA7, executor, 0.95, 64, lanes,
            )
            .expect("valid configuration")
        };

        let serial = run(Executor::serial(), 8);
        assert!(matches!(
            serial.placement,
            Some(MilestonePlacement::Piloted { .. } | MilestonePlacement::FixedFallback { .. })
        ));
        assert_eq!(serial.milestones.len(), serial.levels.len());
        assert_eq!(
            serial.milestones.last(),
            Some(&CampaignMilestone::GoalReached)
        );
        assert!(serial.ci.lower <= serial.estimate && serial.estimate <= serial.ci.upper);

        // Lane count and executor are pure cost knobs: the estimate,
        // level record, and placement are bit-identical across them.
        let parallel = run(Executor::parallel(), 8);
        assert_eq!(serial.estimate.to_bits(), parallel.estimate.to_bits());
        assert_eq!(serial.levels, parallel.levels);
        assert_eq!(serial.placement, parallel.placement);

        let scalar_lanes = run(Executor::serial(), 1);
        assert_eq!(serial.estimate.to_bits(), scalar_lanes.estimate.to_bits());
        assert_eq!(serial.levels, scalar_lanes.levels);
        assert_eq!(serial.milestones, scalar_lanes.milestones);
    }

    #[test]
    fn adaptive_splitting_rejects_bad_level() {
        let net = scope_network();
        assert!(matches!(
            measure_configuration_splitting_adaptive(
                &net,
                &ThreatModel::stuxnet_like(),
                CampaignConfig::default(),
                64,
                1,
                Executor::serial(),
                0.0,
                16,
                4,
            ),
            Err(PipelineError::InvalidLevel(_))
        ));
    }

    #[test]
    fn try_with_level_rejects_degenerate_levels() {
        let target = PrecisionTarget::p_success(0.05, 10, 100);
        assert!(target.try_with_level(0.99).is_ok());
        assert!(matches!(
            target.try_with_level(0.0),
            Err(PipelineError::InvalidLevel(_))
        ));
        assert!(matches!(
            target.try_with_level(1.0),
            Err(PipelineError::InvalidLevel(_))
        ));
        assert!(matches!(
            target.try_with_level(f64::NAN),
            Err(PipelineError::InvalidLevel(_))
        ));
    }

    #[test]
    #[should_panic(expected = "(0,1)")]
    fn with_level_still_panics_on_bad_level() {
        let _ = PrecisionTarget::p_success(0.05, 10, 100).with_level(2.0);
    }

    #[test]
    #[should_panic(expected = "non-empty batch plan")]
    fn zero_batches_panics() {
        let net = scope_network();
        let _ = measure_configuration(
            &net,
            &ThreatModel::stuxnet_like(),
            CampaignConfig::default(),
            0,
            5,
            1,
        );
    }
}
