//! Content addressing for measurement requests.
//!
//! A [`ContentKey`] names a computation by *what* it measures — the
//! serialized value of its configuration — rather than by where or when
//! it ran. Two requests with bit-identical configurations hash to the
//! same key no matter which process built them, which is what lets the
//! serve crate's memo store coalesce duplicate requests and lets the
//! pipeline skip re-simulating duplicated design points.
//!
//! Keys are computed by a canonical walk of the
//! [`serde::Value`] tree: every node contributes a type
//! tag, lengths are folded before contents, and floats contribute their
//! exact IEEE bits (so `0.1 + 0.2` and `0.3` correctly key
//! *differently*). Two independent 64-bit FNV-1a streams over the same
//! walk make accidental collisions across a realistic corpus of
//! configurations vanishingly unlikely (~2⁻¹²⁸ per pair) without pulling
//! in a cryptographic hash. Object fields hash in serialization order —
//! canonical for derived `Serialize` impls, whose field order is fixed
//! by the type definition.

use serde::{Number, Serialize, Value};
use std::fmt;

/// A 128-bit content address: the canonical hash of a serializable
/// configuration. Stable across processes and machines (the walk depends
/// only on the value tree, never on addresses or iteration order of
/// runtime structures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentKey {
    hi: u64,
    lo: u64,
}

impl ContentKey {
    /// The key of `value`'s serialized form.
    #[must_use]
    pub fn of<T: Serialize + ?Sized>(value: &T) -> ContentKey {
        let mut walk = Walk::new();
        walk.value(&value.to_json_value());
        ContentKey {
            hi: walk.hi,
            lo: walk.lo,
        }
    }

    /// The key as a fixed-width hex string (for logs and file names).
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{self}")
    }
}

impl fmt::Display for ContentKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Two decorrelated FNV-1a streams over one canonical byte walk. The
/// second stream starts from a different offset basis and prepends a
/// domain byte, so the two 64-bit halves behave as independent hashes of
/// the same input.
struct Walk {
    hi: u64,
    lo: u64,
}

impl Walk {
    fn new() -> Walk {
        let mut walk = Walk {
            hi: FNV_OFFSET,
            lo: FNV_OFFSET ^ 0x9E37_79B9_7F4A_7C15,
        };
        walk.byte(0xD1);
        walk
    }

    fn byte(&mut self, b: u8) {
        self.hi = (self.hi ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        self.lo = (self.lo ^ u64::from(b.rotate_left(3))).wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.byte(0),
            Value::Bool(false) => self.byte(1),
            Value::Bool(true) => self.byte(2),
            Value::Number(Number::U(n)) => {
                self.byte(3);
                self.u64(*n);
            }
            Value::Number(Number::I(n)) => {
                // Non-negative ints hash as their unsigned twin so a
                // value keys identically however the serializer spelled
                // it (the vendored serde emits `U` for any i64 ≥ 0).
                if *n >= 0 {
                    self.byte(3);
                    self.u64(*n as u64);
                } else {
                    self.byte(4);
                    self.u64(*n as u64);
                }
            }
            Value::Number(Number::F(x)) => {
                self.byte(5);
                self.u64(x.to_bits());
            }
            Value::String(s) => {
                self.byte(6);
                self.u64(s.len() as u64);
                self.bytes(s.as_bytes());
            }
            Value::Array(items) => {
                self.byte(7);
                self.u64(items.len() as u64);
                for item in items {
                    self.value(item);
                }
            }
            Value::Object(fields) => {
                self.byte(8);
                self.u64(fields.len() as u64);
                for (key, value) in fields {
                    self.u64(key.len() as u64);
                    self.bytes(key.as_bytes());
                    self.value(value);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversify_attack::campaign::ThreatModel;
    use diversify_scada::scope::ScopeConfig;

    #[test]
    fn equal_configs_key_equal_and_unequal_key_unequal() {
        let a = ScopeConfig::default();
        let b = ScopeConfig::default();
        assert_eq!(ContentKey::of(&a), ContentKey::of(&b));
        let mut c = ScopeConfig::default();
        c.setpoint += 0.5;
        assert_ne!(ContentKey::of(&a), ContentKey::of(&c));
        // A change below any decimal rendering still changes the key:
        // floats hash by exact bits.
        let mut d = ScopeConfig::default();
        d.setpoint = f64::from_bits(d.setpoint.to_bits() + 1);
        assert_ne!(ContentKey::of(&a), ContentKey::of(&d));
    }

    #[test]
    fn keys_are_stable_across_value_rebuilds() {
        let threat = ThreatModel::stuxnet_like();
        let first = ContentKey::of(&threat);
        let second = ContentKey::of(&threat.clone());
        assert_eq!(first, second);
        assert_eq!(first.to_hex().len(), 32);
        assert_ne!(first, ContentKey::of(&ThreatModel::duqu_like()));
    }

    #[test]
    fn tuple_keys_separate_components() {
        // (a, b) must never collide with (b, a) or with a bare a.
        let a = ScopeConfig::default();
        let t = ThreatModel::stuxnet_like();
        let ab = ContentKey::of(&vec![
            serde::Serialize::to_json_value(&a.racks),
            serde::Serialize::to_json_value(&t.name),
        ]);
        let ba = ContentKey::of(&vec![
            serde::Serialize::to_json_value(&t.name),
            serde::Serialize::to_json_value(&a.racks),
        ]);
        assert_ne!(ab, ba);
    }
}
