//! # diversify-core
//!
//! The primary contribution of *"Towards Secure Monitoring and Control
//! Systems: Diversify!"* (DSN 2013) as a library: a three-step modeling
//! and evaluation pipeline that quantifies how component diversity changes
//! the effort a Stuxnet-like attack requires.
//!
//! The three steps (the paper's Figure 1):
//!
//! 1. **Attack Modeling** ([`pipeline::Pipeline::attack_modeling`]) —
//!    formalize the staged attack against the modeled system;
//! 2. **DoE & Measurements** ([`pipeline::Pipeline::doe_measurements`]) —
//!    choose a fractional-factorial set of diversity configurations and
//!    measure the security indicators on each by Monte-Carlo campaign
//!    simulation;
//! 3. **Diversity Assessment** ([`pipeline::Pipeline::assess`]) — ANOVA
//!    the measurements to allocate indicator variance to the component
//!    classes responsible, ranking what is worth diversifying.
//!
//! Security indicators ([`indicators`]): probability of successful attack,
//! **Time-To-Attack**, **Time-To-Security-Failure**, and the
//! **compromised ratio** — aggregated by streaming, mergeable
//! accumulators, so measurement can run under a fixed replication budget
//! or adaptively until a precision target is met
//! ([`runner::measure_configuration_adaptive`],
//! [`PipelineConfig::precision`](pipeline::PipelineConfig::precision)),
//! or — for design points whose P_SA is too rare for plain Monte-Carlo —
//! by multilevel splitting over campaign milestones
//! ([`runner::measure_configuration_splitting`],
//! [`PipelineConfig::rare_event`](pipeline::PipelineConfig::rare_event)).
//!
//! ## Quick start
//!
//! ```no_run
//! use diversify_core::pipeline::{Pipeline, PipelineConfig};
//!
//! let pipeline = Pipeline::new(PipelineConfig::default());
//! let report = pipeline.run();
//! println!("{report}");
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::disallowed_methods))]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod content;
pub mod error;
pub mod exec;
pub mod factors;
pub mod indicators;
pub mod pipeline;
pub mod report;
pub mod runner;

pub use content::ContentKey;
pub use diversify_attack::campaign::MilestonePlacement;
pub use error::PipelineError;
pub use exec::{
    AdaptiveRun, Budget, BudgetOutcome, CancelToken, Collector, ExecMode, Executor, PartialRun,
    PlanError, Precision, ReplicationFailure, ReplicationPlan, RetryPolicy, RunPolicy, StopRule,
};
pub use factors::{factor_profile, FactorLevel};
pub use indicators::{IndicatorAccum, IndicatorSummary, PrecisionResponse};
pub use pipeline::{
    CellHealth, DoeMeasurements, Pipeline, PipelineConfig, PipelineReport, RareEventTarget,
};
pub use runner::{
    measure_configuration, measure_configuration_adaptive, measure_configuration_adaptive_budgeted,
    measure_configuration_budgeted, measure_configuration_splitting,
    measure_configuration_splitting_adaptive, measure_configuration_with, AdaptiveMeasurements,
    Measurements, PartialMeasurements, PrecisionTarget, SplittingMeasurements,
};
