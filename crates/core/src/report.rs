//! Report rendering: aligned text tables and JSON artifacts.

use crate::pipeline::{AdaptiveSweepPoint, CellHealth};
use crate::runner::{Measurements, SplittingMeasurements};
use diversify_doe::design::DesignMatrix;
use serde::Serialize;
use std::fmt::Write as _;

/// Renders the DoE measurement table (one row per design run).
#[must_use]
pub fn render_measurement_table(design: &DesignMatrix, measurements: &[Measurements]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:>3}", "run");
    for f in &design.factors {
        let _ = write!(out, " {f:>9}");
    }
    let _ = writeln!(
        out,
        " {:>8} {:>9} {:>10} {:>11}",
        "P_SA", "TTA(h)", "TTSF(h)", "compromised"
    );
    for (i, m) in measurements.iter().enumerate() {
        let _ = write!(out, "{i:>3}");
        for j in 0..design.factor_count() {
            let _ = write!(
                out,
                " {:>9}",
                if design.level(i, j) == 1 { "+1" } else { "-1" }
            );
        }
        let s = &m.summary;
        let _ = writeln!(
            out,
            " {:>8.3} {:>9} {:>10} {:>11.3}",
            s.p_success,
            s.mean_tta.map_or("-".to_string(), |v| format!("{v:.1}")),
            s.mean_ttsf.map_or("-".to_string(), |v| format!("{v:.1}")),
            s.mean_compromised_ratio,
        );
    }
    out
}

/// Renders the adaptive-replication report of a precision-targeted
/// sweep: replications spent and confidence-interval half-width achieved
/// per design run.
#[must_use]
pub fn render_adaptive_table(points: &[AdaptiveSweepPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "adaptive replication (per design run):");
    let _ = writeln!(
        out,
        "{:>3} {:>6} {:>8} {:>10} {:>10} {:>7}",
        "run", "reps", "batches", "estimate", "halfwidth", "met"
    );
    for (i, p) in points.iter().enumerate() {
        let (est, hw) = p
            .precision
            .map_or(("-".to_string(), "-".to_string()), |pr| {
                (
                    format!("{:.4}", pr.estimate),
                    format!("{:.4}", pr.half_width),
                )
            });
        let _ = writeln!(
            out,
            "{i:>3} {:>6} {:>8} {est:>10} {hw:>10} {:>7}",
            p.replications,
            p.batches,
            if p.target_met { "yes" } else { "cap" }
        );
    }
    out
}

/// Renders the fault-tolerance report of a resilient sweep: per design
/// run, replications attempted and completed, failures isolated, how the
/// cell's budget ended, and whether the cell is degraded.
#[must_use]
pub fn render_health_table(cells: &[CellHealth]) -> String {
    let mut out = String::new();
    let degraded = cells.iter().filter(|c| c.is_degraded()).count();
    let _ = writeln!(
        out,
        "cell health (per design run): {} of {} degraded",
        degraded,
        cells.len()
    );
    let _ = writeln!(
        out,
        "{:>3} {:>9} {:>9} {:>8} {:>18} {:>8}",
        "run", "attempted", "completed", "failed", "outcome", "status"
    );
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "{i:>3} {:>9} {:>9} {:>8} {:>18} {:>8}",
            c.attempted,
            c.completed,
            c.failures.len(),
            c.budget_outcome.to_string(),
            if c.is_degraded() { "DEGRADED" } else { "ok" }
        );
    }
    out
}

/// Renders the rare-event report of a splitting-instrumented sweep: per
/// design run, the multilevel-splitting P_SA estimate with its
/// product-of-conditionals confidence interval, the survivor trace
/// across levels, and the tick cost.
#[must_use]
pub fn render_rare_event_table(points: &[SplittingMeasurements]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "rare-event splitting (per design run):");
    let _ = writeln!(
        out,
        "{:>3} {:>10} {:>10} {:>10} {:>18} {:>10}",
        "run", "estimate", "ci-lower", "ci-upper", "survivors/level", "ticks"
    );
    for (i, p) in points.iter().enumerate() {
        let trace = p
            .levels
            .iter()
            .map(|l| l.survivors.to_string())
            .collect::<Vec<_>>()
            .join("/");
        let _ = writeln!(
            out,
            "{i:>3} {:>10.3e} {:>10.3e} {:>10.3e} {trace:>18} {:>10}",
            p.estimate, p.ci.lower, p.ci.upper, p.total_ticks
        );
    }
    out
}

/// Renders any serializable artifact as pretty JSON (for EXPERIMENTS.md
/// appendices and machine-readable archives).
///
/// # Panics
///
/// Panics if the value fails to serialize, which cannot happen for the
/// plain-data types in this workspace.
#[must_use]
pub fn to_json<T: Serialize>(value: &T) -> String {
    // Serialization of the workspace's plain-data report types cannot
    // fail (no maps with non-string keys, no fallible Serialize impls).
    #[allow(clippy::disallowed_methods)]
    serde_json::to_string_pretty(value).expect("plain data serializes")
}

/// A minimal fixed-width series printer: renders `(x, y)` pairs as two
/// aligned columns, used by the benchmark harness to emit "figure" data.
#[must_use]
pub fn render_series(title: &str, x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(out, "{x_label:>12} {y_label:>14}");
    for (x, y) in points {
        let _ = writeln!(out, "{x:>12.4} {y:>14.6}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_renders_points() {
        let s = render_series("t", "x", "y", &[(1.0, 2.0), (3.0, 4.0)]);
        assert!(s.contains("# t"));
        assert!(s.contains("1.0000"));
        assert!(s.contains("4.000000"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn health_table_flags_degraded_cells() {
        use crate::exec::BudgetOutcome;
        let cells = vec![
            CellHealth {
                attempted: 8,
                completed: 8,
                failures: Vec::new(),
                budget_outcome: BudgetOutcome::Completed,
            },
            CellHealth {
                attempted: 4,
                completed: 4,
                failures: Vec::new(),
                budget_outcome: BudgetOutcome::DeadlineExpired,
            },
        ];
        let table = render_health_table(&cells);
        assert!(table.contains("1 of 2 degraded"));
        assert!(table.contains("DEGRADED"));
        assert!(table.contains("deadline expired"));
        assert!(table.lines().count() == 4);
    }

    #[test]
    fn json_round_trips_summary_shape() {
        #[derive(Serialize)]
        struct S {
            a: u32,
        }
        let j = to_json(&S { a: 7 });
        assert!(j.contains("\"a\": 7"));
    }
}
