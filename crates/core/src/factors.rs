//! Mapping between DoE factor levels and component profiles.
//!
//! Each DoE factor is one [`ComponentClass`]; level `-1` deploys the
//! weakest (most widespread) variant of that class system-wide, level `+1`
//! the strongest. A design row therefore fully determines a
//! [`ComponentProfile`] baseline for the plant.

use diversify_scada::components::{
    ComponentClass, ComponentProfile, FirewallPolicy, HistorianStack, OsVariant, PlcFirmware,
    SensorVendor,
};
use diversify_scada::protocol::dialect::ProtocolDialect;

/// A coded two-level factor setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorLevel {
    /// The weak / commodity variant (coded −1).
    Low,
    /// The hardened / diversified variant (coded +1).
    High,
}

impl FactorLevel {
    /// Decodes a design-matrix level.
    ///
    /// # Panics
    ///
    /// Panics on values other than ±1.
    #[must_use]
    pub fn from_coded(level: i8) -> Self {
        match level {
            -1 => FactorLevel::Low,
            1 => FactorLevel::High,
            other => panic!("invalid coded level {other}"),
        }
    }
}

/// Builds the system-wide baseline profile for one design row.
///
/// `levels[i]` is the level of factor `ComponentClass::ALL[i]`; the
/// returned profile uses the weak variant for `Low` classes and the strong
/// variant for `High` classes.
///
/// # Panics
///
/// Panics if `levels.len() != 6`.
#[must_use]
pub fn factor_profile(levels: &[FactorLevel]) -> ComponentProfile {
    assert_eq!(
        levels.len(),
        ComponentClass::ALL.len(),
        "one level per component class"
    );
    let mut p = ComponentProfile::default();
    for (class, &level) in ComponentClass::ALL.iter().zip(levels) {
        if level == FactorLevel::Low {
            continue;
        }
        match class {
            ComponentClass::OperatingSystem => p.os = OsVariant::HardenedRtos,
            ComponentClass::PlcFirmware => p.plc_firmware = PlcFirmware::Verified,
            ComponentClass::ProtocolDialect => p.dialect = ProtocolDialect::Authenticated,
            ComponentClass::Firewall => p.firewall = FirewallPolicy::Strict,
            ComponentClass::Sensor => p.sensor = SensorVendor::Authenticated,
            ComponentClass::Historian => p.historian = HistorianStack::OpenTelemetry,
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_low_is_default() {
        let p = factor_profile(&[FactorLevel::Low; 6]);
        assert_eq!(p, ComponentProfile::default());
    }

    #[test]
    fn all_high_is_hardened() {
        let p = factor_profile(&[FactorLevel::High; 6]);
        assert_eq!(p, ComponentProfile::hardened());
    }

    #[test]
    fn single_high_touches_one_class() {
        let mut levels = [FactorLevel::Low; 6];
        levels[2] = FactorLevel::High; // ProtocolDialect
        let p = factor_profile(&levels);
        assert_eq!(p.dialect, ProtocolDialect::Authenticated);
        assert_eq!(p.os, ComponentProfile::default().os);
        assert_eq!(p.firewall, ComponentProfile::default().firewall);
    }

    #[test]
    fn coded_level_round_trip() {
        assert_eq!(FactorLevel::from_coded(-1), FactorLevel::Low);
        assert_eq!(FactorLevel::from_coded(1), FactorLevel::High);
    }

    #[test]
    #[should_panic(expected = "invalid coded level")]
    fn bad_coded_level_panics() {
        let _ = FactorLevel::from_coded(0);
    }

    #[test]
    #[should_panic(expected = "one level per")]
    fn wrong_arity_panics() {
        let _ = factor_profile(&[FactorLevel::Low; 3]);
    }
}
