//! # diversify-stats
//!
//! The statistics substrate of the *Diversify!* (DSN 2013) reproduction.
//!
//! The paper's third step — *Diversity Assessment* — applies **ANOVA** to
//! allocate the variability of security indicators (measured across the
//! system configurations chosen by DoE) to the HW/SW components responsible
//! for it. This crate implements everything that step needs, from scratch:
//!
//! * [`special`] — log-gamma, regularized incomplete beta/gamma, erf;
//! * [`dist`] — normal, Student-t, F and chi-square distributions with
//!   CDFs and quantile functions;
//! * [`describe`] — descriptive statistics and quantile estimation;
//! * [`ci`] — confidence intervals (t-based, Wilson proportion, and the
//!   product-of-proportions interval behind multilevel splitting);
//! * [`anova`] — one-way ANOVA and n-way ANOVA for two-level factorial
//!   designs, with variance-explained allocation per factor;
//! * [`effect`] — effect sizes (Cohen's d, eta squared);
//! * [`rank`] — the Mann–Whitney U test (a non-parametric cross-check);
//! * [`bootstrap`] — percentile bootstrap confidence intervals;
//! * [`stream`] — mergeable streaming accumulators ([`StreamingSummary`],
//!   [`BernoulliCounter`]) with moment-based confidence intervals, the
//!   substrate of the adaptive-precision replication path.
//!
//! ## Example: one-way ANOVA
//!
//! ```
//! use diversify_stats::anova::one_way;
//!
//! // Three OS variants, time-to-attack samples (hours).
//! let groups: Vec<Vec<f64>> = vec![
//!     vec![10.0, 11.0, 9.5, 10.5],
//!     vec![20.0, 21.0, 19.0, 20.5],
//!     vec![15.0, 16.0, 14.0, 15.5],
//! ];
//! let refs: Vec<&[f64]> = groups.iter().map(|g| g.as_slice()).collect();
//! let table = one_way(&refs).unwrap();
//! assert!(table.p_value < 0.001); // variant clearly matters
//! ```

#![warn(missing_docs)]
// The unwrap/expect ban (clippy.toml `disallowed-methods`) is the
// fault-tolerance discipline of `diversify-des`/`diversify-core`; this
// crate predates it and is exercised through those hardened seams.
#![allow(clippy::disallowed_methods)]

pub mod anova;
pub mod bootstrap;
pub mod ci;
pub mod describe;
pub mod dist;
pub mod effect;
pub mod error;
pub mod rank;
pub mod special;
pub mod stream;

pub use anova::{factorial_two_level, one_way, AnovaRow, AnovaTable, FactorialAnova};
pub use bootstrap::{bootstrap_ci, bootstrap_ci_sorted};
pub use ci::{mean_ci, product_proportion_ci, proportion_ci, ConfidenceInterval};
pub use describe::Summary;
pub use dist::{ChiSquared, Distribution, FisherF, Normal, StudentT};
pub use effect::{cohens_d, eta_squared};
pub use error::StatsError;
pub use rank::mann_whitney_u;
pub use stream::{BernoulliCounter, RawMoments, StreamingSummary};
