//! Descriptive statistics and quantile estimation.

use crate::error::StatsError;
use std::fmt;

/// A five-number-plus summary of a sample: count, mean, standard deviation,
/// min, quartiles, max.
///
/// # Examples
///
/// ```
/// use diversify_stats::Summary;
///
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
/// assert_eq!(s.mean(), 3.0);
/// assert_eq!(s.median(), 3.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    n: usize,
    mean: f64,
    sd: f64,
    min: f64,
    q1: f64,
    median: f64,
    q3: f64,
    max: f64,
}

impl Summary {
    /// Computes a summary of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] when `data` is empty, or
    /// [`StatsError::InvalidParameter`] if it contains non-finite values.
    pub fn from_slice(data: &[f64]) -> Result<Self, StatsError> {
        if data.is_empty() {
            return Err(StatsError::InsufficientData {
                needed: "at least one observation",
            });
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::InvalidParameter {
                what: "observations must be finite",
            });
        }
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let sd = if n > 1 {
            (data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Ok(Summary {
            n,
            mean,
            sd,
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            max: sorted[n - 1],
        })
    }

    /// Sample size.
    #[must_use]
    pub fn count(&self) -> usize {
        self.n
    }
    /// Sample mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }
    /// Sample standard deviation (n−1 denominator).
    #[must_use]
    pub fn sd(&self) -> f64 {
        self.sd
    }
    /// Minimum.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }
    /// First quartile (type-7 interpolation).
    #[must_use]
    pub fn q1(&self) -> f64 {
        self.q1
    }
    /// Median.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.median
    }
    /// Third quartile.
    #[must_use]
    pub fn q3(&self) -> f64 {
        self.q3
    }
    /// Maximum.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
    /// Interquartile range.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
    /// Coefficient of variation (sd / mean); `None` when the mean is zero.
    #[must_use]
    pub fn cv(&self) -> Option<f64> {
        if self.mean == 0.0 {
            None
        } else {
            Some(self.sd / self.mean.abs())
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} q1={:.4} med={:.4} q3={:.4} max={:.4}",
            self.n, self.mean, self.sd, self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// Linear-interpolation quantile (R type 7) of **sorted** data.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` outside `[0, 1]`.
#[must_use]
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = (n - 1) as f64 * p;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Quantile of unsorted data (sorts a copy).
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for an empty sample.
pub fn quantile(data: &[f64], p: f64) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::InsufficientData {
            needed: "at least one observation",
        });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    Ok(quantile_sorted(&sorted, p))
}

/// Sample mean.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for an empty sample.
pub fn mean(data: &[f64]) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::InsufficientData {
            needed: "at least one observation",
        });
    }
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Unbiased sample variance.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] when fewer than two
/// observations are provided.
pub fn variance(data: &[f64]) -> Result<f64, StatsError> {
    if data.len() < 2 {
        return Err(StatsError::InsufficientData {
            needed: "at least two observations",
        });
    }
    let m = mean(data)?;
    Ok(data.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (data.len() - 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert!((s.sd() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::from_slice(&[42.0]).unwrap();
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.sd(), 0.0);
        assert_eq!(s.median(), 42.0);
        assert_eq!(s.iqr(), 0.0);
    }

    #[test]
    fn summary_rejects_empty_and_nan() {
        assert!(Summary::from_slice(&[]).is_err());
        assert!(Summary::from_slice(&[1.0, f64::NAN]).is_err());
        assert!(Summary::from_slice(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn median_even_odd() {
        let odd = Summary::from_slice(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(odd.median(), 2.0);
        let even = Summary::from_slice(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(even.median(), 2.5);
    }

    #[test]
    fn quantile_type7_matches_r() {
        // R: quantile(1:10, c(.25,.5,.75)) -> 3.25, 5.50, 7.75
        let data: Vec<f64> = (1..=10).map(f64::from).collect();
        assert!((quantile(&data, 0.25).unwrap() - 3.25).abs() < 1e-12);
        assert!((quantile(&data, 0.5).unwrap() - 5.5).abs() < 1e-12);
        assert!((quantile(&data, 0.75).unwrap() - 7.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_extremes_are_min_max() {
        let data = [5.0, 1.0, 9.0];
        assert_eq!(quantile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&data, 1.0).unwrap(), 9.0);
    }

    #[test]
    fn cv_none_for_zero_mean() {
        let s = Summary::from_slice(&[-1.0, 1.0]).unwrap();
        assert!(s.cv().is_none());
        let s2 = Summary::from_slice(&[2.0, 4.0]).unwrap();
        assert!(s2.cv().is_some());
    }

    #[test]
    fn mean_variance_errors() {
        assert!(mean(&[]).is_err());
        assert!(variance(&[1.0]).is_err());
        assert!((variance(&[1.0, 3.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_contains_fields() {
        let s = Summary::from_slice(&[1.0, 2.0]).unwrap();
        let out = s.to_string();
        assert!(out.contains("n=2"));
        assert!(out.contains("mean="));
    }
}
