//! Confidence intervals for means and proportions.

use crate::dist::{Distribution, Normal};
use crate::error::StatsError;
use crate::stream::StreamingSummary;
use std::fmt;

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub estimate: f64,
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
    /// Confidence level in `(0, 1)`, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    #[must_use]
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Whether `value` lies inside the interval (inclusive).
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.6} [{:.6}, {:.6}] @ {:.0}%",
            self.estimate,
            self.lower,
            self.upper,
            self.level * 100.0
        )
    }
}

/// Student-t confidence interval for the mean of `data`.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for fewer than two
/// observations and [`StatsError::InvalidParameter`] for a level outside
/// `(0, 1)`.
///
/// # Examples
///
/// ```
/// use diversify_stats::mean_ci;
/// let ci = mean_ci(&[9.8, 10.1, 10.0, 9.9, 10.2], 0.95).unwrap();
/// assert!(ci.contains(10.0));
/// ```
pub fn mean_ci(data: &[f64], level: f64) -> Result<ConfidenceInterval, StatsError> {
    let moments: StreamingSummary = data.iter().copied().collect();
    moments.mean_ci(level)
}

/// Wilson score interval for a binomial proportion — used for the
/// probability-of-successful-attack indicator, which is an average of
/// Bernoulli replication outcomes.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] when `trials` is zero,
/// [`StatsError::InvalidParameter`] when `successes > trials` or the level
/// is out of range.
///
/// # Examples
///
/// ```
/// use diversify_stats::proportion_ci;
/// let ci = proportion_ci(80, 100, 0.95).unwrap();
/// assert!(ci.contains(0.8));
/// assert!(ci.lower > 0.7 && ci.upper < 0.88);
/// ```
pub fn proportion_ci(
    successes: u64,
    trials: u64,
    level: f64,
) -> Result<ConfidenceInterval, StatsError> {
    if trials == 0 {
        return Err(StatsError::InsufficientData {
            needed: "at least one trial",
        });
    }
    if successes > trials {
        return Err(StatsError::InvalidParameter {
            what: "successes cannot exceed trials",
        });
    }
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidParameter {
            what: "confidence level must be in (0,1)",
        });
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = Normal::standard().quantile(0.5 + level / 2.0);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    Ok(ConfidenceInterval {
        estimate: p,
        lower: (centre - half).max(0.0),
        upper: (centre + half).min(1.0),
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ci_matches_hand_computation() {
        // data mean 10, sd 1, n 4 => se 0.5, t_{0.975,3} = 3.1824.
        let data = [9.0, 10.0, 10.0, 11.0];
        let ci = mean_ci(&data, 0.95).unwrap();
        assert!((ci.estimate - 10.0).abs() < 1e-12);
        let sd = (2.0f64 / 3.0).sqrt();
        let expected_hw = 3.182_446 * sd / 2.0;
        assert!((ci.half_width() - expected_hw).abs() < 1e-4);
    }

    #[test]
    fn mean_ci_widens_with_level() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let narrow = mean_ci(&data, 0.90).unwrap();
        let wide = mean_ci(&data, 0.99).unwrap();
        assert!(wide.half_width() > narrow.half_width());
        assert_eq!(narrow.estimate, wide.estimate);
    }

    #[test]
    fn mean_ci_validation() {
        assert!(mean_ci(&[1.0], 0.95).is_err());
        assert!(mean_ci(&[1.0, 2.0], 1.5).is_err());
        assert!(mean_ci(&[1.0, 2.0], 0.0).is_err());
    }

    #[test]
    fn proportion_ci_half() {
        let ci = proportion_ci(50, 100, 0.95).unwrap();
        assert!((ci.estimate - 0.5).abs() < 1e-12);
        // Wilson 95% for 50/100 ≈ [0.4038, 0.5962].
        assert!((ci.lower - 0.4038).abs() < 5e-3);
        assert!((ci.upper - 0.5962).abs() < 5e-3);
    }

    #[test]
    fn proportion_ci_extremes_stay_in_unit_interval() {
        let zero = proportion_ci(0, 20, 0.95).unwrap();
        assert_eq!(zero.estimate, 0.0);
        assert!(zero.lower >= 0.0);
        assert!(zero.upper > 0.0, "Wilson never collapses at 0");
        let one = proportion_ci(20, 20, 0.95).unwrap();
        assert!(one.lower < 1.0);
        assert!(one.upper <= 1.0);
    }

    #[test]
    fn proportion_ci_validation() {
        assert!(proportion_ci(1, 0, 0.95).is_err());
        assert!(proportion_ci(5, 4, 0.95).is_err());
        assert!(proportion_ci(1, 2, -0.1).is_err());
    }

    #[test]
    fn contains_and_display() {
        let ci = mean_ci(&[1.0, 2.0, 3.0], 0.95).unwrap();
        assert!(ci.contains(2.0));
        assert!(!ci.contains(100.0));
        assert!(ci.to_string().contains("95%"));
    }
}
