//! Confidence intervals for means and proportions.

use crate::dist::{Distribution, Normal};
use crate::error::StatsError;
use crate::stream::StreamingSummary;
use std::fmt;

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub estimate: f64,
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
    /// Confidence level in `(0, 1)`, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    #[must_use]
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Whether `value` lies inside the interval (inclusive).
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.6} [{:.6}, {:.6}] @ {:.0}%",
            self.estimate,
            self.lower,
            self.upper,
            self.level * 100.0
        )
    }
}

/// Student-t confidence interval for the mean of `data`.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for fewer than two
/// observations and [`StatsError::InvalidParameter`] for a level outside
/// `(0, 1)`.
///
/// # Examples
///
/// ```
/// use diversify_stats::mean_ci;
/// let ci = mean_ci(&[9.8, 10.1, 10.0, 9.9, 10.2], 0.95).unwrap();
/// assert!(ci.contains(10.0));
/// ```
pub fn mean_ci(data: &[f64], level: f64) -> Result<ConfidenceInterval, StatsError> {
    let moments: StreamingSummary = data.iter().copied().collect();
    moments.mean_ci(level)
}

/// Wilson score interval for a binomial proportion — used for the
/// probability-of-successful-attack indicator, which is an average of
/// Bernoulli replication outcomes.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] when `trials` is zero,
/// [`StatsError::InvalidParameter`] when `successes > trials` or the level
/// is out of range.
///
/// # Examples
///
/// ```
/// use diversify_stats::proportion_ci;
/// let ci = proportion_ci(80, 100, 0.95).unwrap();
/// assert!(ci.contains(0.8));
/// assert!(ci.lower > 0.7 && ci.upper < 0.88);
/// ```
pub fn proportion_ci(
    successes: u64,
    trials: u64,
    level: f64,
) -> Result<ConfidenceInterval, StatsError> {
    if trials == 0 {
        return Err(StatsError::InsufficientData {
            needed: "at least one trial",
        });
    }
    if successes > trials {
        return Err(StatsError::InvalidParameter {
            what: "successes cannot exceed trials",
        });
    }
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidParameter {
            what: "confidence level must be in (0,1)",
        });
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = Normal::standard().quantile(0.5 + level / 2.0);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    // At the degenerate corners the Wilson bound is analytically exact
    // (lower = 0 at 0/n, upper = 1 at n/n) but the float evaluation
    // above can overshoot by an ulp or produce −0.0. Rare-event strata
    // hit these corners on every run, so pin the exact endpoint and
    // clamp the other bound so `0 ≤ lower ≤ estimate ≤ upper ≤ 1`
    // holds exactly for every input.
    let lower = if successes == 0 {
        0.0
    } else {
        (centre - half).clamp(0.0, p)
    };
    let upper = if successes == trials {
        1.0
    } else {
        (centre + half).clamp(p, 1.0)
    };
    Ok(ConfidenceInterval {
        estimate: p,
        lower,
        upper,
        level,
    })
}

/// Confidence interval for a product of independent binomial
/// proportions — the estimator shape of multilevel splitting, where the
/// rare-event probability is the product of per-level conditional
/// success fractions `Π kℓ/nℓ`.
///
/// When every level is interior (`0 < kℓ < nℓ`) the interval comes from
/// the delta method on the log scale: `Var(log p̂ℓ) ≈ (1 − p̂ℓ)/(nℓ p̂ℓ)`
/// summed over levels, exponentiated back. When any level sits on a
/// degenerate corner (zero or full successes — where the log-scale
/// variance is undefined) the interval falls back to a conservative
/// product of per-level Wilson bounds at the Šidák-adjusted confidence
/// `level^(1/L)`, which remains a valid simultaneous bound and keeps a
/// finite, non-trivial upper bound even when the point estimate is 0.
///
/// The returned interval always satisfies
/// `0 ≤ lower ≤ estimate ≤ upper ≤ 1`.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] when `levels` is empty or
/// any level has zero trials, and [`StatsError::InvalidParameter`] when
/// a level has `successes > trials` or the confidence level is outside
/// `(0, 1)`.
///
/// # Examples
///
/// ```
/// use diversify_stats::product_proportion_ci;
/// // Three splitting levels, each ~1/10: P ≈ 1e-3.
/// let ci = product_proportion_ci(&[(10, 100), (9, 100), (11, 100)], 0.95).unwrap();
/// assert!(ci.contains(ci.estimate));
/// assert!(ci.lower > 0.0 && ci.upper < 1.0);
/// ```
pub fn product_proportion_ci(
    levels: &[(u64, u64)],
    level: f64,
) -> Result<ConfidenceInterval, StatsError> {
    if levels.is_empty() {
        return Err(StatsError::InsufficientData {
            needed: "at least one level",
        });
    }
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidParameter {
            what: "confidence level must be in (0,1)",
        });
    }
    for &(successes, trials) in levels {
        if trials == 0 {
            return Err(StatsError::InsufficientData {
                needed: "at least one trial per level",
            });
        }
        if successes > trials {
            return Err(StatsError::InvalidParameter {
                what: "successes cannot exceed trials",
            });
        }
    }
    let estimate = levels
        .iter()
        .map(|&(k, n)| k as f64 / n as f64)
        .product::<f64>();
    let interior = levels.iter().all(|&(k, n)| 0 < k && k < n);
    if interior {
        // Delta method on the log scale: log P̂ = Σ log p̂ℓ with
        // independent levels, so the variances add.
        let log_p = levels
            .iter()
            .map(|&(k, n)| (k as f64 / n as f64).ln())
            .sum::<f64>();
        let var_log = levels
            .iter()
            .map(|&(k, n)| {
                let p = k as f64 / n as f64;
                (1.0 - p) / (n as f64 * p)
            })
            .sum::<f64>();
        let z = Normal::standard().quantile(0.5 + level / 2.0);
        let half = z * var_log.sqrt();
        let lower = (log_p - half).exp().clamp(0.0, estimate);
        let upper = (log_p + half).exp().clamp(estimate, 1.0);
        return Ok(ConfidenceInterval {
            estimate,
            lower,
            upper,
            level,
        });
    }
    // Degenerate corner on at least one level: product of per-level
    // Wilson bounds at the Šidák-adjusted confidence level^(1/L). The
    // per-level bounds bracket the per-level proportions simultaneously
    // with probability ≥ level, and the product over [0, 1]-valued
    // factors is monotone, so the product of bounds brackets the product
    // of proportions. The per-level endpoint pinning in
    // [`proportion_ci`] makes lower ≤ estimate ≤ upper exact here.
    let per_level = level.powf(1.0 / levels.len() as f64);
    let mut lower = 1.0;
    let mut upper = 1.0;
    for &(k, n) in levels {
        let ci = proportion_ci(k, n, per_level)?;
        lower *= ci.lower;
        upper *= ci.upper;
    }
    Ok(ConfidenceInterval {
        estimate,
        lower: lower.clamp(0.0, estimate),
        upper: upper.clamp(estimate, 1.0),
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ci_matches_hand_computation() {
        // data mean 10, sd 1, n 4 => se 0.5, t_{0.975,3} = 3.1824.
        let data = [9.0, 10.0, 10.0, 11.0];
        let ci = mean_ci(&data, 0.95).unwrap();
        assert!((ci.estimate - 10.0).abs() < 1e-12);
        let sd = (2.0f64 / 3.0).sqrt();
        let expected_hw = 3.182_446 * sd / 2.0;
        assert!((ci.half_width() - expected_hw).abs() < 1e-4);
    }

    #[test]
    fn mean_ci_widens_with_level() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let narrow = mean_ci(&data, 0.90).unwrap();
        let wide = mean_ci(&data, 0.99).unwrap();
        assert!(wide.half_width() > narrow.half_width());
        assert_eq!(narrow.estimate, wide.estimate);
    }

    #[test]
    fn mean_ci_validation() {
        assert!(mean_ci(&[1.0], 0.95).is_err());
        assert!(mean_ci(&[1.0, 2.0], 1.5).is_err());
        assert!(mean_ci(&[1.0, 2.0], 0.0).is_err());
    }

    #[test]
    fn proportion_ci_half() {
        let ci = proportion_ci(50, 100, 0.95).unwrap();
        assert!((ci.estimate - 0.5).abs() < 1e-12);
        // Wilson 95% for 50/100 ≈ [0.4038, 0.5962].
        assert!((ci.lower - 0.4038).abs() < 5e-3);
        assert!((ci.upper - 0.5962).abs() < 5e-3);
    }

    #[test]
    fn proportion_ci_extremes_stay_in_unit_interval() {
        let zero = proportion_ci(0, 20, 0.95).unwrap();
        assert_eq!(zero.estimate, 0.0);
        assert!(zero.lower >= 0.0);
        assert!(zero.upper > 0.0, "Wilson never collapses at 0");
        let one = proportion_ci(20, 20, 0.95).unwrap();
        assert!(one.lower < 1.0);
        assert!(one.upper <= 1.0);
    }

    #[test]
    fn proportion_ci_degenerate_endpoints_are_exact() {
        // Regression: the float evaluation of the Wilson bound at 0/n
        // and n/n corners could overshoot the analytic endpoint by an
        // ulp (or yield −0.0). The corners must now be pinned exactly.
        for trials in [1u64, 2, 7, 20, 100, 10_000] {
            for level in [0.5, 0.9, 0.95, 0.99, 0.999] {
                let zero = proportion_ci(0, trials, level).unwrap();
                assert_eq!(zero.lower.to_bits(), 0.0f64.to_bits(), "no -0.0 lower");
                assert_eq!(zero.estimate, 0.0);
                assert!(zero.upper > 0.0 && zero.upper <= 1.0);
                let full = proportion_ci(trials, trials, level).unwrap();
                assert_eq!(full.upper.to_bits(), 1.0f64.to_bits());
                assert_eq!(full.estimate, 1.0);
                assert!(full.lower < 1.0 && full.lower >= 0.0);
            }
        }
    }

    #[test]
    fn proportion_ci_orders_bounds_around_estimate() {
        // 0 ≤ lower ≤ estimate ≤ upper ≤ 1 exactly, for every corner
        // and interior count.
        for trials in [1u64, 3, 11, 50] {
            for successes in 0..=trials {
                let ci = proportion_ci(successes, trials, 0.95).unwrap();
                assert!(ci.lower >= 0.0, "{successes}/{trials}");
                assert!(ci.lower <= ci.estimate, "{successes}/{trials}");
                assert!(ci.estimate <= ci.upper, "{successes}/{trials}");
                assert!(ci.upper <= 1.0, "{successes}/{trials}");
            }
        }
    }

    #[test]
    fn product_ci_single_level_is_consistent_with_delta_method() {
        // One interior level: the product CI is the log-scale delta
        // interval around k/n, which must cover the point estimate and
        // stay inside the unit interval.
        let ci = product_proportion_ci(&[(30, 100)], 0.95).unwrap();
        assert!((ci.estimate - 0.3).abs() < 1e-12);
        assert!(ci.lower > 0.0 && ci.lower < 0.3);
        assert!(ci.upper > 0.3 && ci.upper < 1.0);
    }

    #[test]
    fn product_ci_multiplies_levels() {
        let ci = product_proportion_ci(&[(10, 100), (10, 100), (10, 100)], 0.95).unwrap();
        assert!((ci.estimate - 1e-3).abs() < 1e-15);
        assert!(ci.contains(1e-3));
        assert!(ci.lower > 0.0 && ci.upper < 1.0);
        assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
    }

    #[test]
    fn product_ci_zero_success_level_keeps_valid_bounds() {
        // A dried-up level: estimate 0, lower 0, and a finite positive
        // upper bound from the Šidák-adjusted Wilson product.
        let ci = product_proportion_ci(&[(10, 100), (0, 100)], 0.95).unwrap();
        assert_eq!(ci.estimate, 0.0);
        assert_eq!(ci.lower.to_bits(), 0.0f64.to_bits());
        assert!(ci.upper > 0.0 && ci.upper < 1.0);
    }

    #[test]
    fn product_ci_full_success_levels_pin_upper() {
        let ci = product_proportion_ci(&[(5, 5), (5, 5)], 0.95).unwrap();
        assert_eq!(ci.estimate, 1.0);
        assert_eq!(ci.upper.to_bits(), 1.0f64.to_bits());
        assert!(ci.lower < 1.0 && ci.lower >= 0.0);
    }

    #[test]
    fn product_ci_validation() {
        assert!(product_proportion_ci(&[], 0.95).is_err());
        assert!(product_proportion_ci(&[(1, 0)], 0.95).is_err());
        assert!(product_proportion_ci(&[(3, 2)], 0.95).is_err());
        assert!(product_proportion_ci(&[(1, 2)], 1.0).is_err());
        assert!(product_proportion_ci(&[(1, 2)], 0.0).is_err());
    }

    #[test]
    fn proportion_ci_validation() {
        assert!(proportion_ci(1, 0, 0.95).is_err());
        assert!(proportion_ci(5, 4, 0.95).is_err());
        assert!(proportion_ci(1, 2, -0.1).is_err());
    }

    #[test]
    fn contains_and_display() {
        let ci = mean_ci(&[1.0, 2.0, 3.0], 0.95).unwrap();
        assert!(ci.contains(2.0));
        assert!(!ci.contains(100.0));
        assert!(ci.to_string().contains("95%"));
    }
}
