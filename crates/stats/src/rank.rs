//! Non-parametric rank tests.
//!
//! Security-indicator distributions (e.g. time-to-attack) are often heavily
//! skewed, so the pipeline cross-checks parametric ANOVA conclusions with
//! the Mann–Whitney U test.

use crate::dist::{Distribution, Normal};
use crate::error::StatsError;

/// Result of a Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitney {
    /// The U statistic of the first sample.
    pub u: f64,
    /// Standardized z statistic (normal approximation, tie-corrected).
    pub z: f64,
    /// Two-sided p-value under the normal approximation.
    pub p_value: f64,
}

/// Mann–Whitney U test (two-sided, normal approximation with tie and
/// continuity corrections).
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] when either sample is empty.
///
/// # Examples
///
/// ```
/// use diversify_stats::mann_whitney_u;
/// let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
/// let b = [11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0, 18.0];
/// let r = mann_whitney_u(&a, &b).unwrap();
/// assert!(r.p_value < 0.01); // clearly shifted distributions
/// ```
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Result<MannWhitney, StatsError> {
    if a.is_empty() || b.is_empty() {
        return Err(StatsError::InsufficientData {
            needed: "both samples non-empty",
        });
    }
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;

    // Rank the pooled sample with midranks for ties.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&x| (x, 0usize))
        .chain(b.iter().map(|&x| (x, 1usize)))
        .collect();
    pooled.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite observations"));

    let n = pooled.len();
    let mut ranks = vec![0.0f64; n];
    let mut tie_correction = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0; // ranks are 1-based
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = avg_rank;
        }
        let t = (j - i + 1) as f64;
        tie_correction += t * t * t - t;
        i = j + 1;
    }

    let r1: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, grp), _)| *grp == 0)
        .map(|(_, &r)| r)
        .sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;

    let mean_u = n1 * n2 / 2.0;
    let nf = n as f64;
    let var_u = n1 * n2 / 12.0 * ((nf + 1.0) - tie_correction / (nf * (nf - 1.0)));
    if var_u <= 0.0 {
        // All observations identical: no evidence of difference.
        return Ok(MannWhitney {
            u: u1,
            z: 0.0,
            p_value: 1.0,
        });
    }
    // Continuity correction toward the mean.
    let diff = u1 - mean_u;
    let cc = if diff > 0.0 {
        -0.5
    } else if diff < 0.0 {
        0.5
    } else {
        0.0
    };
    let z = (diff + cc) / var_u.sqrt();
    let p = 2.0 * (1.0 - Normal::standard().cdf(z.abs()));
    Ok(MannWhitney {
        u: u1,
        z,
        p_value: p.min(1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_p_near_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let r = mann_whitney_u(&a, &a).unwrap();
        assert!(r.p_value > 0.9, "p={}", r.p_value);
    }

    #[test]
    fn disjoint_samples_small_p() {
        let a: Vec<f64> = (0..20).map(f64::from).collect();
        let b: Vec<f64> = (100..120).map(f64::from).collect();
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_value < 1e-6);
        // U of the lower sample is 0.
        assert_eq!(r.u, 0.0);
    }

    #[test]
    fn all_tied_degenerate() {
        let a = [5.0, 5.0, 5.0];
        let b = [5.0, 5.0];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert_eq!(r.p_value, 1.0);
        assert_eq!(r.z, 0.0);
    }

    #[test]
    fn symmetric_in_samples() {
        let a = [1.0, 3.0, 5.0, 7.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let r1 = mann_whitney_u(&a, &b).unwrap();
        let r2 = mann_whitney_u(&b, &a).unwrap();
        assert!((r1.p_value - r2.p_value).abs() < 1e-12);
        // U1 + U2 = n1 n2.
        assert!((r1.u + r2.u - 16.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_rejected() {
        assert!(mann_whitney_u(&[], &[1.0]).is_err());
        assert!(mann_whitney_u(&[1.0], &[]).is_err());
    }

    #[test]
    fn known_example() {
        // Classic example: A = {1,2,4}, B = {3,5,6}; R1 = 1+2+4 = 7, U1 = 1.
        let a = [1.0, 2.0, 4.0];
        let b = [3.0, 5.0, 6.0];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert_eq!(r.u, 1.0);
    }
}
