//! Special functions: log-gamma, regularized incomplete beta and gamma,
//! and the error function.
//!
//! Implemented from scratch (Lanczos approximation and Lentz's continued
//! fraction) so the workspace has no dependency on external numeric crates.
//! Accuracy is ~1e-10 relative over the parameter ranges used by the ANOVA
//! and distribution code (degrees of freedom up to ~1e6).

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// # Panics
///
/// Panics if `x <= 0` (the reproduction only needs the positive real axis).
///
/// # Examples
///
/// ```
/// use diversify_stats::special::ln_gamma;
/// // Γ(5) = 24
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
/// ```
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Natural log of the beta function B(a, b).
#[must_use]
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Uses the continued-fraction expansion (Lentz's method) with the standard
/// symmetry transformation for fast convergence.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0`, or `x` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use diversify_stats::special::inc_beta;
/// // I_x(1, 1) = x (uniform CDF).
/// assert!((inc_beta(0.3, 1.0, 1.0) - 0.3).abs() < 1e-12);
/// ```
#[must_use]
pub fn inc_beta(x: f64, a: f64, b: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "inc_beta requires a, b > 0");
    assert!((0.0..=1.0).contains(&x), "inc_beta requires x in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    // Use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) to stay in the rapidly
    // converging region of the continued fraction. The comparison is `<=` so
    // the boundary point (e.g. x = 0.5 with a = b) takes the direct branch
    // instead of recursing onto itself.
    if x <= (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp()) * beta_cf(x, a, b) / a
    } else {
        1.0 - inc_beta(1.0 - x, b, a)
    }
}

/// Continued fraction for the incomplete beta function (Lentz's algorithm).
fn beta_cf(x: f64, a: f64, b: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
///
/// # Examples
///
/// ```
/// use diversify_stats::special::inc_gamma;
/// // P(1, x) = 1 - e^{-x}.
/// assert!((inc_gamma(1.0, 2.0) - (1.0 - (-2.0f64).exp())).abs() < 1e-12);
/// ```
#[must_use]
pub fn inc_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "inc_gamma requires a > 0");
    assert!(x >= 0.0, "inc_gamma requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

/// Series representation of P(a, x).
fn gamma_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued fraction for Q(a, x) = 1 - P(a, x).
fn gamma_cf(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Error function, via the regularized incomplete gamma function:
/// `erf(x) = P(1/2, x²)` for `x ≥ 0`, odd extension otherwise.
///
/// # Examples
///
/// ```
/// use diversify_stats::special::erf;
/// assert!((erf(0.0)).abs() < 1e-15);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-10);
/// ```
#[must_use]
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        -erf(-x)
    } else if x == 0.0 {
        0.0
    } else {
        inc_gamma(0.5, x * x)
    }
}

/// Complementary error function `1 - erf(x)`.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn ln_gamma_integers_match_factorials() {
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!(
                close(ln_gamma(n as f64), fact.ln(), 1e-12),
                "Γ({n}) mismatch"
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        assert!(close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12));
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x).
        for &x in &[0.3, 1.7, 4.2, 9.9, 123.4] {
            assert!(
                close(ln_gamma(x + 1.0), ln_gamma(x) + x.ln(), 1e-11),
                "recurrence failed at {x}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn inc_beta_uniform_case() {
        for &x in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            assert!(close(inc_beta(x, 1.0, 1.0), x, 1e-13));
        }
    }

    #[test]
    fn inc_beta_symmetry() {
        // I_x(a,b) = 1 − I_{1−x}(b,a).
        for &(x, a, b) in &[(0.3, 2.0, 5.0), (0.7, 0.5, 0.5), (0.25, 10.0, 3.0)] {
            assert!(close(
                inc_beta(x, a, b),
                1.0 - inc_beta(1.0 - x, b, a),
                1e-12
            ));
        }
    }

    #[test]
    fn inc_beta_known_values() {
        // I_{0.5}(2, 2) = 0.5 by symmetry; I_{0.5}(0.5, 0.5) = 0.5.
        assert!(close(inc_beta(0.5, 2.0, 2.0), 0.5, 1e-12));
        assert!(close(inc_beta(0.5, 0.5, 0.5), 0.5, 1e-12));
        // I_x(1, 2) = 1 - (1-x)^2 = 2x - x².
        assert!(close(inc_beta(0.3, 1.0, 2.0), 0.51, 1e-12));
    }

    #[test]
    fn inc_beta_monotone_in_x() {
        let mut prev = 0.0;
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            let v = inc_beta(x, 3.0, 7.0);
            assert!(v >= prev - 1e-14, "non-monotone at x={x}");
            prev = v;
        }
        assert!(close(prev, 1.0, 1e-12));
    }

    #[test]
    fn inc_gamma_exponential_case() {
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            assert!(close(inc_gamma(1.0, x), 1.0 - (-x).exp(), 1e-12));
        }
    }

    #[test]
    fn inc_gamma_limits() {
        assert_eq!(inc_gamma(2.5, 0.0), 0.0);
        assert!(inc_gamma(2.5, 1e6) > 1.0 - 1e-12);
    }

    #[test]
    fn inc_gamma_erlang_two() {
        // P(2, x) = 1 - e^{-x}(1 + x).
        for &x in &[0.5f64, 2.0, 5.0] {
            let expected = 1.0 - (-x).exp() * (1.0 + x);
            assert!(close(inc_gamma(2.0, x), expected, 1e-12));
        }
    }

    #[test]
    fn erf_reference_values() {
        // Abramowitz & Stegun table values.
        let table = [
            (0.5, 0.520_499_877_8),
            (1.0, 0.842_700_792_9),
            (1.5, 0.966_105_146_5),
            (2.0, 0.995_322_265_0),
        ];
        for (x, v) in table {
            assert!(close(erf(x), v, 1e-9), "erf({x})");
        }
    }

    #[test]
    fn erf_is_odd() {
        for &x in &[0.25, 0.75, 1.5, 3.0] {
            assert!((erf(-x) + erf(x)).abs() < 1e-14);
        }
    }

    #[test]
    fn erfc_complements() {
        for &x in &[0.0, 0.5, 1.0, 2.5] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn ln_beta_symmetry() {
        assert!(close(ln_beta(2.5, 4.5), ln_beta(4.5, 2.5), 1e-14));
    }
}
