//! Error type for statistical routines.

use std::error::Error;
use std::fmt;

/// Errors returned by statistical routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The input sample was empty or too small for the requested statistic.
    InsufficientData {
        /// What the routine needed.
        needed: &'static str,
    },
    /// A distribution or test parameter was out of its valid domain.
    InvalidParameter {
        /// Description of the violated constraint.
        what: &'static str,
    },
    /// Group structure was invalid (e.g. mismatched lengths in ANOVA).
    InvalidGroups {
        /// Description of the structural problem.
        what: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InsufficientData { needed } => {
                write!(f, "insufficient data: {needed}")
            }
            StatsError::InvalidParameter { what } => {
                write!(f, "invalid parameter: {what}")
            }
            StatsError::InvalidGroups { what } => {
                write!(f, "invalid group structure: {what}")
            }
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let cases = [
            StatsError::InsufficientData { needed: "n >= 2" },
            StatsError::InvalidParameter { what: "df > 0" },
            StatsError::InvalidGroups { what: "k >= 2" },
        ];
        for c in cases {
            let s = c.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<StatsError>();
    }
}
