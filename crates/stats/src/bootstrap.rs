//! Percentile bootstrap confidence intervals.
//!
//! The bootstrap provides distribution-free intervals for indicators whose
//! sampling distribution is unknown (e.g. the median time-to-security-
//! failure under a heavy-tailed attack model).

use crate::ci::ConfidenceInterval;
use crate::describe::quantile_sorted;
use crate::error::StatsError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Percentile bootstrap confidence interval for an arbitrary statistic.
///
/// * `data` — the original sample;
/// * `statistic` — computed on each resample (and on the original data for
///   the point estimate);
/// * `resamples` — number of bootstrap resamples (1000+ recommended);
/// * `level` — confidence level in `(0, 1)`;
/// * `seed` — deterministic resampling seed.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for an empty sample or zero
/// resamples, [`StatsError::InvalidParameter`] for a level outside `(0,1)`.
///
/// # Examples
///
/// ```
/// use diversify_stats::bootstrap_ci;
/// let data: Vec<f64> = (1..=100).map(f64::from).collect();
/// let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
/// let ci = bootstrap_ci(&data, mean, 2000, 0.95, 7).unwrap();
/// assert!(ci.contains(50.5));
/// ```
pub fn bootstrap_ci<F>(
    data: &[f64],
    statistic: F,
    resamples: u32,
    level: f64,
    seed: u64,
) -> Result<ConfidenceInterval, StatsError>
where
    F: Fn(&[f64]) -> f64,
{
    bootstrap_core(data, statistic, resamples, level, seed, false)
}

/// Shared implementation of both bootstrap variants. With `presort`, the
/// original data is sorted once up front and every resample is sorted in
/// place before the statistic sees it.
fn bootstrap_core<F>(
    data: &[f64],
    statistic: F,
    resamples: u32,
    level: f64,
    seed: u64,
    presort: bool,
) -> Result<ConfidenceInterval, StatsError>
where
    F: Fn(&[f64]) -> f64,
{
    if data.is_empty() {
        return Err(StatsError::InsufficientData {
            needed: "non-empty sample",
        });
    }
    if resamples == 0 {
        return Err(StatsError::InsufficientData {
            needed: "at least one resample",
        });
    }
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidParameter {
            what: "confidence level must be in (0,1)",
        });
    }
    let by_value = |a: &f64, b: &f64| a.partial_cmp(b).expect("finite sample");
    let mut owned;
    let data = if presort {
        owned = data.to_vec();
        owned.sort_by(by_value);
        owned.as_slice()
    } else {
        data
    };
    let estimate = statistic(data);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(resamples as usize);
    // One resample buffer reused across all iterations: the resampling
    // loop performs no per-iteration heap allocation.
    let mut resample = vec![0.0; data.len()];
    for _ in 0..resamples {
        for slot in resample.iter_mut() {
            *slot = data[rng.gen_range(0..data.len())];
        }
        if presort {
            resample.sort_by(by_value);
        }
        stats.push(statistic(&resample));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite statistics"));
    let alpha = 1.0 - level;
    Ok(ConfidenceInterval {
        estimate,
        lower: quantile_sorted(&stats, alpha / 2.0),
        upper: quantile_sorted(&stats, 1.0 - alpha / 2.0),
        level,
    })
}

/// Percentile bootstrap for an *order statistic*: the statistic receives
/// each resample **pre-sorted ascending** (and the original data sorted
/// once up front), so quantile-style statistics can index directly
/// instead of allocating and sorting a copy per resample — the classic
/// hidden cost of `bootstrap_ci` with a median statistic.
///
/// The resample buffer is allocated once and sorted in place each
/// iteration; the loop body performs no heap allocation.
///
/// # Errors
///
/// Same contract as [`bootstrap_ci`].
///
/// # Examples
///
/// ```
/// use diversify_stats::{bootstrap_ci_sorted, describe::quantile_sorted};
/// let data: Vec<f64> = (1..=99).map(f64::from).collect();
/// let median = |sorted: &[f64]| quantile_sorted(sorted, 0.5);
/// let ci = bootstrap_ci_sorted(&data, median, 1000, 0.95, 3).unwrap();
/// assert!(ci.contains(50.0));
/// ```
pub fn bootstrap_ci_sorted<F>(
    data: &[f64],
    statistic: F,
    resamples: u32,
    level: f64,
    seed: u64,
) -> Result<ConfidenceInterval, StatsError>
where
    F: Fn(&[f64]) -> f64,
{
    bootstrap_core(data, statistic, resamples, level, seed, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn covers_true_mean_for_uniform_data() {
        let data: Vec<f64> = (0..200).map(|i| f64::from(i) / 199.0).collect();
        let ci = bootstrap_ci(&data, mean, 2000, 0.95, 1).unwrap();
        assert!(ci.contains(0.5));
        assert!(ci.half_width() < 0.1);
    }

    #[test]
    fn deterministic_under_same_seed() {
        // Irrational-ish values keep resample means continuous, so interval
        // endpoints from different seeds almost surely differ.
        let data: Vec<f64> = (1..=40).map(|i| (i as f64).sqrt()).collect();
        let a = bootstrap_ci(&data, mean, 500, 0.9, 42).unwrap();
        let b = bootstrap_ci(&data, mean, 500, 0.9, 42).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_ci(&data, mean, 500, 0.9, 43).unwrap();
        assert!(
            (a.lower, a.upper) != (c.lower, c.upper),
            "different seeds produced identical intervals"
        );
    }

    #[test]
    fn works_with_median_statistic() {
        let data: Vec<f64> = (1..=99).map(f64::from).collect();
        let median = |xs: &[f64]| {
            let mut v = xs.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            quantile_sorted(&v, 0.5)
        };
        let ci = bootstrap_ci(&data, median, 1000, 0.95, 3).unwrap();
        assert!(ci.contains(50.0));
    }

    #[test]
    fn validation_errors() {
        assert!(bootstrap_ci(&[], mean, 100, 0.95, 0).is_err());
        assert!(bootstrap_ci(&[1.0], mean, 0, 0.95, 0).is_err());
        assert!(bootstrap_ci(&[1.0], mean, 10, 1.0, 0).is_err());
    }

    #[test]
    fn single_point_sample_degenerates() {
        let ci = bootstrap_ci(&[7.0], mean, 100, 0.95, 0).unwrap();
        assert_eq!(ci.lower, 7.0);
        assert_eq!(ci.upper, 7.0);
        assert_eq!(ci.estimate, 7.0);
    }

    #[test]
    fn sorted_variant_matches_allocating_median() {
        // The pre-sorted fast path must agree with the naive formulation
        // (same seed → same resamples → identical interval).
        let data: Vec<f64> = (1..=80).map(|i| (i as f64).sqrt() * 3.0).collect();
        let naive_median = |xs: &[f64]| {
            let mut v = xs.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            quantile_sorted(&v, 0.5)
        };
        let fast_median = |sorted: &[f64]| quantile_sorted(sorted, 0.5);
        let a = bootstrap_ci(
            &{
                let mut d = data.clone();
                d.sort_by(|x, y| x.partial_cmp(y).unwrap());
                d
            },
            naive_median,
            400,
            0.9,
            21,
        )
        .unwrap();
        let b = bootstrap_ci_sorted(&data, fast_median, 400, 0.9, 21).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sorted_variant_accepts_unsorted_input() {
        let mut data: Vec<f64> = (1..=60).map(f64::from).collect();
        data.reverse();
        let ci = bootstrap_ci_sorted(&data, |s| quantile_sorted(s, 0.5), 800, 0.95, 5).unwrap();
        assert!(ci.contains(30.5));
    }

    #[test]
    fn sorted_variant_validation_errors() {
        let med = |s: &[f64]| quantile_sorted(s, 0.5);
        assert!(bootstrap_ci_sorted(&[], med, 100, 0.95, 0).is_err());
        assert!(bootstrap_ci_sorted(&[1.0], med, 0, 0.95, 0).is_err());
        assert!(bootstrap_ci_sorted(&[1.0], med, 10, 1.5, 0).is_err());
    }
}
