//! Streaming, mergeable moment accumulators.
//!
//! The estimation path of the pipeline is "stream, merge, and stop when
//! precise enough": replication outcomes fold into accumulators as they
//! complete instead of being materialized into sample vectors. This
//! module provides the two accumulator shapes every indicator needs —
//!
//! * [`StreamingSummary`] — Welford/Chan moments (count, mean, M2, min,
//!   max) for real-valued responses such as Time-To-Attack;
//! * [`BernoulliCounter`] — a success/trial counter for binary responses
//!   such as "did the attack succeed";
//!
//! — plus moment-based confidence-interval entry points, so an interval
//! never requires a stored sample slice. Both accumulators are
//! *mergeable*: `a.merge(&b)` equals accumulating `a`'s and `b`'s
//! observations into one accumulator (exactly for the counter, to
//! floating-point rounding for the moments — see
//! `tests/streaming_equivalence.rs` for the property tests).

use crate::ci::{proportion_ci, ConfidenceInterval};
use crate::dist::{Distribution, StudentT};
use crate::error::StatsError;
use std::fmt;

/// Single-pass Welford moments with min/max tracking.
///
/// Numerically stable online accumulation of count, mean and the centered
/// second moment M2; [`StreamingSummary::merge`] combines two partial
/// accumulators with the parallel (Chan et al.) update, so partial sums
/// computed by independent workers aggregate without ever materializing
/// the sample.
///
/// # Examples
///
/// ```
/// use diversify_stats::StreamingSummary;
///
/// let mut s = StreamingSummary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.min(), 2.0);
/// assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingSummary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingSummary {
    fn default() -> Self {
        StreamingSummary::new()
    }
}

/// The raw Welford state of a [`StreamingSummary`], exposed so
/// accumulators can cross process or machine boundaries (wire transport,
/// persistence) and be rebuilt **bit-exactly**: `from_raw(s.to_raw())`
/// is the identity, including the `±∞` min/max sentinels of an empty
/// summary. The fields are the exact internal state — callers must not
/// reinterpret them (in particular `m2` is the summed squared deviation,
/// not a variance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawMoments {
    /// Number of observations.
    pub count: u64,
    /// Running mean (0 when empty).
    pub mean: f64,
    /// Sum of squared deviations from the mean.
    pub m2: f64,
    /// Smallest observation (`+∞` when empty).
    pub min: f64,
    /// Largest observation (`-∞` when empty).
    pub max: f64,
}

impl StreamingSummary {
    /// An empty accumulator.
    #[must_use]
    pub const fn new() -> Self {
        StreamingSummary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    /// Equivalent to having pushed `other`'s observations here.
    pub fn merge(&mut self, other: &StreamingSummary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let total = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Exports the internal Welford state for transport or persistence.
    #[must_use]
    pub fn to_raw(&self) -> RawMoments {
        RawMoments {
            count: self.n,
            mean: self.mean,
            m2: self.m2,
            min: self.min,
            max: self.max,
        }
    }

    /// Rebuilds a summary from exported state, bit-exactly. The moments
    /// are taken at face value — semantic validation (finiteness, `m2 ≥
    /// 0`, …) is the transport layer's job, exactly as it is for a
    /// locally pushed stream of observations.
    #[must_use]
    pub fn from_raw(raw: RawMoments) -> StreamingSummary {
        StreamingSummary {
            n: raw.count,
            mean: raw.mean,
            m2: raw.m2,
            min: raw.min,
            max: raw.max,
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Whether no observation has been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample mean, or `None` when empty — the streaming replacement for
    /// the "mean of a possibly-empty slice" idiom.
    #[must_use]
    pub fn mean_opt(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Centered second moment `Σ (xᵢ − x̄)²`.
    #[must_use]
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Unbiased sample variance (0 when fewer than two observations).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn sample_sd(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean (0 when empty).
    #[must_use]
    pub fn standard_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sample_sd() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Student-t confidence interval for the mean, from the streaming
    /// moments alone — no sample slice required.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] for fewer than two
    /// observations and [`StatsError::InvalidParameter`] for a level
    /// outside `(0, 1)`.
    pub fn mean_ci(&self, level: f64) -> Result<ConfidenceInterval, StatsError> {
        if self.n < 2 {
            return Err(StatsError::InsufficientData {
                needed: "at least two observations for a t interval",
            });
        }
        if !(0.0 < level && level < 1.0) {
            return Err(StatsError::InvalidParameter {
                what: "confidence level must be in (0,1)",
            });
        }
        // Non-finite moments (a NaN or infinite observation slipped into
        // the stream — e.g. a corrupted replication folded without the
        // executor's validator) would otherwise silently produce a
        // NaN-bounded interval that every comparison accepts.
        if !self.mean.is_finite() || !self.m2.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "streaming moments are not finite (non-finite observation in the stream)",
            });
        }
        let n = self.n as f64;
        let se = (self.sample_variance() / n).sqrt();
        let t = StudentT::new(n - 1.0)?;
        let q = t.quantile(0.5 + level / 2.0);
        Ok(ConfidenceInterval {
            estimate: self.mean,
            lower: self.mean - q * se,
            upper: self.mean + q * se,
            level,
        })
    }
}

impl Extend<f64> for StreamingSummary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for StreamingSummary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = StreamingSummary::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for StreamingSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.6} sd={:.6} min={:.6} max={:.6}",
            self.n,
            self.mean,
            self.sample_sd(),
            self.min,
            self.max
        )
    }
}

/// A streaming Bernoulli counter: successes over trials, mergeable, with
/// a Wilson-score interval straight from the counts.
///
/// # Examples
///
/// ```
/// use diversify_stats::BernoulliCounter;
///
/// let mut c = BernoulliCounter::new();
/// for i in 0..100 {
///     c.push(i % 5 != 0);
/// }
/// assert_eq!(c.trials(), 100);
/// assert_eq!(c.successes(), 80);
/// let ci = c.ci(0.95).unwrap();
/// assert!(ci.contains(0.8));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BernoulliCounter {
    successes: u64,
    trials: u64,
}

impl BernoulliCounter {
    /// An empty counter.
    #[must_use]
    pub const fn new() -> Self {
        BernoulliCounter {
            successes: 0,
            trials: 0,
        }
    }

    /// Rebuilds a counter from exported counts (the inverse of reading
    /// [`BernoulliCounter::successes`]/[`BernoulliCounter::trials`]).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `successes >
    /// trials` — the one state no sequence of pushes can produce, so it
    /// must be a corrupted or forged transport payload.
    pub fn from_counts(successes: u64, trials: u64) -> Result<Self, StatsError> {
        if successes > trials {
            return Err(StatsError::InvalidParameter {
                what: "successes exceed trials",
            });
        }
        Ok(BernoulliCounter { successes, trials })
    }

    /// Records one trial.
    pub fn push(&mut self, success: bool) {
        self.trials += 1;
        self.successes += u64::from(success);
    }

    /// Merges another counter into this one (exact).
    pub fn merge(&mut self, other: &BernoulliCounter) {
        self.successes += other.successes;
        self.trials += other.trials;
    }

    /// Number of successes.
    #[must_use]
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Number of trials.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Success proportion (0 when no trial has been recorded).
    #[must_use]
    pub fn proportion(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Wilson score interval for the success probability, from the
    /// streaming counts alone.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] when no trial has been
    /// recorded and [`StatsError::InvalidParameter`] for a level outside
    /// `(0, 1)`.
    pub fn ci(&self, level: f64) -> Result<ConfidenceInterval, StatsError> {
        proportion_ci(self.successes, self.trials, level)
    }
}

impl Extend<bool> for BernoulliCounter {
    fn extend<T: IntoIterator<Item = bool>>(&mut self, iter: T) {
        for b in iter {
            self.push(b);
        }
    }
}

impl FromIterator<bool> for BernoulliCounter {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut c = BernoulliCounter::new();
        c.extend(iter);
        c
    }
}

impl fmt::Display for BernoulliCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ({:.4})",
            self.successes,
            self.trials,
            self.proportion()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroish() {
        let s = StreamingSummary::new();
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.mean_opt(), None);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.standard_error(), 0.0);
        assert!(s.mean_ci(0.95).is_err());
    }

    #[test]
    fn non_finite_stream_is_rejected_by_mean_ci() {
        let mut s = StreamingSummary::new();
        s.push(1.0);
        s.push(f64::NAN);
        s.push(2.0);
        assert!(matches!(
            s.mean_ci(0.95),
            Err(StatsError::InvalidParameter { .. })
        ));
        let mut inf = StreamingSummary::new();
        inf.push(f64::INFINITY);
        inf.push(1.0);
        assert!(inf.mean_ci(0.95).is_err());
    }

    #[test]
    fn matches_two_pass_moments() {
        let xs: Vec<f64> = (0..500)
            .map(|i| (f64::from(i) * 0.73).sin() * 3.0)
            .collect();
        let s: StreamingSummary = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..300).map(|i| (f64::from(i)).sqrt()).collect();
        let full: StreamingSummary = xs.iter().copied().collect();
        let a: StreamingSummary = xs[..120].iter().copied().collect();
        let b: StreamingSummary = xs[120..].iter().copied().collect();
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), full.count());
        assert!((merged.mean() - full.mean()).abs() < 1e-12);
        assert!((merged.sample_variance() - full.sample_variance()).abs() < 1e-12);
        assert_eq!(merged.min(), full.min());
        assert_eq!(merged.max(), full.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a: StreamingSummary = [1.0, 2.0, 5.0].into_iter().collect();
        let mut b = a;
        b.merge(&StreamingSummary::new());
        assert_eq!(a, b);
        let mut c = StreamingSummary::new();
        c.merge(&a);
        assert_eq!(c, a);
    }

    #[test]
    fn merge_with_empty_is_bit_identical() {
        // Regression (splitting levels legitimately produce empty
        // strata): merging an empty summary in either direction must be
        // an exact no-op — bit-identical count/mean/M2/min/max, with no
        // ±inf sentinel from the empty side leaking into min/max and no
        // NaN from an `inf.min(x)`-style propagation.
        let a: StreamingSummary = [-3.5, 0.25, 7.125].into_iter().collect();
        let mut forward = a;
        forward.merge(&StreamingSummary::new());
        assert_eq!(forward.count(), a.count());
        assert_eq!(forward.mean().to_bits(), a.mean().to_bits());
        assert_eq!(forward.m2().to_bits(), a.m2().to_bits());
        assert_eq!(forward.min().to_bits(), a.min().to_bits());
        assert_eq!(forward.max().to_bits(), a.max().to_bits());
        let mut backward = StreamingSummary::new();
        backward.merge(&a);
        assert_eq!(backward.count(), a.count());
        assert_eq!(backward.mean().to_bits(), a.mean().to_bits());
        assert_eq!(backward.m2().to_bits(), a.m2().to_bits());
        assert_eq!(backward.min().to_bits(), a.min().to_bits());
        assert_eq!(backward.max().to_bits(), a.max().to_bits());
        assert!(!backward.min().is_nan() && !backward.max().is_nan());
    }

    #[test]
    fn merge_of_two_empties_stays_empty() {
        let mut e = StreamingSummary::new();
        e.merge(&StreamingSummary::new());
        assert!(e.is_empty());
        assert_eq!(e.count(), 0);
        assert_eq!(e.min(), f64::INFINITY);
        assert_eq!(e.max(), f64::NEG_INFINITY);
        assert!(!e.mean().is_nan() && !e.m2().is_nan());
    }

    #[test]
    fn mean_ci_on_empty_and_singleton_is_typed_error() {
        // Regression: an empty or singleton summary must yield a typed
        // error, never a non-finite interval.
        let empty = StreamingSummary::new();
        assert!(matches!(
            empty.mean_ci(0.95),
            Err(StatsError::InsufficientData { .. })
        ));
        let mut one = StreamingSummary::new();
        one.push(4.0);
        assert!(matches!(
            one.mean_ci(0.95),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn bernoulli_merge_with_empty_is_identity() {
        let a: BernoulliCounter = [true, false, true].into_iter().collect();
        let mut b = a;
        b.merge(&BernoulliCounter::new());
        assert_eq!(a, b);
        let mut c = BernoulliCounter::new();
        c.merge(&a);
        assert_eq!(c, a);
    }

    #[test]
    fn bernoulli_ci_degenerate_counts_stay_ordered() {
        // The counter delegates to `proportion_ci`, so the pinned
        // Wilson endpoints must surface here too.
        let zeros: BernoulliCounter = [false; 12].into_iter().collect();
        let ci = zeros.ci(0.95).unwrap();
        assert_eq!(ci.estimate, 0.0);
        assert_eq!(ci.lower.to_bits(), 0.0f64.to_bits());
        assert!(ci.upper > 0.0 && ci.upper <= 1.0);
        let ones: BernoulliCounter = [true; 12].into_iter().collect();
        let ci = ones.ci(0.95).unwrap();
        assert_eq!(ci.estimate, 1.0);
        assert_eq!(ci.upper.to_bits(), 1.0f64.to_bits());
        assert!(ci.lower >= 0.0 && ci.lower < 1.0);
    }

    #[test]
    fn moment_ci_matches_slice_ci() {
        let xs = [9.0, 10.0, 10.0, 11.0, 10.5, 9.5];
        let from_slice = crate::ci::mean_ci(&xs, 0.95).unwrap();
        let s: StreamingSummary = xs.iter().copied().collect();
        let from_moments = s.mean_ci(0.95).unwrap();
        assert!((from_slice.estimate - from_moments.estimate).abs() < 1e-12);
        assert!((from_slice.lower - from_moments.lower).abs() < 1e-12);
        assert!((from_slice.upper - from_moments.upper).abs() < 1e-12);
    }

    #[test]
    fn moment_ci_validates_level() {
        let s: StreamingSummary = [1.0, 2.0, 3.0].into_iter().collect();
        assert!(s.mean_ci(0.0).is_err());
        assert!(s.mean_ci(1.0).is_err());
        assert!(s.mean_ci(0.95).is_ok());
    }

    #[test]
    fn bernoulli_counts_and_ci() {
        let mut c = BernoulliCounter::new();
        assert_eq!(c.proportion(), 0.0);
        assert!(c.ci(0.95).is_err());
        c.extend([true, true, false, true]);
        assert_eq!(c.successes(), 3);
        assert_eq!(c.trials(), 4);
        assert!((c.proportion() - 0.75).abs() < 1e-12);
        let wilson = crate::ci::proportion_ci(3, 4, 0.95).unwrap();
        assert_eq!(c.ci(0.95).unwrap(), wilson);
    }

    #[test]
    fn bernoulli_merge_is_exact() {
        let a: BernoulliCounter = [true, false, true].into_iter().collect();
        let b: BernoulliCounter = [false, false].into_iter().collect();
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.successes(), 2);
        assert_eq!(m.trials(), 5);
    }

    #[test]
    fn raw_moments_round_trip_bit_exactly() {
        let s: StreamingSummary = [1.5, -2.25, 0.875, 3.0].into_iter().collect();
        let back = StreamingSummary::from_raw(s.to_raw());
        assert_eq!(s, back);
        assert_eq!(s.m2().to_bits(), back.m2().to_bits());
        // The empty sentinels (±∞ min/max) survive the round trip too.
        let empty = StreamingSummary::new();
        let back = StreamingSummary::from_raw(empty.to_raw());
        assert_eq!(back.count(), 0);
        assert_eq!(back.min().to_bits(), f64::INFINITY.to_bits());
        assert_eq!(back.max().to_bits(), f64::NEG_INFINITY.to_bits());
    }

    #[test]
    fn bernoulli_from_counts_validates() {
        let c = BernoulliCounter::from_counts(3, 4).unwrap();
        assert_eq!(c.successes(), 3);
        assert_eq!(c.trials(), 4);
        assert!(BernoulliCounter::from_counts(5, 4).is_err());
    }

    #[test]
    fn displays_render() {
        let s: StreamingSummary = [1.0, 2.0].into_iter().collect();
        assert!(s.to_string().contains("n=2"));
        let c: BernoulliCounter = [true].into_iter().collect();
        assert!(c.to_string().contains("1/1"));
    }
}
