//! Probability distributions with CDFs and quantile functions.
//!
//! The ANOVA F-tests, t-based confidence intervals and chi-square
//! goodness-of-fit checks in the *Diversify!* pipeline all reduce to
//! evaluations of the four distributions defined here.

use crate::error::StatsError;
use crate::special::{erf, inc_beta, inc_gamma, ln_gamma};

/// A univariate continuous distribution.
///
/// The trait is deliberately minimal: the assessment pipeline only needs
/// densities, CDFs and quantiles.
pub trait Distribution {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;
    /// Cumulative distribution function at `x`.
    fn cdf(&self, x: f64) -> f64;
    /// Quantile (inverse CDF) at probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    fn quantile(&self, p: f64) -> f64;
}

/// Generic bisection-based quantile inversion for a monotone CDF.
///
/// Used by distributions without a closed-form inverse. Accurate to ~1e-10
/// which is far below Monte-Carlo noise in the experiments.
fn invert_cdf<F: Fn(f64) -> f64>(cdf: F, p: f64, mut lo: f64, mut hi: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    // Expand the bracket until it contains the target probability.
    let mut guard = 0;
    while cdf(hi) < p {
        hi *= 2.0;
        guard += 1;
        assert!(guard < 200, "quantile bracket expansion failed (hi)");
    }
    guard = 0;
    while cdf(lo) > p {
        lo = if lo > 0.0 { lo / 2.0 } else { lo * 2.0 - 1.0 };
        guard += 1;
        assert!(guard < 200, "quantile bracket expansion failed (lo)");
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo).abs() < 1e-12 * (1.0 + hi.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// The normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `sd` is not strictly
    /// positive or either parameter is non-finite.
    pub fn new(mean: f64, sd: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() || !sd.is_finite() || sd <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "normal requires finite mean and sd > 0",
            });
        }
        Ok(Normal { mean, sd })
    }

    /// The standard normal N(0, 1).
    #[must_use]
    pub fn standard() -> Self {
        Normal { mean: 0.0, sd: 1.0 }
    }

    /// The mean parameter.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard-deviation parameter.
    #[must_use]
    pub fn sd(&self) -> f64 {
        self.sd
    }
}

impl Distribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sd;
        (-0.5 * z * z).exp() / (self.sd * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.sd * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
        // Acklam's rational approximation, then one Newton refinement.
        let x = acklam_inverse_normal(p);
        let refined = x - (self.cdf_std(x) - p) / std_normal_pdf(x);
        self.mean + self.sd * refined
    }
}

impl Normal {
    fn cdf_std(&self, z: f64) -> f64 {
        0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
    }
}

fn std_normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Acklam's inverse-normal approximation (relative error < 1.15e-9).
fn acklam_inverse_normal(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Student's t distribution with `df` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    df: f64,
}

impl StudentT {
    /// Creates a Student-t distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `df <= 0` or non-finite.
    pub fn new(df: f64) -> Result<Self, StatsError> {
        if !df.is_finite() || df <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "student-t requires df > 0",
            });
        }
        Ok(StudentT { df })
    }

    /// Degrees of freedom.
    #[must_use]
    pub fn df(&self) -> f64 {
        self.df
    }
}

impl Distribution for StudentT {
    fn pdf(&self, x: f64) -> f64 {
        let v = self.df;
        let ln = ln_gamma((v + 1.0) / 2.0)
            - ln_gamma(v / 2.0)
            - 0.5 * (v * std::f64::consts::PI).ln()
            - ((v + 1.0) / 2.0) * (1.0 + x * x / v).ln();
        ln.exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        let v = self.df;
        if x == 0.0 {
            return 0.5;
        }
        let ib = inc_beta(v / (v + x * x), v / 2.0, 0.5);
        if x > 0.0 {
            1.0 - 0.5 * ib
        } else {
            0.5 * ib
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
        if (p - 0.5).abs() < 1e-16 {
            return 0.0;
        }
        invert_cdf(|x| self.cdf(x), p, -1.0, 1.0)
    }
}

/// Fisher's F distribution with `(d1, d2)` degrees of freedom — the
/// reference distribution for every ANOVA test in the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FisherF {
    d1: f64,
    d2: f64,
}

impl FisherF {
    /// Creates an F distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if either degrees-of-freedom
    /// parameter is not strictly positive.
    pub fn new(d1: f64, d2: f64) -> Result<Self, StatsError> {
        if !d1.is_finite() || !d2.is_finite() || d1 <= 0.0 || d2 <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "fisher-f requires d1, d2 > 0",
            });
        }
        Ok(FisherF { d1, d2 })
    }

    /// Numerator degrees of freedom.
    #[must_use]
    pub fn d1(&self) -> f64 {
        self.d1
    }

    /// Denominator degrees of freedom.
    #[must_use]
    pub fn d2(&self) -> f64 {
        self.d2
    }

    /// Upper-tail probability P(F > x) — the ANOVA p-value.
    #[must_use]
    pub fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }
}

impl Distribution for FisherF {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let (d1, d2) = (self.d1, self.d2);
        let ln = 0.5 * (d1 * (d1 * x).ln() + d2 * d2.ln() - (d1 + d2) * (d1 * x + d2).ln())
            - x.ln()
            - crate::special::ln_beta(d1 / 2.0, d2 / 2.0);
        ln.exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let (d1, d2) = (self.d1, self.d2);
        inc_beta(d1 * x / (d1 * x + d2), d1 / 2.0, d2 / 2.0)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
        invert_cdf(|x| self.cdf(x), p, 0.0, 4.0)
    }
}

/// The chi-square distribution with `df` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    df: f64,
}

impl ChiSquared {
    /// Creates a chi-square distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `df <= 0`.
    pub fn new(df: f64) -> Result<Self, StatsError> {
        if !df.is_finite() || df <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "chi-squared requires df > 0",
            });
        }
        Ok(ChiSquared { df })
    }

    /// Degrees of freedom.
    #[must_use]
    pub fn df(&self) -> f64 {
        self.df
    }
}

impl Distribution for ChiSquared {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let k = self.df;
        let ln = (k / 2.0 - 1.0) * x.ln() - x / 2.0 - (k / 2.0) * 2f64.ln() - ln_gamma(k / 2.0);
        ln.exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        inc_gamma(self.df / 2.0, x / 2.0)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
        invert_cdf(|x| self.cdf(x), p, 0.0, self.df.max(1.0) * 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn normal_cdf_reference() {
        let n = Normal::standard();
        assert!(close(n.cdf(0.0), 0.5, 1e-14));
        assert!(close(n.cdf(1.959_963_984_540_054), 0.975, 1e-9));
        assert!(close(n.cdf(-1.644_853_626_951_472), 0.05, 1e-9));
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        let n = Normal::new(3.0, 2.0).unwrap();
        for &p in &[0.001, 0.05, 0.25, 0.5, 0.75, 0.95, 0.999] {
            let x = n.quantile(p);
            assert!(close(n.cdf(x), p, 1e-9), "p={p}");
        }
    }

    #[test]
    fn normal_pdf_integrates_to_one() {
        let n = Normal::standard();
        let mut sum = 0.0;
        let h = 0.001;
        let mut x = -8.0;
        while x < 8.0 {
            sum += n.pdf(x) * h;
            x += h;
        }
        assert!(close(sum, 1.0, 1e-4));
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn t_cdf_reference() {
        // t(10): P(T < 1.812) ≈ 0.95 (critical value t_{0.95,10} = 1.8125).
        let t = StudentT::new(10.0).unwrap();
        assert!(close(t.cdf(1.812_461_122_811_676), 0.95, 1e-6));
        assert!(close(t.cdf(0.0), 0.5, 1e-14));
        // Symmetry.
        assert!(close(t.cdf(-1.5) + t.cdf(1.5), 1.0, 1e-12));
    }

    #[test]
    fn t_quantile_reference_values() {
        // Classic table: t_{0.975, 5} = 2.570582, t_{0.975, 30} = 2.042272.
        let t5 = StudentT::new(5.0).unwrap();
        assert!(close(t5.quantile(0.975), 2.570_582, 1e-4));
        let t30 = StudentT::new(30.0).unwrap();
        assert!(close(t30.quantile(0.975), 2.042_272, 1e-4));
    }

    #[test]
    fn t_approaches_normal_for_large_df() {
        let t = StudentT::new(1e6).unwrap();
        let n = Normal::standard();
        for &x in &[-2.0, -0.5, 0.7, 1.8] {
            assert!(close(t.cdf(x), n.cdf(x), 1e-5));
        }
    }

    #[test]
    fn f_cdf_reference() {
        // F(1, 1): cdf(1) = 0.5.
        let f = FisherF::new(1.0, 1.0).unwrap();
        assert!(close(f.cdf(1.0), 0.5, 1e-12));
        // F_{0.95}(2, 10) = 4.10282 (critical value).
        let f210 = FisherF::new(2.0, 10.0).unwrap();
        assert!(close(f210.cdf(4.102_821), 0.95, 1e-5));
    }

    #[test]
    fn f_quantile_reference_values() {
        // F_{0.95}(5, 20) = 2.71089; F_{0.99}(3, 12) = 5.95254.
        let f = FisherF::new(5.0, 20.0).unwrap();
        assert!(close(f.quantile(0.95), 2.710_89, 1e-3));
        let f2 = FisherF::new(3.0, 12.0).unwrap();
        assert!(close(f2.quantile(0.99), 5.952_54, 1e-3));
    }

    #[test]
    fn f_sf_complements_cdf() {
        let f = FisherF::new(4.0, 16.0).unwrap();
        for &x in &[0.5, 1.0, 2.0, 5.0] {
            assert!(close(f.sf(x) + f.cdf(x), 1.0, 1e-12));
        }
    }

    #[test]
    fn f_relates_to_t_squared() {
        // If T ~ t(v) then T² ~ F(1, v).
        let v = 7.0;
        let t = StudentT::new(v).unwrap();
        let f = FisherF::new(1.0, v).unwrap();
        for &x in &[0.5, 1.0, 2.0] {
            let p_t = t.cdf(x) - t.cdf(-x);
            let p_f = f.cdf(x * x);
            assert!(close(p_t, p_f, 1e-10));
        }
    }

    #[test]
    fn chi2_cdf_reference() {
        // χ²(2) is Exp(1/2): cdf(x) = 1 − e^{−x/2}.
        let c = ChiSquared::new(2.0).unwrap();
        for &x in &[0.5, 1.0, 4.0] {
            assert!(close(c.cdf(x), 1.0 - (-x / 2.0).exp(), 1e-12));
        }
    }

    #[test]
    fn chi2_quantile_reference_values() {
        // χ²_{0.95}(10) = 18.307; χ²_{0.95}(1) = 3.8415.
        let c10 = ChiSquared::new(10.0).unwrap();
        assert!(close(c10.quantile(0.95), 18.307, 1e-3));
        let c1 = ChiSquared::new(1.0).unwrap();
        assert!(close(c1.quantile(0.95), 3.841_46, 1e-4));
    }

    #[test]
    fn chi2_is_gamma_special_case() {
        // χ²(k) mean = k: check via quantile(0.5) ≈ k(1-2/(9k))³ (Wilson-Hilferty).
        let c = ChiSquared::new(8.0).unwrap();
        let median = c.quantile(0.5);
        let wh = 8.0 * (1.0f64 - 2.0 / (9.0 * 8.0)).powi(3);
        assert!(close(median, wh, 0.05));
    }

    #[test]
    fn parameter_validation_errors() {
        assert!(StudentT::new(0.0).is_err());
        assert!(FisherF::new(0.0, 5.0).is_err());
        assert!(FisherF::new(5.0, -1.0).is_err());
        assert!(ChiSquared::new(f64::INFINITY).is_err());
    }

    #[test]
    #[should_panic(expected = "(0,1)")]
    fn quantile_rejects_zero() {
        Normal::standard().quantile(0.0);
    }

    #[test]
    fn distribution_trait_is_object_safe() {
        let dists: Vec<Box<dyn Distribution>> = vec![
            Box::new(Normal::standard()),
            Box::new(StudentT::new(5.0).unwrap()),
            Box::new(FisherF::new(2.0, 8.0).unwrap()),
            Box::new(ChiSquared::new(3.0).unwrap()),
        ];
        for d in &dists {
            let p = d.cdf(d.quantile(0.7));
            assert!(close(p, 0.7, 1e-8));
        }
    }
}
