//! Effect-size measures.

use crate::error::StatsError;

/// Cohen's d for two independent samples (pooled standard deviation).
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] when either sample has fewer
/// than two observations, and [`StatsError::InvalidParameter`] when the
/// pooled variance is zero.
///
/// # Examples
///
/// ```
/// use diversify_stats::cohens_d;
/// let d = cohens_d(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap();
/// assert!((d + 3.0).abs() < 1e-12); // means differ by 3 sd
/// ```
pub fn cohens_d(a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
    if a.len() < 2 || b.len() < 2 {
        return Err(StatsError::InsufficientData {
            needed: "two observations per sample",
        });
    }
    let ma = a.iter().sum::<f64>() / a.len() as f64;
    let mb = b.iter().sum::<f64>() / b.len() as f64;
    let va = a.iter().map(|x| (x - ma).powi(2)).sum::<f64>() / (a.len() - 1) as f64;
    let vb = b.iter().map(|x| (x - mb).powi(2)).sum::<f64>() / (b.len() - 1) as f64;
    let pooled = (((a.len() - 1) as f64 * va + (b.len() - 1) as f64 * vb)
        / ((a.len() + b.len() - 2) as f64))
        .sqrt();
    if pooled == 0.0 {
        return Err(StatsError::InvalidParameter {
            what: "pooled standard deviation is zero",
        });
    }
    Ok((ma - mb) / pooled)
}

/// η² (eta squared) from sums of squares: the fraction of total variability
/// explained by a factor. This is the paper's variance-allocation measure.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if either sum of squares is
/// negative or `ss_total < ss_effect`.
pub fn eta_squared(ss_effect: f64, ss_total: f64) -> Result<f64, StatsError> {
    if ss_effect < 0.0 || ss_total < 0.0 || ss_total < ss_effect {
        return Err(StatsError::InvalidParameter {
            what: "sums of squares must satisfy 0 <= ss_effect <= ss_total",
        });
    }
    if ss_total == 0.0 {
        return Ok(0.0);
    }
    Ok(ss_effect / ss_total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohens_d_zero_for_identical_means() {
        let d = cohens_d(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]).unwrap();
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn cohens_d_sign_follows_first_sample() {
        let d = cohens_d(&[10.0, 11.0], &[1.0, 2.0]).unwrap();
        assert!(d > 0.0);
    }

    #[test]
    fn cohens_d_errors() {
        assert!(cohens_d(&[1.0], &[1.0, 2.0]).is_err());
        assert!(cohens_d(&[1.0, 1.0], &[2.0, 2.0]).is_err()); // zero pooled sd
    }

    #[test]
    fn eta_squared_bounds() {
        assert_eq!(eta_squared(0.0, 0.0).unwrap(), 0.0);
        assert_eq!(eta_squared(5.0, 10.0).unwrap(), 0.5);
        assert_eq!(eta_squared(10.0, 10.0).unwrap(), 1.0);
        assert!(eta_squared(11.0, 10.0).is_err());
        assert!(eta_squared(-1.0, 10.0).is_err());
    }
}
