//! ANalysis Of VAriance — the paper's *Diversity Assessment* instrument.
//!
//! Two entry points:
//!
//! * [`one_way`] — classic fixed-effects one-way ANOVA over k groups
//!   (e.g. time-to-attack grouped by OS variant);
//! * [`factorial_two_level`] — effect estimation and variance allocation
//!   for replicated two-level (fractional) factorial designs, the form
//!   produced by the `diversify-doe` crate. This is what Sec. II of the
//!   paper describes: *"allocate the variability of the security indicators
//!   ... to the component(s) responsible for such variability."*

use crate::dist::FisherF;
use crate::error::StatsError;
use std::fmt;

/// One source-of-variation row in an ANOVA table.
#[derive(Debug, Clone, PartialEq)]
pub struct AnovaRow {
    /// Name of the variation source (factor, interaction, error, ...).
    pub source: String,
    /// Sum of squares attributed to the source.
    pub sum_sq: f64,
    /// Degrees of freedom.
    pub df: f64,
    /// Mean square (`sum_sq / df`).
    pub mean_sq: f64,
    /// F statistic against the error term (`None` for the error/total rows).
    pub f_stat: Option<f64>,
    /// Upper-tail p-value of the F statistic.
    pub p_value: Option<f64>,
    /// Fraction of total variability explained (`sum_sq / ss_total`).
    pub variance_explained: f64,
}

/// Result of a one-way ANOVA.
#[derive(Debug, Clone, PartialEq)]
pub struct AnovaTable {
    /// Between-groups sum of squares.
    pub ss_between: f64,
    /// Within-groups (error) sum of squares.
    pub ss_within: f64,
    /// Total sum of squares.
    pub ss_total: f64,
    /// Between-groups degrees of freedom (k − 1).
    pub df_between: f64,
    /// Within-groups degrees of freedom (N − k).
    pub df_within: f64,
    /// The F statistic.
    pub f_stat: f64,
    /// Upper-tail p-value.
    pub p_value: f64,
    /// Effect size η² = SS_between / SS_total.
    pub eta_squared: f64,
}

impl fmt::Display for AnovaTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>12} {:>6} {:>12} {:>10} {:>10}",
            "source", "SS", "df", "MS", "F", "p"
        )?;
        writeln!(
            f,
            "{:<12} {:>12.4} {:>6} {:>12.4} {:>10.4} {:>10.4}",
            "between",
            self.ss_between,
            self.df_between,
            self.ss_between / self.df_between,
            self.f_stat,
            self.p_value
        )?;
        writeln!(
            f,
            "{:<12} {:>12.4} {:>6} {:>12.4}",
            "within",
            self.ss_within,
            self.df_within,
            self.ss_within / self.df_within
        )?;
        writeln!(
            f,
            "{:<12} {:>12.4} {:>6}",
            "total",
            self.ss_total,
            self.df_between + self.df_within
        )
    }
}

/// Fixed-effects one-way ANOVA over `groups`.
///
/// # Errors
///
/// Returns an error when fewer than two groups are given, any group is
/// empty, or there are no error degrees of freedom (every group has a
/// single observation).
///
/// # Examples
///
/// See the crate-level documentation.
pub fn one_way(groups: &[&[f64]]) -> Result<AnovaTable, StatsError> {
    if groups.len() < 2 {
        return Err(StatsError::InvalidGroups {
            what: "one-way ANOVA needs at least two groups",
        });
    }
    if groups.iter().any(|g| g.is_empty()) {
        return Err(StatsError::InvalidGroups {
            what: "every group must contain at least one observation",
        });
    }
    let n_total: usize = groups.iter().map(|g| g.len()).sum();
    let k = groups.len();
    if n_total <= k {
        return Err(StatsError::InsufficientData {
            needed: "at least one group with two or more observations",
        });
    }
    let grand_mean: f64 = groups.iter().flat_map(|g| g.iter()).sum::<f64>() / n_total as f64;

    let mut ss_between = 0.0;
    let mut ss_within = 0.0;
    for g in groups {
        let gm = g.iter().sum::<f64>() / g.len() as f64;
        ss_between += g.len() as f64 * (gm - grand_mean).powi(2);
        ss_within += g.iter().map(|x| (x - gm).powi(2)).sum::<f64>();
    }
    let ss_total = ss_between + ss_within;
    let df_between = (k - 1) as f64;
    let df_within = (n_total - k) as f64;
    let ms_between = ss_between / df_between;
    let ms_within = ss_within / df_within;
    // Degenerate case: zero within-group variance. The factor explains
    // everything; report an infinite F with p = 0 (or F = 0 when the factor
    // is also null).
    let (f_stat, p_value) = if ms_within == 0.0 {
        if ms_between == 0.0 {
            (0.0, 1.0)
        } else {
            (f64::INFINITY, 0.0)
        }
    } else {
        let f_stat = ms_between / ms_within;
        let fdist = FisherF::new(df_between, df_within).expect("dfs are positive by construction");
        (f_stat, fdist.sf(f_stat))
    };
    Ok(AnovaTable {
        ss_between,
        ss_within,
        ss_total,
        df_between,
        df_within,
        f_stat,
        p_value,
        eta_squared: if ss_total > 0.0 {
            ss_between / ss_total
        } else {
            0.0
        },
    })
}

/// ANOVA decomposition for a replicated two-level factorial (or regular
/// fractional factorial) design.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorialAnova {
    /// One row per estimated effect, plus the final `error` row.
    pub rows: Vec<AnovaRow>,
    /// Total sum of squares.
    pub ss_total: f64,
    /// Error degrees of freedom.
    pub df_error: f64,
    /// Grand mean of all observations.
    pub grand_mean: f64,
}

impl FactorialAnova {
    /// The row for a named effect, if present.
    #[must_use]
    pub fn effect(&self, name: &str) -> Option<&AnovaRow> {
        self.rows.iter().find(|r| r.source == name)
    }

    /// Effects sorted by variance explained, descending — the paper's
    /// "components valuable to diversify" ranking.
    #[must_use]
    pub fn ranking(&self) -> Vec<&AnovaRow> {
        let mut effects: Vec<&AnovaRow> =
            self.rows.iter().filter(|r| r.source != "error").collect();
        effects.sort_by(|a, b| {
            b.variance_explained
                .partial_cmp(&a.variance_explained)
                .expect("variance fractions are finite")
        });
        effects
    }
}

impl fmt::Display for FactorialAnova {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:>12} {:>6} {:>12} {:>10} {:>10} {:>8}",
            "source", "SS", "df", "MS", "F", "p", "var%"
        )?;
        for r in &self.rows {
            let fs = r.f_stat.map_or("-".to_string(), |v| format!("{v:.4}"));
            let pv = r.p_value.map_or("-".to_string(), |v| format!("{v:.4}"));
            writeln!(
                f,
                "{:<24} {:>12.4} {:>6} {:>12.4} {:>10} {:>10} {:>7.2}%",
                r.source,
                r.sum_sq,
                r.df,
                r.mean_sq,
                fs,
                pv,
                100.0 * r.variance_explained
            )?;
        }
        writeln!(f, "{:<24} {:>12.4}", "total", self.ss_total)
    }
}

/// An effect to estimate in [`factorial_two_level`]: either a main effect
/// (one factor index) or an interaction (several indices).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectSpec {
    /// Display name of the effect (e.g. `"OS"` or `"OS×Protocol"`).
    pub name: String,
    /// Indices of the factors whose signed levels are multiplied to form
    /// the contrast column.
    pub factors: Vec<usize>,
}

impl EffectSpec {
    /// A main effect of factor `index` named `name`.
    #[must_use]
    pub fn main(name: impl Into<String>, index: usize) -> Self {
        EffectSpec {
            name: name.into(),
            factors: vec![index],
        }
    }

    /// A two-factor interaction.
    #[must_use]
    pub fn interaction(name: impl Into<String>, a: usize, b: usize) -> Self {
        EffectSpec {
            name: name.into(),
            factors: vec![a, b],
        }
    }
}

/// ANOVA for a replicated two-level factorial design.
///
/// * `design` — one row per run, each entry `-1` or `+1`; all rows must
///   have the same number of factors.
/// * `responses` — one vector of replicate observations per run (all runs
///   must have the same replicate count ≥ 1; ≥ 2 for an error term).
/// * `effects` — which effects (main or interaction) to estimate.
///
/// Effect sum of squares uses the standard contrast formula
/// `SS = (Σ cᵢ ȳᵢ)² · r / N` where `cᵢ ∈ {−1, +1}` and the error term pools
/// within-run replicate variance.
///
/// # Errors
///
/// Returns an error for inconsistent dimensions, levels other than ±1,
/// unbalanced contrast columns, or aliased effect pairs (identical or
/// opposite contrast columns — which regular fractional designs produce for
/// confounded effects).
pub fn factorial_two_level(
    design: &[Vec<i8>],
    responses: &[Vec<f64>],
    effects: &[EffectSpec],
) -> Result<FactorialAnova, StatsError> {
    let runs = design.len();
    if runs < 2 {
        return Err(StatsError::InvalidGroups {
            what: "factorial ANOVA needs at least two runs",
        });
    }
    if responses.len() != runs {
        return Err(StatsError::InvalidGroups {
            what: "responses must have one entry per design run",
        });
    }
    let k = design[0].len();
    if design.iter().any(|row| row.len() != k) {
        return Err(StatsError::InvalidGroups {
            what: "design rows must have equal length",
        });
    }
    if design
        .iter()
        .any(|row| row.iter().any(|&l| l != -1 && l != 1))
    {
        return Err(StatsError::InvalidParameter {
            what: "design levels must be -1 or +1",
        });
    }
    let reps = responses[0].len();
    if reps == 0 || responses.iter().any(|r| r.len() != reps) {
        return Err(StatsError::InvalidGroups {
            what: "every run needs the same positive replicate count",
        });
    }
    for spec in effects {
        if spec.factors.is_empty() || spec.factors.iter().any(|&i| i >= k) {
            return Err(StatsError::InvalidParameter {
                what: "effect refers to a factor index outside the design",
            });
        }
    }

    // Contrast columns.
    let columns: Vec<Vec<i8>> = effects
        .iter()
        .map(|spec| {
            design
                .iter()
                .map(|row| spec.factors.iter().map(|&i| row[i]).product::<i8>())
                .collect()
        })
        .collect();

    // Balance check: each contrast must have as many +1 as −1 runs.
    for (spec, col) in effects.iter().zip(&columns) {
        let plus = col.iter().filter(|&&c| c == 1).count();
        if plus * 2 != runs {
            let _ = spec;
            return Err(StatsError::InvalidGroups {
                what: "contrast column is unbalanced; design is not a regular two-level design for this effect",
            });
        }
    }

    // Alias check: no two requested effects may share a contrast column.
    for i in 0..columns.len() {
        for j in (i + 1)..columns.len() {
            let same = columns[i] == columns[j];
            let opposite = columns[i].iter().zip(&columns[j]).all(|(a, b)| *a == -*b);
            if same || opposite {
                return Err(StatsError::InvalidGroups {
                    what: "two requested effects are aliased in this design",
                });
            }
        }
    }

    let n_total = (runs * reps) as f64;
    let grand_mean: f64 = responses.iter().flat_map(|r| r.iter()).sum::<f64>() / n_total;
    let ss_total: f64 = responses
        .iter()
        .flat_map(|r| r.iter())
        .map(|y| (y - grand_mean).powi(2))
        .sum();

    let run_means: Vec<f64> = responses
        .iter()
        .map(|r| r.iter().sum::<f64>() / reps as f64)
        .collect();

    // Pooled within-run (pure error) sum of squares.
    let ss_error: f64 = responses
        .iter()
        .zip(&run_means)
        .map(|(r, &m)| r.iter().map(|y| (y - m).powi(2)).sum::<f64>())
        .sum();
    let df_error = (runs * (reps - 1)) as f64;

    let fdist = if df_error > 0.0 {
        Some(FisherF::new(1.0, df_error).expect("df positive"))
    } else {
        None
    };
    let ms_error = if df_error > 0.0 {
        ss_error / df_error
    } else {
        0.0
    };

    let mut rows = Vec::with_capacity(effects.len() + 1);
    for (spec, col) in effects.iter().zip(&columns) {
        let contrast: f64 = col
            .iter()
            .zip(&run_means)
            .map(|(&c, &m)| f64::from(c) * m)
            .sum();
        // SS_effect = r * (Σ c_i ybar_i)^2 / runs.
        let ss = reps as f64 * contrast * contrast / runs as f64;
        let (f_stat, p_value) = match (&fdist, ms_error > 0.0) {
            (Some(fd), true) => {
                let f = ss / ms_error;
                (Some(f), Some(fd.sf(f)))
            }
            _ => (None, None),
        };
        rows.push(AnovaRow {
            source: spec.name.clone(),
            sum_sq: ss,
            df: 1.0,
            mean_sq: ss,
            f_stat,
            p_value,
            variance_explained: if ss_total > 0.0 { ss / ss_total } else { 0.0 },
        });
    }
    rows.push(AnovaRow {
        source: "error".to_string(),
        sum_sq: ss_error,
        df: df_error,
        mean_sq: ms_error,
        f_stat: None,
        p_value: None,
        variance_explained: if ss_total > 0.0 {
            ss_error / ss_total
        } else {
            0.0
        },
    });

    Ok(FactorialAnova {
        rows,
        ss_total,
        df_error,
        grand_mean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_way_textbook_example() {
        // Montgomery-style: three groups with clearly different means.
        let g1 = [4.0, 5.0, 6.0, 5.0];
        let g2 = [8.0, 9.0, 10.0, 9.0];
        let g3 = [6.0, 7.0, 8.0, 7.0];
        let t = one_way(&[&g1, &g2, &g3]).unwrap();
        assert!((t.ss_total - (t.ss_between + t.ss_within)).abs() < 1e-10);
        assert_eq!(t.df_between, 2.0);
        assert_eq!(t.df_within, 9.0);
        // SS_between = 4 * ((5-7)^2 + (9-7)^2 + (7-7)^2) = 32.
        assert!((t.ss_between - 32.0).abs() < 1e-10);
        // SS_within = 3 groups * 2.0 = 6.
        assert!((t.ss_within - 6.0).abs() < 1e-10);
        let expected_f = (32.0 / 2.0) / (6.0 / 9.0);
        assert!((t.f_stat - expected_f).abs() < 1e-10);
        assert!(t.p_value < 0.001);
        assert!((t.eta_squared - 32.0 / 38.0).abs() < 1e-12);
    }

    #[test]
    fn one_way_null_case_high_p() {
        // Identical group means: F ≈ 0, p ≈ 1.
        let g1 = [1.0, 2.0, 3.0];
        let g2 = [2.0, 1.0, 3.0];
        let t = one_way(&[&g1, &g2]).unwrap();
        assert!(t.f_stat < 1e-10);
        assert!(t.p_value > 0.99);
    }

    #[test]
    fn one_way_degenerate_zero_within() {
        let g1 = [1.0, 1.0];
        let g2 = [2.0, 2.0];
        let t = one_way(&[&g1, &g2]).unwrap();
        assert!(t.f_stat.is_infinite());
        assert_eq!(t.p_value, 0.0);
    }

    #[test]
    fn one_way_all_constant() {
        let g1 = [5.0, 5.0];
        let g2 = [5.0, 5.0];
        let t = one_way(&[&g1, &g2]).unwrap();
        assert_eq!(t.f_stat, 0.0);
        assert_eq!(t.p_value, 1.0);
        assert_eq!(t.eta_squared, 0.0);
    }

    #[test]
    fn one_way_input_validation() {
        let g: [f64; 3] = [1.0, 2.0, 3.0];
        assert!(one_way(&[&g]).is_err());
        let empty: [f64; 0] = [];
        assert!(one_way(&[&g, &empty]).is_err());
        let s1 = [1.0];
        let s2 = [2.0];
        assert!(one_way(&[&s1, &s2]).is_err());
    }

    fn full_factorial_2x2() -> Vec<Vec<i8>> {
        vec![vec![-1, -1], vec![1, -1], vec![-1, 1], vec![1, 1]]
    }

    #[test]
    fn factorial_recovers_planted_effects() {
        // y = 10 + 3*A - 2*B + 1*AB (+ noise-free replicates).
        let design = full_factorial_2x2();
        let responses: Vec<Vec<f64>> = design
            .iter()
            .map(|row| {
                let (a, b) = (f64::from(row[0]), f64::from(row[1]));
                let y = 10.0 + 3.0 * a - 2.0 * b + 1.0 * a * b;
                vec![y + 0.01, y - 0.01] // tiny symmetric jitter
            })
            .collect();
        let effects = vec![
            EffectSpec::main("A", 0),
            EffectSpec::main("B", 1),
            EffectSpec::interaction("A×B", 0, 1),
        ];
        let a = factorial_two_level(&design, &responses, &effects).unwrap();
        // SS_A = r*(Σc ybar)²/runs = 2*(4*3)²/4? contrast = Σ ±ybar = 2*(2*3) = 12; wait:
        // run means: levels a=±1 contribute ±3 each; contrast over 4 runs = 4*3 = 12? Let's
        // just assert ordering and decomposition instead of closed form:
        let ss_a = a.effect("A").unwrap().sum_sq;
        let ss_b = a.effect("B").unwrap().sum_sq;
        let ss_ab = a.effect("A×B").unwrap().sum_sq;
        assert!(ss_a > ss_b && ss_b > ss_ab, "planted magnitudes ordered");
        // Planted effect sizes: SS = N * coeff² with N = 8 observations.
        assert!((ss_a - 8.0 * 9.0).abs() < 0.1, "ss_a={ss_a}");
        assert!((ss_b - 8.0 * 4.0).abs() < 0.1);
        assert!((ss_ab - 8.0 * 1.0).abs() < 0.1);
        // Full decomposition: SS_total = ΣSS_effect + SS_error.
        let sum: f64 = a.rows.iter().map(|r| r.sum_sq).sum();
        assert!((sum - a.ss_total).abs() < 1e-8);
        // Significance.
        assert!(a.effect("A").unwrap().p_value.unwrap() < 0.01);
    }

    #[test]
    fn factorial_ranking_orders_by_variance() {
        let design = full_factorial_2x2();
        let responses: Vec<Vec<f64>> = design
            .iter()
            .map(|row| {
                let (a, b) = (f64::from(row[0]), f64::from(row[1]));
                let y = 5.0 * b + 0.5 * a;
                vec![y + 0.05, y - 0.05]
            })
            .collect();
        let effects = vec![EffectSpec::main("A", 0), EffectSpec::main("B", 1)];
        let table = factorial_two_level(&design, &responses, &effects).unwrap();
        let ranking = table.ranking();
        assert_eq!(ranking[0].source, "B");
        assert_eq!(ranking[1].source, "A");
    }

    #[test]
    fn factorial_detects_aliasing() {
        // A 2^(2-1) half fraction with I = AB: columns A and B are aliased
        // with each other's interaction; requesting A and AB must error.
        let design = vec![vec![-1, -1], vec![1, 1]]; // B = A
        let responses = vec![vec![1.0, 1.1], vec![2.0, 2.1]];
        let effects = vec![EffectSpec::main("A", 0), EffectSpec::main("B", 1)];
        let err = factorial_two_level(&design, &responses, &effects).unwrap_err();
        assert!(matches!(err, StatsError::InvalidGroups { .. }));
    }

    #[test]
    fn factorial_rejects_bad_inputs() {
        let design = full_factorial_2x2();
        let effects = vec![EffectSpec::main("A", 0)];
        // Wrong response count.
        assert!(factorial_two_level(&design, &[vec![1.0]], &effects).is_err());
        // Bad level.
        let bad = vec![vec![0, 1], vec![1, -1]];
        assert!(factorial_two_level(&bad, &[vec![1.0], vec![1.0]], &effects).is_err());
        // Factor index out of range.
        let responses: Vec<Vec<f64>> = vec![vec![1.0]; 4];
        assert!(factorial_two_level(&design, &responses, &[EffectSpec::main("Z", 9)]).is_err());
        // Ragged replicates.
        let ragged = vec![vec![1.0, 2.0], vec![1.0], vec![1.0, 2.0], vec![1.0, 2.0]];
        assert!(factorial_two_level(&design, &ragged, &effects).is_err());
    }

    #[test]
    fn factorial_without_replicates_has_no_f() {
        let design = full_factorial_2x2();
        let responses: Vec<Vec<f64>> = design
            .iter()
            .map(|row| vec![f64::from(row[0]) * 2.0])
            .collect();
        let effects = vec![EffectSpec::main("A", 0)];
        let t = factorial_two_level(&design, &responses, &effects).unwrap();
        assert_eq!(t.df_error, 0.0);
        assert!(t.effect("A").unwrap().f_stat.is_none());
        assert!(t.effect("A").unwrap().p_value.is_none());
    }

    #[test]
    fn factorial_display_renders() {
        let design = full_factorial_2x2();
        let responses: Vec<Vec<f64>> = design.iter().map(|_| vec![1.0, 2.0]).collect();
        let t = factorial_two_level(&design, &responses, &[EffectSpec::main("A", 0)]).unwrap();
        let s = t.to_string();
        assert!(s.contains("source"));
        assert!(s.contains("error"));
        assert!(s.contains("total"));
    }

    #[test]
    fn one_way_display_renders() {
        let g1 = [1.0, 2.0];
        let g2 = [3.0, 4.0];
        let t = one_way(&[&g1, &g2]).unwrap();
        assert!(t.to_string().contains("between"));
    }
}
