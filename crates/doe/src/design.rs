//! Two-level experimental designs.

use std::collections::BTreeSet;
use std::fmt;

/// Errors for design construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DoeError {
    /// Factor count must be at least one.
    NoFactors,
    /// The requested design is too large to enumerate.
    TooLarge,
    /// A fractional-factorial generator was malformed.
    BadGenerator {
        /// Description of the defect.
        what: &'static str,
    },
    /// Plackett–Burman run count must be a multiple of 4 (supported: 12).
    BadRunCount,
}

impl fmt::Display for DoeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DoeError::NoFactors => write!(f, "design needs at least one factor"),
            DoeError::TooLarge => write!(f, "design too large to enumerate"),
            DoeError::BadGenerator { what } => write!(f, "bad generator: {what}"),
            DoeError::BadRunCount => write!(f, "unsupported run count"),
        }
    }
}

impl std::error::Error for DoeError {}

/// A two-level design matrix: one row per run, levels in `{-1, +1}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignMatrix {
    /// Factor names, column order.
    pub factors: Vec<String>,
    /// Rows of `-1`/`+1` levels.
    pub rows: Vec<Vec<i8>>,
}

impl DesignMatrix {
    /// Number of runs.
    #[must_use]
    pub fn runs(&self) -> usize {
        self.rows.len()
    }

    /// Number of factors.
    #[must_use]
    pub fn factor_count(&self) -> usize {
        self.factors.len()
    }

    /// Whether every column is balanced (equal +1 and −1 counts).
    #[must_use]
    pub fn is_balanced(&self) -> bool {
        (0..self.factor_count()).all(|j| {
            let plus = self.rows.iter().filter(|r| r[j] == 1).count();
            plus * 2 == self.runs()
        })
    }

    /// Whether all column pairs are orthogonal (zero dot product).
    #[must_use]
    pub fn is_orthogonal(&self) -> bool {
        let k = self.factor_count();
        for a in 0..k {
            for b in (a + 1)..k {
                let dot: i32 = self
                    .rows
                    .iter()
                    .map(|r| i32::from(r[a]) * i32::from(r[b]))
                    .sum();
                if dot != 0 {
                    return false;
                }
            }
        }
        true
    }

    /// The level of factor `j` in run `i`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn level(&self, i: usize, j: usize) -> i8 {
        self.rows[i][j]
    }
}

impl fmt::Display for DesignMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run")?;
        for name in &self.factors {
            write!(f, " {name:>10}")?;
        }
        writeln!(f)?;
        for (i, row) in self.rows.iter().enumerate() {
            write!(f, "{i:>3}")?;
            for &l in row {
                write!(f, " {:>10}", if l == 1 { "+1" } else { "-1" })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Full factorial 2^k design.
///
/// # Errors
///
/// Returns [`DoeError::NoFactors`] for empty input and
/// [`DoeError::TooLarge`] for more than 20 factors.
pub fn full_factorial(factors: &[&str]) -> Result<DesignMatrix, DoeError> {
    let k = factors.len();
    if k == 0 {
        return Err(DoeError::NoFactors);
    }
    if k > 20 {
        return Err(DoeError::TooLarge);
    }
    let rows = (0..(1usize << k))
        .map(|run| {
            (0..k)
                .map(|j| if run & (1 << j) != 0 { 1 } else { -1 })
                .collect()
        })
        .collect();
    Ok(DesignMatrix {
        factors: factors.iter().map(|s| (*s).to_string()).collect(),
        rows,
    })
}

/// Regular fractional factorial 2^(k−p).
///
/// The first `k − p` factors are *basic* (full factorial); each remaining
/// factor is generated as the product of a set of basic-factor columns.
/// `generators[i]` lists the basic-factor indices whose product defines
/// generated factor `k − p + i`.
///
/// Returns the design and its **defining relation words** (each word is
/// the set of factor indices whose product is identically +1), from which
/// the alias structure follows.
///
/// # Errors
///
/// Returns [`DoeError`] for empty factors, wrong generator count, or a
/// generator referencing a non-basic factor.
pub fn fractional_factorial(
    factors: &[&str],
    generators: &[Vec<usize>],
) -> Result<(DesignMatrix, Vec<BTreeSet<usize>>), DoeError> {
    let k = factors.len();
    let p = generators.len();
    if k == 0 {
        return Err(DoeError::NoFactors);
    }
    if p >= k {
        return Err(DoeError::BadGenerator {
            what: "more generators than factors",
        });
    }
    let basic = k - p;
    if basic > 20 {
        return Err(DoeError::TooLarge);
    }
    for g in generators {
        if g.is_empty() {
            return Err(DoeError::BadGenerator {
                what: "empty generator",
            });
        }
        if g.iter().any(|&i| i >= basic) {
            return Err(DoeError::BadGenerator {
                what: "generator must reference basic factors only",
            });
        }
    }
    let mut rows = Vec::with_capacity(1 << basic);
    for run in 0..(1usize << basic) {
        let mut row: Vec<i8> = (0..basic)
            .map(|j| if run & (1 << j) != 0 { 1 } else { -1 })
            .collect();
        for g in generators {
            let prod: i8 = g.iter().map(|&i| row[i]).product();
            row.push(prod);
        }
        rows.push(row);
    }
    // Defining words: for each generator, I = (generated factor) × (basic
    // factors in the generator).
    let words: Vec<BTreeSet<usize>> = generators
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let mut w: BTreeSet<usize> = g.iter().copied().collect();
            w.insert(basic + i);
            w
        })
        .collect();
    Ok((
        DesignMatrix {
            factors: factors.iter().map(|s| (*s).to_string()).collect(),
            rows,
        },
        words,
    ))
}

/// The resolution of a fractional design: the length of the shortest word
/// in the (closed) defining relation. Resolution ≥ III means main effects
/// are unaliased with each other; ≥ IV means main effects are unaliased
/// with two-factor interactions.
#[must_use]
pub fn resolution(words: &[BTreeSet<usize>]) -> usize {
    // Close the word set under symmetric difference (group generated by
    // the defining words).
    let mut group: BTreeSet<BTreeSet<usize>> = BTreeSet::new();
    group.insert(BTreeSet::new());
    for w in words {
        let snapshot: Vec<BTreeSet<usize>> = group.iter().cloned().collect();
        for g in snapshot {
            let sym: BTreeSet<usize> = g.symmetric_difference(w).copied().collect();
            group.insert(sym);
        }
    }
    group
        .iter()
        .filter(|w| !w.is_empty())
        .map(BTreeSet::len)
        .min()
        .unwrap_or(usize::MAX)
}

/// The 12-run Plackett–Burman screening design (up to 11 factors).
///
/// # Errors
///
/// Returns [`DoeError::NoFactors`] for empty input or more than 11
/// factors.
pub fn plackett_burman(factors: &[&str]) -> Result<DesignMatrix, DoeError> {
    let k = factors.len();
    if k == 0 || k > 11 {
        return Err(DoeError::NoFactors);
    }
    // Standard PB12 first row (Plackett & Burman 1946).
    const FIRST: [i8; 11] = [1, 1, -1, 1, 1, 1, -1, -1, -1, 1, -1];
    let mut rows = Vec::with_capacity(12);
    for r in 0..11 {
        let row: Vec<i8> = (0..k).map(|c| FIRST[(11 + c - r) % 11]).collect();
        rows.push(row);
    }
    rows.push(vec![-1; k]);
    Ok(DesignMatrix {
        factors: factors.iter().map(|s| (*s).to_string()).collect(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_factorial_shape() {
        let d = full_factorial(&["A", "B", "C"]).unwrap();
        assert_eq!(d.runs(), 8);
        assert_eq!(d.factor_count(), 3);
        assert!(d.is_balanced());
        assert!(d.is_orthogonal());
        // All rows distinct.
        let set: std::collections::HashSet<_> = d.rows.iter().collect();
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn full_factorial_errors() {
        assert_eq!(full_factorial(&[]).unwrap_err(), DoeError::NoFactors);
        let many: Vec<&str> = (0..25).map(|_| "x").collect();
        assert_eq!(full_factorial(&many).unwrap_err(), DoeError::TooLarge);
    }

    #[test]
    fn fractional_half_of_2_4() {
        // 2^(4-1) with D = ABC: resolution IV.
        let (d, words) = fractional_factorial(&["A", "B", "C", "D"], &[vec![0, 1, 2]]).unwrap();
        assert_eq!(d.runs(), 8);
        assert_eq!(d.factor_count(), 4);
        assert!(d.is_balanced());
        assert!(d.is_orthogonal(), "main effects unaliased in res-IV design");
        assert_eq!(words.len(), 1);
        assert_eq!(resolution(&words), 4);
        // D column equals product of A, B, C in every run.
        for row in &d.rows {
            assert_eq!(row[3], row[0] * row[1] * row[2]);
        }
    }

    #[test]
    fn r3_design_2_6_2() {
        // The experiment R3 design: 6 factors in 16 runs, generators
        // E = ABC, F = BCD (resolution IV).
        let (d, words) = fractional_factorial(
            &[
                "OS",
                "PLC-FW",
                "Protocol",
                "Firewall",
                "Sensor",
                "Historian",
            ],
            &[vec![0, 1, 2], vec![1, 2, 3]],
        )
        .unwrap();
        assert_eq!(d.runs(), 16);
        assert!(d.is_balanced());
        assert!(d.is_orthogonal());
        assert_eq!(resolution(&words), 4);
    }

    #[test]
    fn fractional_errors() {
        assert!(fractional_factorial(&[], &[]).is_err());
        assert!(fractional_factorial(&["A"], &[vec![0]]).is_err()); // p >= k
        assert!(
            fractional_factorial(&["A", "B", "C"], &[vec![5]]).is_err(),
            "generator referencing non-basic factor"
        );
        assert!(fractional_factorial(&["A", "B", "C"], &[vec![]]).is_err());
    }

    #[test]
    fn plackett_burman_properties() {
        let names: Vec<&str> = vec!["a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k"];
        let d = plackett_burman(&names).unwrap();
        assert_eq!(d.runs(), 12);
        assert!(d.is_balanced());
        assert!(d.is_orthogonal());
    }

    #[test]
    fn plackett_burman_subset_of_factors() {
        let d = plackett_burman(&["a", "b", "c", "d", "e"]).unwrap();
        assert_eq!(d.runs(), 12);
        assert_eq!(d.factor_count(), 5);
        assert!(d.is_balanced());
        assert!(d.is_orthogonal());
    }

    #[test]
    fn plackett_burman_errors() {
        assert!(plackett_burman(&[]).is_err());
        let many: Vec<&str> = (0..12).map(|_| "x").collect();
        assert!(plackett_burman(&many).is_err());
    }

    #[test]
    fn display_renders_runs() {
        let d = full_factorial(&["A", "B"]).unwrap();
        let s = d.to_string();
        assert!(s.contains("A"));
        assert!(s.contains("+1"));
        assert!(s.contains("-1"));
    }

    #[test]
    fn resolution_of_principal_fraction_2_5_2() {
        // 2^(5-2) with D = AB, E = AC → words {A,B,D}, {A,C,E}; their
        // product {B,C,D,E} has length 4; shortest is 3 → resolution III.
        let (_, words) =
            fractional_factorial(&["A", "B", "C", "D", "E"], &[vec![0, 1], vec![0, 2]]).unwrap();
        assert_eq!(resolution(&words), 3);
    }
}
