//! Latin hypercube sampling.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generates `n` Latin-hypercube samples in `d` dimensions on `[0, 1)^d`.
///
/// Each dimension is divided into `n` equal strata; every stratum is hit
/// exactly once per dimension, with uniform jitter inside the stratum.
///
/// # Panics
///
/// Panics if `n` or `d` is zero.
///
/// # Examples
///
/// ```
/// use diversify_doe::latin_hypercube;
/// let pts = latin_hypercube(10, 3, 42);
/// assert_eq!(pts.len(), 10);
/// assert!(pts.iter().all(|p| p.len() == 3));
/// ```
#[must_use]
pub fn latin_hypercube(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    assert!(n > 0 && d > 0, "n and d must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(d);
    for _ in 0..d {
        let mut strata: Vec<usize> = (0..n).collect();
        strata.shuffle(&mut rng);
        columns.push(
            strata
                .into_iter()
                .map(|s| (s as f64 + rng.gen::<f64>()) / n as f64)
                .collect(),
        );
    }
    (0..n)
        .map(|i| columns.iter().map(|c| c[i]).collect())
        .collect()
}

/// Rescales a unit-cube sample to the given per-dimension `[lo, hi]`
/// bounds.
///
/// # Panics
///
/// Panics if dimensions disagree or any bound pair has `lo > hi`.
#[must_use]
pub fn scale_to_bounds(points: &[Vec<f64>], bounds: &[(f64, f64)]) -> Vec<Vec<f64>> {
    points
        .iter()
        .map(|p| {
            assert_eq!(p.len(), bounds.len(), "dimension mismatch");
            p.iter()
                .zip(bounds)
                .map(|(&u, &(lo, hi))| {
                    assert!(lo <= hi, "bad bounds");
                    lo + u * (hi - lo)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stratification_property() {
        let n = 20;
        let pts = latin_hypercube(n, 2, 7);
        for dim in 0..2 {
            let mut hit = vec![false; n];
            for p in &pts {
                let stratum = (p[dim] * n as f64).floor() as usize;
                assert!(!hit[stratum.min(n - 1)], "stratum hit twice");
                hit[stratum.min(n - 1)] = true;
            }
            assert!(hit.iter().all(|&h| h), "every stratum hit once");
        }
    }

    #[test]
    fn values_in_unit_cube() {
        for p in latin_hypercube(50, 4, 1) {
            for &x in &p {
                assert!((0.0..1.0).contains(&x));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(latin_hypercube(10, 3, 5), latin_hypercube(10, 3, 5));
        assert_ne!(latin_hypercube(10, 3, 5), latin_hypercube(10, 3, 6));
    }

    #[test]
    fn scaling_respects_bounds() {
        let pts = latin_hypercube(30, 2, 3);
        let scaled = scale_to_bounds(&pts, &[(10.0, 20.0), (-1.0, 1.0)]);
        for p in &scaled {
            assert!((10.0..20.0).contains(&p[0]));
            assert!((-1.0..1.0).contains(&p[1]));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_samples_rejected() {
        let _ = latin_hypercube(0, 2, 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn scale_dimension_mismatch_panics() {
        let pts = latin_hypercube(3, 2, 0);
        let _ = scale_to_bounds(&pts, &[(0.0, 1.0)]);
    }
}
