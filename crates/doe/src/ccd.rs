//! Central composite designs for response-surface exploration.

use crate::design::{full_factorial, DoeError};

/// A continuous-level design: one row per run, coded levels per factor.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuousDesign {
    /// Factor names.
    pub factors: Vec<String>,
    /// Coded rows (factorial ±1 points, axial ±α points, centre points).
    pub rows: Vec<Vec<f64>>,
}

impl ContinuousDesign {
    /// Number of runs.
    #[must_use]
    pub fn runs(&self) -> usize {
        self.rows.len()
    }
}

/// Builds a rotatable central composite design: a 2^k factorial core,
/// `2k` axial points at distance `α = (2^k)^(1/4)`, and `center` centre
/// points.
///
/// # Errors
///
/// Propagates [`DoeError`] from the factorial core construction.
pub fn central_composite(factors: &[&str], center: usize) -> Result<ContinuousDesign, DoeError> {
    let core = full_factorial(factors)?;
    let k = factors.len();
    let alpha = (core.runs() as f64).powf(0.25);
    let mut rows: Vec<Vec<f64>> = core
        .rows
        .iter()
        .map(|r| r.iter().map(|&l| f64::from(l)).collect())
        .collect();
    for j in 0..k {
        for sign in [-1.0, 1.0] {
            let mut row = vec![0.0; k];
            row[j] = sign * alpha;
            rows.push(row);
        }
    }
    for _ in 0..center {
        rows.push(vec![0.0; k]);
    }
    Ok(ContinuousDesign {
        factors: factors.iter().map(|s| (*s).to_string()).collect(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccd_run_count() {
        // k=2: 4 factorial + 4 axial + 3 centre = 11 runs.
        let d = central_composite(&["A", "B"], 3).unwrap();
        assert_eq!(d.runs(), 11);
    }

    #[test]
    fn rotatable_alpha() {
        let d = central_composite(&["A", "B"], 0).unwrap();
        // α = (4)^(1/4) = √2 for k = 2.
        let axial: Vec<&Vec<f64>> = d
            .rows
            .iter()
            .filter(|r| r.iter().any(|&x| x.abs() > 1.0))
            .collect();
        assert_eq!(axial.len(), 4);
        for row in axial {
            let norm: f64 = row.iter().map(|x| x * x).sum::<f64>();
            assert!((norm.sqrt() - 2f64.sqrt()).abs() < 1e-12);
        }
    }

    #[test]
    fn centre_points_at_origin() {
        let d = central_composite(&["A", "B", "C"], 2).unwrap();
        let centres = d
            .rows
            .iter()
            .filter(|r| r.iter().all(|&x| x == 0.0))
            .count();
        assert_eq!(centres, 2);
    }

    #[test]
    fn error_propagates() {
        assert!(central_composite(&[], 1).is_err());
    }
}
