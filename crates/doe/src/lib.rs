//! # diversify-doe
//!
//! Design of Experiments — the paper's instrument for *"narrowing the
//! number of configurations to assess"*.
//!
//! * [`design`] — two-level designs: full factorial 2^k, regular
//!   fractional factorial 2^(k−p) with generator/alias analysis, and
//!   Plackett–Burman screening;
//! * [`lhs`] — Latin hypercube sampling for continuous parameter sweeps
//!   (used by the R5 sensitivity analysis);
//! * [`ccd`] — central composite designs for response-surface follow-ups.

#![warn(missing_docs)]
// The unwrap/expect ban (clippy.toml `disallowed-methods`) is the
// fault-tolerance discipline of `diversify-des`/`diversify-core`; this
// crate predates it and is exercised through those hardened seams.
#![allow(clippy::disallowed_methods)]

pub mod ccd;
pub mod design;
pub mod lhs;

pub use ccd::central_composite;
pub use design::{fractional_factorial, full_factorial, plackett_burman, DesignMatrix, DoeError};
pub use lhs::latin_hypercube;
