//! Binary wire codec for the indicator service.
//!
//! Messages travel as a compact binary encoding of the shim
//! [`serde::Value`] data model, wrapped in a checksummed frame:
//!
//! ```text
//! | b"DV" | payload_len: u32 LE | fnv1a64(payload): u64 LE | payload |
//! ```
//!
//! Every decode failure is a typed [`WireError`] — a corrupt, truncated,
//! oversized, or adversarial frame must never panic or allocate
//! unboundedly. Declared lengths are capped by the bytes actually
//! present before any allocation, and nesting depth is bounded so a
//! crafted deep `Array` cannot overflow the decoder's stack.

use serde::{Deserialize, Number, Serialize, Value};
use std::fmt;

/// Frame magic: the first two bytes of every message.
pub const MAGIC: [u8; 2] = [b'D', b'V'];

/// Fixed frame header length: magic + payload length + checksum.
pub const HEADER_LEN: usize = 2 + 4 + 8;

/// Hard ceiling on payload size (16 MiB). A frame declaring more is
/// rejected before any buffer is sized from attacker-controlled input.
pub const MAX_PAYLOAD: usize = 16 << 20;

/// Maximum `Value` nesting depth the decoder will follow.
const MAX_DEPTH: u32 = 64;

/// Typed decode/framing failure. The service treats every variant as
/// "this frame is garbage" — the connection or message is discarded,
/// never the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame does not start with [`MAGIC`].
    BadMagic,
    /// The buffer ended before the declared length.
    Truncated,
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized,
    /// The payload checksum does not match the header.
    ChecksumMismatch,
    /// The payload bytes do not parse as a `Value` (unknown tag, bad
    /// UTF-8, depth overflow, or a length field inconsistent with the
    /// bytes present).
    Malformed,
    /// The payload parsed but left unconsumed bytes.
    TrailingBytes,
    /// The payload parsed as a `Value` but does not deserialize into the
    /// expected message type.
    Schema(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => f.write_str("bad frame magic"),
            WireError::Truncated => f.write_str("truncated frame"),
            WireError::Oversized => f.write_str("frame exceeds maximum payload size"),
            WireError::ChecksumMismatch => f.write_str("payload checksum mismatch"),
            WireError::Malformed => f.write_str("malformed payload"),
            WireError::TrailingBytes => f.write_str("trailing bytes after payload"),
            WireError::Schema(what) => write!(f, "payload does not match schema: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash = (hash ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// Value encoding tags. Non-negative `I` numbers normalize to `U` so a
// value round-trips identically however the serializer spelled it.
const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_U: u8 = 3;
const TAG_I: u8 = 4;
const TAG_F: u8 = 5;
const TAG_STRING: u8 = 6;
const TAG_ARRAY: u8 = 7;
const TAG_OBJECT: u8 = 8;

fn encode_into(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Number(Number::U(n)) => {
            out.push(TAG_U);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::Number(Number::I(n)) => {
            if *n >= 0 {
                out.push(TAG_U);
                out.extend_from_slice(&(*n as u64).to_le_bytes());
            } else {
                out.push(TAG_I);
                out.extend_from_slice(&n.to_le_bytes());
            }
        }
        Value::Number(Number::F(x)) => {
            out.push(TAG_F);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::String(s) => {
            out.push(TAG_STRING);
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            out.extend_from_slice(&(items.len() as u64).to_le_bytes());
            for item in items {
                encode_into(item, out);
            }
        }
        Value::Object(fields) => {
            out.push(TAG_OBJECT);
            out.extend_from_slice(&(fields.len() as u64).to_le_bytes());
            for (key, item) in fields {
                out.extend_from_slice(&(key.len() as u64).to_le_bytes());
                out.extend_from_slice(key.as_bytes());
                encode_into(item, out);
            }
        }
    }
}

/// Encodes a `Value` to its unframed binary payload.
#[must_use]
pub fn encode_value(value: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(value, &mut out);
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Malformed)?;
        if end > self.bytes.len() {
            return Err(WireError::Malformed);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let raw = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(raw);
        Ok(u64::from_le_bytes(buf))
    }

    /// Reads a declared count, rejecting any claim the remaining bytes
    /// cannot possibly satisfy (each counted element costs at least
    /// `min_unit` bytes), so a hostile length never drives allocation.
    fn count(&mut self, min_unit: usize) -> Result<usize, WireError> {
        let declared = self.u64()?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        if declared.saturating_mul(min_unit as u64) > remaining {
            return Err(WireError::Malformed);
        }
        Ok(declared as usize)
    }

    fn value(&mut self, depth: u32) -> Result<Value, WireError> {
        if depth > MAX_DEPTH {
            return Err(WireError::Malformed);
        }
        match self.u8()? {
            TAG_NULL => Ok(Value::Null),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_U => Ok(Value::Number(Number::U(self.u64()?))),
            TAG_I => Ok(Value::Number(Number::I(self.u64()? as i64))),
            TAG_F => Ok(Value::Number(Number::F(f64::from_bits(self.u64()?)))),
            TAG_STRING => {
                let len = self.count(1)?;
                let raw = self.take(len)?;
                let s = std::str::from_utf8(raw).map_err(|_| WireError::Malformed)?;
                Ok(Value::String(s.to_owned()))
            }
            TAG_ARRAY => {
                let len = self.count(1)?;
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Value::Array(items))
            }
            TAG_OBJECT => {
                let len = self.count(1 + 8)?;
                let mut fields = Vec::with_capacity(len);
                for _ in 0..len {
                    let key_len = self.count(1)?;
                    let raw = self.take(key_len)?;
                    let key = std::str::from_utf8(raw)
                        .map_err(|_| WireError::Malformed)?
                        .to_owned();
                    fields.push((key, self.value(depth + 1)?));
                }
                Ok(Value::Object(fields))
            }
            _ => Err(WireError::Malformed),
        }
    }
}

/// Decodes an unframed binary payload back to a `Value`, requiring the
/// payload to be fully consumed.
pub fn decode_value(bytes: &[u8]) -> Result<Value, WireError> {
    let mut reader = Reader { bytes, pos: 0 };
    let value = reader.value(0)?;
    if reader.pos != bytes.len() {
        return Err(WireError::TrailingBytes);
    }
    Ok(value)
}

/// Serializes `msg` into a complete checksummed frame ready to write to
/// a byte channel.
#[must_use]
pub fn encode_message<T: Serialize>(msg: &T) -> Vec<u8> {
    let payload = encode_value(&msg.to_json_value());
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// The payload length a frame header declares, if the header is valid.
/// TCP readers use this to size the remainder of the read.
pub fn frame_payload_len(header: &[u8]) -> Result<usize, WireError> {
    if header.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    if header[..2] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&header[2..6]);
    let len = u32::from_le_bytes(buf) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized);
    }
    Ok(len)
}

/// Parses and validates a complete frame, deserializing the payload into
/// `T`. Rejects bad magic, truncation, oversize, checksum mismatches,
/// malformed payloads, and schema mismatches as typed errors.
pub fn decode_message<T: Deserialize>(frame: &[u8]) -> Result<T, WireError> {
    let payload_len = frame_payload_len(frame)?;
    let expected_end = HEADER_LEN
        .checked_add(payload_len)
        .ok_or(WireError::Oversized)?;
    if frame.len() < expected_end {
        return Err(WireError::Truncated);
    }
    if frame.len() > expected_end {
        return Err(WireError::TrailingBytes);
    }
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&frame[6..14]);
    let declared_sum = u64::from_le_bytes(buf);
    let payload = &frame[HEADER_LEN..];
    if fnv1a64(payload) != declared_sum {
        return Err(WireError::ChecksumMismatch);
    }
    let value = decode_value(payload)?;
    T::from_json_value(&value).map_err(|e| WireError::Schema(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::Object(vec![
            ("kind".to_owned(), Value::String("probe".to_owned())),
            (
                "ints".to_owned(),
                Value::Array(vec![
                    Value::Number(Number::U(7)),
                    Value::Number(Number::I(-3)),
                ]),
            ),
            ("x".to_owned(), Value::Number(Number::F(0.1 + 0.2))),
            ("flag".to_owned(), Value::Bool(true)),
            ("none".to_owned(), Value::Null),
        ])
    }

    #[test]
    fn value_round_trips_bit_identically() {
        let v = sample();
        let bytes = encode_value(&v);
        assert_eq!(decode_value(&bytes).unwrap(), v);
    }

    #[test]
    fn framed_message_round_trips() {
        let frame = encode_message(&sample());
        let back: Value = decode_message(&frame).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut frame = encode_message(&sample());
        frame[0] = b'X';
        assert_eq!(decode_message::<Value>(&frame), Err(WireError::BadMagic));
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let frame = encode_message(&sample());
        for cut in 0..frame.len() {
            let err = decode_message::<Value>(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated | WireError::BadMagic),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn payload_corruption_is_caught_by_checksum() {
        let frame = encode_message(&sample());
        for bit in 0..8 {
            let mut bad = frame.clone();
            bad[HEADER_LEN + 3] ^= 1 << bit;
            assert_eq!(
                decode_message::<Value>(&bad),
                Err(WireError::ChecksumMismatch)
            );
        }
    }

    #[test]
    fn oversized_declared_length_is_rejected() {
        let mut frame = encode_message(&sample());
        frame[2..6].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        assert_eq!(decode_message::<Value>(&frame), Err(WireError::Oversized));
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // An array claiming u64::MAX elements with no bytes behind it.
        let mut bytes = vec![TAG_ARRAY];
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(decode_value(&bytes), Err(WireError::Malformed));
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let mut bytes = Vec::new();
        for _ in 0..200 {
            bytes.push(TAG_ARRAY);
            bytes.extend_from_slice(&1u64.to_le_bytes());
        }
        bytes.push(TAG_NULL);
        assert_eq!(decode_value(&bytes), Err(WireError::Malformed));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_value(&sample());
        bytes.push(0);
        assert_eq!(decode_value(&bytes), Err(WireError::TrailingBytes));
    }
}
