//! Transport abstraction between the coordinator and its workers.
//!
//! The service speaks framed byte messages (see [`crate::wire`]) over a
//! minimal [`Channel`] trait with two implementations:
//!
//! * [`loopback_pair`] — a deterministic in-process queue pair, the
//!   default transport and the test substrate. It can inject channel
//!   faults from a [`FaultPlan`] keyed by send sequence number, mapping
//!   the plan's replication-fault vocabulary onto transport failures:
//!   `Panic` drops the connection, `CorruptOutput` flips a payload bit
//!   in flight, `Slow` delays delivery.
//! * [`TcpChannel`] — a length-prefixed framed stream over any
//!   `TcpStream`-shaped socket, with incremental reads and typed
//!   rejection of malformed frames.
//!
//! `recv_timeout` returns `Ok(None)` on timeout so supervision loops can
//! interleave polling with heartbeat bookkeeping without treating
//! silence as failure.

use crate::wire::{self, WireError, HEADER_LEN};
use diversify_des::faults::{FaultKind, FaultPlan};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Typed transport failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// The peer is gone; no further messages will flow either way.
    Closed,
    /// The peer sent bytes that do not parse as a frame.
    Wire(WireError),
    /// The underlying socket failed.
    Io(String),
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::Closed => f.write_str("channel closed"),
            ChannelError::Wire(e) => write!(f, "wire error: {e}"),
            ChannelError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ChannelError {}

impl From<WireError> for ChannelError {
    fn from(e: WireError) -> Self {
        ChannelError::Wire(e)
    }
}

/// A bidirectional, message-oriented byte transport. Messages are
/// complete frames (built by [`wire::encode_message`]); the transport
/// preserves their boundaries.
pub trait Channel: Send {
    /// Sends one framed message.
    fn send(&mut self, frame: &[u8]) -> Result<(), ChannelError>;

    /// Waits up to `timeout` for one framed message. `Ok(None)` means
    /// the deadline passed with nothing to read — not a failure.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, ChannelError>;
}

/// One direction of a loopback link: a bounded-wait queue plus the
/// closed flag, guarded by a mutex/condvar pair.
#[derive(Debug, Default)]
struct Direction {
    state: Mutex<DirectionState>,
    ready: Condvar,
}

#[derive(Debug, Default)]
struct DirectionState {
    queue: VecDeque<Vec<u8>>,
    closed: bool,
}

impl Direction {
    fn push(&self, frame: Vec<u8>) -> Result<(), ChannelError> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(ChannelError::Closed);
        }
        state.queue.push_back(frame);
        self.ready.notify_one();
        Ok(())
    }

    fn pop(&self, timeout: Duration) -> Result<Option<Vec<u8>>, ChannelError> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(frame) = state.queue.pop_front() {
                return Ok(Some(frame));
            }
            if state.closed {
                return Err(ChannelError::Closed);
            }
            let (next, wait) = self
                .ready
                .wait_timeout(state, timeout)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
            if wait.timed_out() && state.queue.is_empty() {
                if state.closed {
                    return Err(ChannelError::Closed);
                }
                return Ok(None);
            }
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        self.ready.notify_all();
    }
}

/// One endpoint of an in-process loopback link.
///
/// Deterministic (FIFO per direction) and fault-injectable: a
/// [`FaultPlan`] attached with [`LoopbackChannel::with_send_faults`]
/// arms per-*send-sequence* transport faults on this endpoint.
#[derive(Debug)]
pub struct LoopbackChannel {
    outgoing: Arc<Direction>,
    incoming: Arc<Direction>,
    faults: Option<Arc<FaultPlan>>,
    sends: AtomicU32,
}

/// Creates a connected pair of loopback endpoints. Frames sent on one
/// endpoint arrive, in order, at the other.
#[must_use]
pub fn loopback_pair() -> (LoopbackChannel, LoopbackChannel) {
    let a_to_b = Arc::new(Direction::default());
    let b_to_a = Arc::new(Direction::default());
    (
        LoopbackChannel {
            outgoing: Arc::clone(&a_to_b),
            incoming: Arc::clone(&b_to_a),
            faults: None,
            sends: AtomicU32::new(0),
        },
        LoopbackChannel {
            outgoing: b_to_a,
            incoming: a_to_b,
            faults: None,
            sends: AtomicU32::new(0),
        },
    )
}

impl LoopbackChannel {
    /// Arms transport faults on this endpoint, keyed by send sequence
    /// number: send `i` consults `plan.arm(i)`. `Panic` severs the link
    /// in both directions (a dropped connection), `CorruptOutput` flips
    /// one payload bit in the delivered copy, `Slow` delays delivery
    /// in-line.
    #[must_use]
    pub fn with_send_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }
}

impl Channel for LoopbackChannel {
    fn send(&mut self, frame: &[u8]) -> Result<(), ChannelError> {
        let seq = self.sends.fetch_add(1, Ordering::Relaxed);
        let fault = self.faults.as_ref().and_then(|plan| plan.arm(seq));
        let mut delivered = frame.to_vec();
        match fault {
            Some(FaultKind::Panic) => {
                self.outgoing.close();
                self.incoming.close();
                return Err(ChannelError::Closed);
            }
            Some(FaultKind::CorruptOutput) => {
                if let Some(byte) = delivered.last_mut() {
                    *byte ^= 0x40;
                }
            }
            Some(FaultKind::Slow { micros }) => {
                std::thread::sleep(Duration::from_micros(u64::from(micros)));
            }
            None => {}
        }
        self.outgoing.push(delivered)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, ChannelError> {
        self.incoming.pop(timeout)
    }
}

impl Drop for LoopbackChannel {
    fn drop(&mut self) {
        self.outgoing.close();
        self.incoming.close();
    }
}

/// A framed channel over a TCP socket. Frames are delimited by the wire
/// header's declared payload length; partial reads accumulate in an
/// internal buffer until a whole frame is present.
#[derive(Debug)]
pub struct TcpChannel {
    stream: TcpStream,
    buffer: Vec<u8>,
}

impl TcpChannel {
    /// Wraps a connected socket.
    #[must_use]
    pub fn new(stream: TcpStream) -> Self {
        TcpChannel {
            stream,
            buffer: Vec::new(),
        }
    }

    /// Extracts the first complete frame from the buffer, if one is
    /// fully present. Validates the header eagerly so garbage is
    /// rejected as soon as it is seen rather than after a blocked read.
    fn take_frame(&mut self) -> Result<Option<Vec<u8>>, ChannelError> {
        if self.buffer.len() < HEADER_LEN {
            return Ok(None);
        }
        let payload_len = wire::frame_payload_len(&self.buffer)?;
        let total = HEADER_LEN + payload_len;
        if self.buffer.len() < total {
            return Ok(None);
        }
        let rest = self.buffer.split_off(total);
        let frame = std::mem::replace(&mut self.buffer, rest);
        Ok(Some(frame))
    }
}

impl Channel for TcpChannel {
    fn send(&mut self, frame: &[u8]) -> Result<(), ChannelError> {
        self.stream
            .write_all(frame)
            .and_then(|()| self.stream.flush())
            .map_err(|e| match e.kind() {
                std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted => ChannelError::Closed,
                _ => ChannelError::Io(e.to_string()),
            })
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, ChannelError> {
        if let Some(frame) = self.take_frame()? {
            return Ok(Some(frame));
        }
        // `set_read_timeout(0)` is invalid; clamp to something tiny.
        let timeout = timeout.max(Duration::from_millis(1));
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| ChannelError::Io(e.to_string()))?;
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF mid-frame is a truncated frame; EOF on a clean
                    // boundary is an orderly close.
                    if self.buffer.is_empty() {
                        return Err(ChannelError::Closed);
                    }
                    return Err(ChannelError::Wire(WireError::Truncated));
                }
                Ok(n) => {
                    self.buffer.extend_from_slice(&chunk[..n]);
                    if let Some(frame) = self.take_frame()? {
                        return Ok(Some(frame));
                    }
                    // Keep reading: more of this frame may already be
                    // in the socket buffer.
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) => return Err(ChannelError::Io(e.to_string())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;
    use std::net::TcpListener;

    #[test]
    fn loopback_delivers_in_order() {
        let (mut a, mut b) = loopback_pair();
        a.send(b"one").unwrap();
        a.send(b"two").unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(50)).unwrap().unwrap(),
            b"one"
        );
        assert_eq!(
            b.recv_timeout(Duration::from_millis(50)).unwrap().unwrap(),
            b"two"
        );
        assert_eq!(b.recv_timeout(Duration::from_millis(5)).unwrap(), None);
    }

    #[test]
    fn loopback_close_propagates() {
        let (a, mut b) = loopback_pair();
        drop(a);
        assert_eq!(
            b.recv_timeout(Duration::from_millis(50)),
            Err(ChannelError::Closed)
        );
        assert_eq!(b.send(b"late"), Err(ChannelError::Closed));
    }

    #[test]
    fn loopback_faults_follow_the_plan() {
        let plan = Arc::new(
            FaultPlan::none(8)
                .with_fault(1, FaultKind::CorruptOutput)
                .with_fault(2, FaultKind::Panic),
        );
        let (a, mut b) = loopback_pair();
        let mut a = a.with_send_faults(plan);
        let frame = wire::encode_message(&Value::String("ok".to_owned()));

        a.send(&frame).unwrap();
        let good = b.recv_timeout(Duration::from_millis(50)).unwrap().unwrap();
        assert_eq!(
            wire::decode_message::<Value>(&good).unwrap(),
            Value::String("ok".to_owned())
        );

        a.send(&frame).unwrap();
        let corrupt = b.recv_timeout(Duration::from_millis(50)).unwrap().unwrap();
        assert_eq!(
            wire::decode_message::<Value>(&corrupt),
            Err(WireError::ChecksumMismatch)
        );

        assert_eq!(a.send(&frame), Err(ChannelError::Closed));
        assert_eq!(
            b.recv_timeout(Duration::from_millis(50)),
            Err(ChannelError::Closed)
        );
    }

    #[test]
    fn tcp_channel_reassembles_split_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        let frame = wire::encode_message(&Value::Array(vec![
            Value::String("split".to_owned()),
            Value::Bool(true),
        ]));
        let mut tx = TcpChannel::new(client);
        let mut rx = TcpChannel::new(server);

        // Deliver the frame in two raw halves to force reassembly.
        let (head, tail) = frame.split_at(frame.len() / 2);
        tx.stream.write_all(head).unwrap();
        tx.stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(10));
        tx.stream.write_all(tail).unwrap();
        tx.stream.flush().unwrap();

        let mut got = None;
        for _ in 0..100 {
            if let Some(f) = rx.recv_timeout(Duration::from_millis(20)).unwrap() {
                got = Some(f);
                break;
            }
        }
        assert_eq!(got, Some(frame));
    }

    #[test]
    fn tcp_channel_rejects_garbage_and_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut rx = TcpChannel::new(server);

        client.write_all(b"NOTAFRAMEATALLXX").unwrap();
        client.flush().unwrap();
        let mut saw_bad_magic = false;
        for _ in 0..100 {
            match rx.recv_timeout(Duration::from_millis(20)) {
                Err(ChannelError::Wire(WireError::BadMagic)) => {
                    saw_bad_magic = true;
                    break;
                }
                Ok(None) => continue,
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert!(saw_bad_magic);

        // A frame header promising more payload than ever arrives, then
        // EOF: typed truncation, not a hang or panic.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut rx = TcpChannel::new(server);
        let frame = wire::encode_message(&Value::String("cut short".to_owned()));
        client.write_all(&frame[..frame.len() - 3]).unwrap();
        client.flush().unwrap();
        drop(client);
        let mut saw_truncated = false;
        for _ in 0..100 {
            match rx.recv_timeout(Duration::from_millis(20)) {
                Err(ChannelError::Wire(WireError::Truncated)) => {
                    saw_truncated = true;
                    break;
                }
                Ok(None) => continue,
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert!(saw_truncated);
    }
}
