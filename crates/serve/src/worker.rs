//! The worker side of the indicator service: a supervised shard runner.
//!
//! [`run_worker`] is a message loop over one [`Channel`]. For each
//! leased [`ShardSpec`] it builds the plant, runs the shard's slice of
//! the replication plan under the spec's
//! [`Budget`](diversify_des::exec::Budget), and reports the
//! result as per-batch snapshots (the wire's fold-preserving unit —
//! see [`crate::protocol`]). While a shard runs, a supervisor thread
//! keeps heartbeating and listening for [`ToWorker::Cancel`], so a
//! coordinator-side cancel crosses the channel and stops the shard at
//! its next batch boundary via the executor's [`CancelToken`].
//!
//! Shard execution runs on a scoped thread whose panics are caught at
//! `join` — a panicking cell (or an injected [`FaultPlan`] fault) turns
//! into a [`FromWorker::Failed`] message, never a dead worker process.

use crate::channel::{Channel, ChannelError};
use crate::protocol::{BatchSnapshot, FromWorker, ShardFailure, ShardOutcome, ShardSpec, ToWorker};
use crate::wire::{decode_message, encode_message};
use diversify_attack::campaign::{CampaignSimulator, CampaignStats};
use diversify_core::exec::BatchRecord;
use diversify_core::indicators::IndicatorAccum;
use diversify_des::exec::{
    CancelToken, Collector, Executor, Replication, ReplicationPlan, RetryPolicy, RunPolicy,
};
use diversify_des::faults::{panic_message, FaultPlan};
use diversify_scada::scope::ScopeSystem;
use std::sync::Arc;
use std::time::Duration;

/// Worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Executor for the replication loop (serial by default: the
    /// service's parallelism axis is workers, not threads per worker).
    pub executor: Executor,
    /// How often to heartbeat while a shard runs.
    pub heartbeat_every: Duration,
    /// Per-replication retry policy inside a shard.
    pub retry: RetryPolicy,
    /// Replication-level fault injection (tests and chaos drills),
    /// keyed by *global* replication index.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            executor: Executor::default(),
            heartbeat_every: Duration::from_millis(25),
            retry: RetryPolicy::none(),
            faults: None,
        }
    }
}

/// Collects one shard's replications as `(record, indicators)` pairs,
/// one per batch, in batch order — the unmerged wire form. Never
/// pre-merges across batches: that is the coordinator's left-fold.
struct ShardCollector {
    first_batch: u32,
}

impl Collector<CampaignStats> for ShardCollector {
    type Accum = Vec<(BatchRecord, IndicatorAccum)>;
    type Output = Vec<(BatchRecord, IndicatorAccum)>;

    fn empty(&self) -> Self::Accum {
        Vec::new()
    }

    fn accumulate(
        &self,
        plan: &ReplicationPlan,
        acc: &mut Self::Accum,
        rep: Replication,
        stats: CampaignStats,
    ) {
        let batch = self.first_batch + plan.batch_of(rep.index);
        if acc.last().map(|(r, _)| r.batch) != Some(batch) {
            acc.push((
                BatchRecord {
                    batch,
                    count: 0,
                    successes: 0,
                    compromised_sum: 0.0,
                },
                IndicatorAccum::new(),
            ));
        }
        // The push above guarantees a last element.
        #[allow(clippy::disallowed_methods)]
        let (record, indicators) = acc.last_mut().expect("just pushed");
        record.count += 1;
        record.successes += u32::from(stats.succeeded());
        record.compromised_sum += stats.final_compromised_ratio;
        indicators.push_stats(&stats);
    }

    fn merge(&self, into: &mut Self::Accum, other: Self::Accum) {
        into.extend(other);
    }

    fn finish(&self, _plan: &ReplicationPlan, acc: Self::Accum) -> Self::Output {
        acc
    }
}

/// Runs the shard's replication loop. May panic (plant construction,
/// or a bug outside the executor's per-replication isolation) — callers
/// run it on a scoped thread and convert the join error into
/// [`FromWorker::Failed`].
fn execute_shard(spec: &ShardSpec, options: &WorkerOptions, cancel: &CancelToken) -> ShardOutcome {
    let plan = match spec.plan.to_plan() {
        Ok(plan) => plan,
        Err(e) => {
            return ShardOutcome {
                shard: spec.shard,
                rounds: 0,
                attempted: 0,
                completed: 0,
                outcome: crate::protocol::OutcomeCode::Completed,
                batches: Vec::new(),
                failures: vec![ShardFailure {
                    index: 0,
                    attempts: 0,
                    message: format!("invalid plan spec: {e}"),
                }],
            };
        }
    };
    let system = ScopeSystem::build(&spec.scope);
    let sim = CampaignSimulator::new(system.network(), spec.threat.clone(), spec.campaign);
    let policy = RunPolicy::new()
        .with_retry(options.retry)
        .with_budget(spec.budget.to_budget(cancel));
    let collector = ShardCollector {
        first_batch: plan.first_batch(),
    };
    let first_replication = plan.first_replication();

    let run = if let Some(faults) = &options.faults {
        // Fault indices are global; rebase to this shard's local span.
        let task = |ws: &mut _, rep: Replication| {
            let global = Replication {
                index: first_replication + rep.index,
                seed: rep.seed,
            };
            faults.wrap(
                |ws, _rep| sim.run_into(ws, rep.seed),
                |mut stats: CampaignStats| {
                    stats.final_compromised_ratio = f64::NAN;
                    stats
                },
            )(ws, global)
        };
        options.executor.run_ws_checked(
            &plan,
            || sim.workspace(),
            task,
            &collector,
            &policy,
            CampaignStats::is_finite,
        )
    } else {
        options.executor.run_ws_checked(
            &plan,
            || sim.workspace(),
            |ws, rep| sim.run_into(ws, rep.seed),
            &collector,
            &policy,
            CampaignStats::is_finite,
        )
    };

    ShardOutcome {
        shard: spec.shard,
        rounds: run.rounds,
        attempted: run.attempted,
        completed: run.completed,
        outcome: run.budget_outcome.into(),
        batches: run
            .output
            .unwrap_or_default()
            .into_iter()
            .map(|(record, indicators)| BatchSnapshot {
                record,
                indicators: indicators.snapshot(),
            })
            .collect(),
        failures: run
            .failed
            .into_iter()
            .map(|f| ShardFailure {
                index: first_replication + f.index,
                attempts: f.attempts,
                message: f.cause.to_string(),
            })
            .collect(),
    }
}

/// Supervises one shard lease: runs [`execute_shard`] on a scoped
/// thread while this thread heartbeats and listens for cancellation.
/// Returns the message to report, or an error if the channel died.
fn run_shard_supervised(
    channel: &mut dyn Channel,
    spec: ShardSpec,
    options: &WorkerOptions,
    shutdown: &mut bool,
) -> Result<FromWorker, ChannelError> {
    let cancel = CancelToken::new();
    let shard = spec.shard;
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| execute_shard(&spec, options, &cancel));
        loop {
            channel.send(&encode_message(&FromWorker::Heartbeat { shard }))?;
            if handle.is_finished() {
                break;
            }
            match channel.recv_timeout(options.heartbeat_every) {
                Ok(Some(frame)) => match decode_message::<ToWorker>(&frame) {
                    Ok(ToWorker::Cancel { shard: target }) if target == shard => cancel.cancel(),
                    Ok(ToWorker::Shutdown) => {
                        *shutdown = true;
                        cancel.cancel();
                    }
                    // A mid-lease Run is a coordinator bug; a garbled
                    // frame is the coordinator's problem to detect via
                    // its own checksums. Either way: ignore, keep going.
                    Ok(ToWorker::Run { .. }) | Ok(ToWorker::Cancel { .. }) | Err(_) => {}
                },
                Ok(None) => {}
                Err(_) => {
                    // Coordinator gone: stop the shard and bail. The
                    // join below still reaps the thread.
                    cancel.cancel();
                    let _ = handle.join();
                    return Err(ChannelError::Closed);
                }
            }
        }
        match handle.join() {
            Ok(outcome) => Ok(FromWorker::Done { outcome }),
            Err(payload) => Ok(FromWorker::Failed {
                shard,
                message: panic_message(payload.as_ref()),
            }),
        }
    })
}

/// The worker main loop: lease shards off `channel` until it closes or
/// a [`ToWorker::Shutdown`] arrives. Malformed frames are skipped (the
/// transport's checksums make corruption visible; a corrupt lease is
/// simply never acknowledged, and the coordinator re-deals it on lease
/// expiry).
pub fn run_worker(mut channel: impl Channel, options: &WorkerOptions) {
    let mut shutdown = false;
    while !shutdown {
        let frame = match channel.recv_timeout(Duration::from_millis(100)) {
            Ok(Some(frame)) => frame,
            Ok(None) => continue,
            Err(_) => break,
        };
        match decode_message::<ToWorker>(&frame) {
            Ok(ToWorker::Run { spec }) => {
                match run_shard_supervised(&mut channel, spec, options, &mut shutdown) {
                    Ok(report) => {
                        if channel.send(&encode_message(&report)).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
            Ok(ToWorker::Shutdown) => break,
            Ok(ToWorker::Cancel { .. }) | Err(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::loopback_pair;
    use crate::protocol::{BudgetSpec, PlanSpec};
    use diversify_core::exec::{campaign_plan, MeasurementsCollector};
    use diversify_scada::scope::ScopeConfig;

    fn spec(first_batch: u32, batches: u32) -> ShardSpec {
        ShardSpec {
            cell: 0,
            shard: first_batch,
            scope: ScopeConfig::default(),
            threat: diversify_attack::campaign::ThreatModel::stuxnet_like(),
            campaign: diversify_attack::campaign::CampaignConfig {
                max_ticks: 120,
                detection_stops_attack: false,
            },
            plan: PlanSpec {
                batches,
                batch_size: 3,
                master_seed: 0xBEEF,
                namespace: 0x4E_0000,
                first_batch,
            },
            budget: BudgetSpec::default(),
        }
    }

    #[test]
    fn shard_outcome_matches_local_run_batch_for_batch() {
        let options = WorkerOptions::default();
        let cancel = CancelToken::new();
        let out = execute_shard(&spec(0, 4), &options, &cancel);
        assert_eq!(out.rounds, 4);
        assert_eq!(out.completed, 12);
        assert_eq!(out.batches.len(), 4);

        // The same cell measured by the in-process reference path.
        let s = spec(0, 4);
        let system = ScopeSystem::build(&s.scope);
        let sim = CampaignSimulator::new(system.network(), s.threat.clone(), s.campaign);
        let plan = campaign_plan(4, 3, 0xBEEF);
        let reference = Executor::default().run_ws(
            &plan,
            || sim.workspace(),
            |ws, rep| sim.run_into(ws, rep.seed),
            &MeasurementsCollector,
        );
        for (i, snap) in out.batches.iter().enumerate() {
            let p = f64::from(snap.record.successes) / f64::from(snap.record.count);
            assert_eq!(p, reference.batch_p_success[i], "batch {i}");
            let c = snap.record.compromised_sum / f64::from(snap.record.count);
            assert_eq!(c, reference.batch_compromised[i], "batch {i}");
        }
    }

    #[test]
    fn sharded_batches_carry_global_indices_and_seeds() {
        let options = WorkerOptions::default();
        let cancel = CancelToken::new();
        let whole = execute_shard(&spec(0, 4), &options, &cancel);
        let head = execute_shard(&spec(0, 2), &options, &cancel);
        let tail = execute_shard(&spec(2, 2), &options, &cancel);
        let stitched: Vec<_> = head.batches.iter().chain(&tail.batches).copied().collect();
        assert_eq!(stitched.len(), whole.batches.len());
        for (a, b) in stitched.iter().zip(&whole.batches) {
            assert_eq!(a.record.batch, b.record.batch);
            assert_eq!(a.record, b.record);
            assert_eq!(a.indicators, b.indicators);
        }
    }

    #[test]
    fn worker_loop_leases_runs_and_reports_done() {
        let (coordinator_side, worker_side) = loopback_pair();
        let handle = std::thread::spawn(move || {
            run_worker(worker_side, &WorkerOptions::default());
        });
        let mut chan = coordinator_side;
        chan.send(&encode_message(&ToWorker::Run { spec: spec(0, 2) }))
            .unwrap();
        let mut done = None;
        for _ in 0..2_000 {
            if let Some(frame) = chan.recv_timeout(Duration::from_millis(20)).unwrap() {
                match decode_message::<FromWorker>(&frame).unwrap() {
                    FromWorker::Done { outcome } => {
                        done = Some(outcome);
                        break;
                    }
                    FromWorker::Heartbeat { shard } => assert_eq!(shard, 0),
                    FromWorker::Failed { message, .. } => panic!("unexpected failure: {message}"),
                }
            }
        }
        let done = done.expect("worker never finished");
        assert_eq!(done.rounds, 2);
        chan.send(&encode_message(&ToWorker::Shutdown)).unwrap();
        handle.join().unwrap();
    }
}
