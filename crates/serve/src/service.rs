//! The indicator service: memoized, coalesced measurement requests over
//! a [`Coordinator`].
//!
//! An [`IndicatorService`] answers [`IndicatorRequest`]s — "measure
//! this plant under this threat to this depth" — by sharding the
//! replication plan over its workers. Two layers sit on top of the
//! coordinator:
//!
//! * a **content-addressed memo store**: completed requests are keyed
//!   by [`ContentKey`] over plant × threat × campaign × batch size ×
//!   seed, so a repeated request replays from the store with zero new
//!   replications, and a *nearby* request (more batches, or a tighter
//!   precision goal, on the same cell) merges the stored batches with a
//!   top-up run of only the missing ones;
//! * **in-flight coalescing**: concurrent duplicates of one request
//!   wait on the first computation instead of re-running it.
//!
//! Both layers preserve the workspace's bit-identity contract: memo
//! entries hold the per-batch snapshots (the fold-preserving unit), and
//! every answer is the same left-fold a local unsharded run would
//! produce.

use crate::channel::{loopback_pair, Channel};
use crate::coordinator::{merge_batches, Coordinator, ShardHealth, SweepOptions, SweepReport};
use crate::protocol::{BatchSnapshot, BudgetSpec, PlanSpec, ShardSpec};
use crate::worker::{run_worker, WorkerOptions};
use diversify_attack::campaign::{CampaignConfig, ThreatModel};
use diversify_core::exec::CAMPAIGN_STREAM_NAMESPACE;
use diversify_core::factors::{factor_profile, FactorLevel};
use diversify_core::indicators::{IndicatorAccum, PrecisionResponse};
use diversify_core::pipeline::PipelineConfig;
use diversify_core::runner::Measurements;
use diversify_core::ContentKey;
use diversify_des::exec::Precision;
use diversify_des::{derive_seed, StreamId};
use diversify_doe::design::fractional_factorial;
use diversify_scada::components::ComponentClass;
use diversify_scada::scope::ScopeConfig;
use serde::{Serialize, Value};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Service-level configuration.
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Batches per shard lease: the granularity of work distribution,
    /// retry, and cancellation.
    pub batches_per_shard: u32,
    /// Coordinator supervision tuning.
    pub sweep: SweepOptions,
    /// Per-lease worker budget.
    pub budget: BudgetSpec,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            batches_per_shard: 1,
            sweep: SweepOptions::default(),
            budget: BudgetSpec::default(),
        }
    }
}

/// A precision target a request can ask for instead of (or on top of)
/// a fixed batch count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionGoal {
    /// The monitored indicator.
    pub response: PrecisionResponse,
    /// Confidence level of the monitored interval, e.g. `0.95`.
    pub level: f64,
    /// Stop once the interval half-width falls under this fraction of
    /// the estimate.
    pub relative_half_width: f64,
}

/// One measurement request: a design cell plus a depth.
#[derive(Debug, Clone, PartialEq)]
pub struct IndicatorRequest {
    /// The modeled plant.
    pub scope: ScopeConfig,
    /// The threat model.
    pub threat: ThreatModel,
    /// Campaign parameters.
    pub campaign: CampaignConfig,
    /// Replicate batches to measure (the minimum, when a `goal` is
    /// set).
    pub batches: u32,
    /// Campaigns per batch.
    pub batch_size: u32,
    /// Master seed: the request measures the same seed schedule a local
    /// [`campaign_plan`](diversify_core::exec::campaign_plan) run
    /// would.
    pub seed: u64,
    /// Optional precision target. When set, the service doubles the
    /// batch count (up to `max_batches`) until the target is met —
    /// serving every wave's prefix from the memo store.
    pub goal: Option<PrecisionGoal>,
    /// Hard cap on batches when chasing a `goal`.
    pub max_batches: u32,
}

impl IndicatorRequest {
    /// A fixed-depth request: exactly `batches × batch_size`
    /// replications, no precision goal.
    #[must_use]
    pub fn fixed(
        scope: ScopeConfig,
        threat: ThreatModel,
        campaign: CampaignConfig,
        batches: u32,
        batch_size: u32,
        seed: u64,
    ) -> Self {
        IndicatorRequest {
            scope,
            threat,
            campaign,
            batches,
            batch_size,
            seed,
            goal: None,
            max_batches: batches,
        }
    }

    /// The serialized identity of the *cell* this request measures —
    /// everything that determines the replication outcomes, nothing
    /// that only determines how many are served. Memo entries are keyed
    /// by this, which is what lets nearby requests share batches.
    fn cell_value(&self) -> Value {
        Value::Array(vec![
            self.scope.to_json_value(),
            self.threat.to_json_value(),
            self.campaign.to_json_value(),
            self.batch_size.to_json_value(),
            self.seed.to_json_value(),
        ])
    }

    /// The memo-store key: the cell identity.
    #[must_use]
    pub fn cell_key(&self) -> ContentKey {
        ContentKey::of(&self.cell_value())
    }

    /// The coalescing key: the full request, depth and goal included.
    #[must_use]
    pub fn request_key(&self) -> ContentKey {
        let goal = self.goal.map_or(Value::Null, |g| {
            Value::Array(vec![
                g.response.to_json_value(),
                g.level.to_json_value(),
                g.relative_half_width.to_json_value(),
            ])
        });
        ContentKey::of(&Value::Array(vec![
            self.cell_value(),
            self.batches.to_json_value(),
            self.max_batches.to_json_value(),
            goal,
        ]))
    }
}

/// A served measurement, with its provenance and health.
#[derive(Debug, Clone)]
pub struct IndicatorResponse {
    /// The merged measurements over every served batch, or `None` if no
    /// batch completed.
    pub measurements: Option<Measurements>,
    /// Precision of the goal's monitored response over the served
    /// batches (only when a goal was set and computable).
    pub precision: Option<Precision>,
    /// Whether the request's target (batch count, or precision goal)
    /// was met.
    pub target_met: bool,
    /// Replications folded into `measurements`.
    pub replications: u32,
    /// Replications actually executed by this call (0 for a memo hit).
    pub new_replications: u32,
    /// Whether the answer came entirely from the memo store.
    pub from_cache: bool,
    /// Whether any shard ended short of clean completion.
    pub degraded: bool,
    /// Whether the sweep was cancelled mid-flight.
    pub cancelled: bool,
    /// Whether the sweep deadline expired mid-flight.
    pub deadline_expired: bool,
    /// Per-shard terminal states of every sweep this call ran.
    pub health: Vec<ShardHealth>,
}

/// One in-flight computation concurrent duplicates wait on.
struct Flight {
    done: Mutex<Option<IndicatorResponse>>,
    ready: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            done: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn publish(&self, response: IndicatorResponse) {
        *lock(&self.done) = Some(response);
        self.ready.notify_all();
    }

    fn wait(&self) -> IndicatorResponse {
        let mut done = lock(&self.done);
        loop {
            if let Some(response) = done.clone() {
                return response;
            }
            done = self
                .ready
                .wait(done)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// Locks a mutex, surviving poisoning (a worker panic must degrade the
/// service, never wedge it).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The memoized, coalesced front of the sharded measurement engine.
/// See the module docs.
pub struct IndicatorService {
    coordinator: Mutex<Coordinator>,
    memo: Mutex<HashMap<ContentKey, Vec<BatchSnapshot>>>,
    flights: Mutex<HashMap<ContentKey, Arc<Flight>>>,
    options: ServiceOptions,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl IndicatorService {
    /// A service over caller-provided channels (one per worker, already
    /// connected — e.g. [`TcpChannel`](crate::channel::TcpChannel)s to
    /// remote workers). The caller owns the worker processes.
    #[must_use]
    pub fn with_channels(channels: Vec<Box<dyn Channel>>, options: ServiceOptions) -> Self {
        let coordinator = Coordinator::new(channels, options.sweep.clone());
        IndicatorService {
            coordinator: Mutex::new(coordinator),
            memo: Mutex::new(HashMap::new()),
            flights: Mutex::new(HashMap::new()),
            options,
            workers: Vec::new(),
        }
    }

    /// A self-contained service: `n` worker threads over loopback
    /// channels. Workers shut down when the service drops.
    #[must_use]
    pub fn in_process(n: usize, options: ServiceOptions) -> Self {
        Self::in_process_with(n, |_| WorkerOptions::default(), options)
    }

    /// [`Self::in_process`] with per-worker configuration — the hook
    /// chaos tests use to arm [`FaultPlan`](diversify_des::faults::FaultPlan)s
    /// on a subset of workers.
    #[must_use]
    pub fn in_process_with(
        n: usize,
        per_worker: impl Fn(usize) -> WorkerOptions,
        options: ServiceOptions,
    ) -> Self {
        let mut channels: Vec<Box<dyn Channel>> = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let (coordinator_side, worker_side) = loopback_pair();
            let worker_options = per_worker(i);
            handles.push(std::thread::spawn(move || {
                run_worker(worker_side, &worker_options);
            }));
            channels.push(Box::new(coordinator_side));
        }
        let mut service = Self::with_channels(channels, options);
        service.workers = handles;
        service
    }

    /// Workers the coordinator still considers alive.
    #[must_use]
    pub fn live_workers(&self) -> usize {
        lock(&self.coordinator).live_workers()
    }

    /// Answers a measurement request. Concurrent duplicates coalesce
    /// onto one computation; repeats of a completed request are served
    /// from the memo store with zero new replications. Always returns:
    /// under worker faults the response degrades to the clean prefix
    /// plus a health table instead of hanging.
    pub fn request(&self, request: &IndicatorRequest) -> IndicatorResponse {
        let request_key = request.request_key();
        let flight = {
            let mut flights = lock(&self.flights);
            if let Some(existing) = flights.get(&request_key) {
                let existing = Arc::clone(existing);
                drop(flights);
                return existing.wait();
            }
            let fresh = Arc::new(Flight::new());
            flights.insert(request_key, Arc::clone(&fresh));
            fresh
        };
        let response = self.compute(request);
        lock(&self.flights).remove(&request_key);
        flight.publish(response.clone());
        response
    }

    /// The leader path of [`Self::request`]: memo lookup, top-up
    /// sweeps, precision waves, merge, memoization.
    fn compute(&self, request: &IndicatorRequest) -> IndicatorResponse {
        let cell_key = request.cell_key();
        let mut have: Vec<BatchSnapshot> =
            lock(&self.memo).get(&cell_key).cloned().unwrap_or_default();
        let mut target = request.batches.max(1);
        let max_batches = request.max_batches.max(target);
        let mut new_replications = 0u32;
        let mut health = Vec::new();
        let mut degraded = false;
        let mut cancelled = false;
        let mut deadline_expired = false;
        let mut target_met = false;

        loop {
            if (have.len() as u32) < target {
                let report = self.run_cell_shards(request, have.len() as u32, target);
                // Accept the contiguous continuation; a hole behind a
                // quarantined shard ends what this call can serve.
                for snap in report.cell_batches(0) {
                    if snap.record.batch == have.len() as u32 {
                        have.push(snap);
                        new_replications += request.batch_size;
                    }
                }
                degraded |= report.is_degraded();
                cancelled |= report.cancelled;
                deadline_expired |= report.deadline_expired;
                health.extend(report.health);
                if degraded || cancelled || deadline_expired {
                    break;
                }
            }
            match request.goal {
                None => {
                    target_met = have.len() as u32 >= target;
                    break;
                }
                Some(goal) => {
                    let accum = fold_accum(&have[..target as usize]);
                    let met = accum
                        .precision(goal.response, goal.level)
                        .is_some_and(|p| p.relative_half_width() <= goal.relative_half_width);
                    if met {
                        target_met = true;
                        break;
                    }
                    if target >= max_batches {
                        break;
                    }
                    target = target.saturating_mul(2).min(max_batches);
                }
            }
        }

        let served = target.min(have.len() as u32);
        let serving = &have[..served as usize];
        let measurements = match merge_batches(serving) {
            Ok(m) => m,
            Err(_) => {
                // Unreachable for coordinator-validated batches, but a
                // typed degradation beats a panic if the invariant ever
                // breaks.
                degraded = true;
                None
            }
        };
        let precision = request
            .goal
            .and_then(|g| fold_accum(serving).precision(g.response, g.level));

        if !degraded && !cancelled && !deadline_expired {
            let mut memo = lock(&self.memo);
            let entry = memo.entry(cell_key).or_default();
            if entry.len() < have.len() {
                *entry = have.clone();
            }
        }

        IndicatorResponse {
            measurements,
            precision,
            target_met: target_met && !degraded,
            replications: served * request.batch_size,
            new_replications,
            from_cache: new_replications == 0,
            degraded,
            cancelled,
            deadline_expired,
            health,
        }
    }

    /// Runs one cell's batches `[from, to)` as shards and returns the
    /// sweep report (cell id 0).
    fn run_cell_shards(&self, request: &IndicatorRequest, from: u32, to: u32) -> SweepReport {
        let step = self.options.batches_per_shard.max(1);
        let mut shards = Vec::new();
        let mut start = from;
        while start < to {
            let batches = step.min(to - start);
            shards.push(ShardSpec {
                cell: 0,
                shard: start,
                scope: request.scope.clone(),
                threat: request.threat.clone(),
                campaign: request.campaign,
                plan: PlanSpec {
                    batches,
                    batch_size: request.batch_size,
                    master_seed: request.seed,
                    namespace: CAMPAIGN_STREAM_NAMESPACE,
                    first_batch: start,
                },
                budget: self.options.budget,
            });
            start += batches;
        }
        lock(&self.coordinator).run_sweep(shards)
    }

    /// Measures every design point of the pipeline's built-in 2^(6-2)
    /// fractional-factorial sweep through the sharded service,
    /// bit-identically to
    /// [`Pipeline::try_doe_measurements`](diversify_core::pipeline::Pipeline::try_doe_measurements)
    /// on the fixed-budget path (the config's precision / rare-event /
    /// resilience options are measurement-*strategy* options and do not
    /// apply to a sharded fixed sweep). Duplicate design points are
    /// deduplicated by content key, exactly like the pipeline.
    #[must_use]
    pub fn sweep_doe(&self, config: &PipelineConfig) -> DoeSweep {
        let labels: Vec<&str> = ComponentClass::ALL.iter().map(|c| c.label()).collect();
        // The built-in 2^(6-2) design is statically valid.
        #[allow(clippy::disallowed_methods)]
        let (design, _words) = fractional_factorial(&labels, &[vec![0, 1, 2], vec![1, 2, 3]])
            .expect("built-in 2^(6-2) design is valid");

        let mut specs = Vec::new();
        let mut alias = Vec::with_capacity(design.rows.len());
        let mut seen: HashMap<ContentKey, usize> = HashMap::with_capacity(design.rows.len());
        let step = self.options.batches_per_shard.max(1);
        let mut shard_id = 0u32;
        for (run_idx, row) in design.rows.iter().enumerate() {
            let levels: Vec<FactorLevel> =
                row.iter().map(|&l| FactorLevel::from_coded(l)).collect();
            let mut scope = config.scope.clone();
            scope.baseline_profile = factor_profile(&levels);
            let key = ContentKey::of(&Value::Array(vec![
                scope.to_json_value(),
                config.threat.to_json_value(),
                config.campaign.to_json_value(),
            ]));
            if let Some(&first) = seen.get(&key) {
                alias.push(first);
                continue;
            }
            seen.insert(key, run_idx);
            alias.push(run_idx);
            // The pipeline gives run `i` the sub-plan derived from its
            // index; shards reproduce that master seed so the schedule
            // is bit-identical.
            let master_seed = derive_seed(config.seed, StreamId(run_idx as u64));
            let mut start = 0u32;
            while start < config.batches {
                let batches = step.min(config.batches - start);
                specs.push(ShardSpec {
                    cell: run_idx as u32,
                    shard: shard_id,
                    scope: scope.clone(),
                    threat: config.threat.clone(),
                    campaign: config.campaign,
                    plan: PlanSpec {
                        batches,
                        batch_size: config.batch_size,
                        master_seed,
                        namespace: CAMPAIGN_STREAM_NAMESPACE,
                        first_batch: start,
                    },
                    budget: self.options.budget,
                });
                shard_id += 1;
                start += batches;
            }
        }

        let report = lock(&self.coordinator).run_sweep(specs);
        let cells = alias
            .iter()
            .map(|&rep| report.merge_cell(rep as u32).ok().flatten())
            .collect();
        DoeSweep {
            cells,
            degraded: report.is_degraded(),
            cancelled: report.cancelled,
            deadline_expired: report.deadline_expired,
            health: report.health,
        }
    }
}

impl Drop for IndicatorService {
    fn drop(&mut self) {
        lock(&self.coordinator).shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A DoE sweep served by the service: per-design-run measurements (in
/// design order, duplicates shared) plus sweep health.
#[derive(Debug, Clone)]
pub struct DoeSweep {
    /// One entry per design run; `None` where no batch of the cell
    /// completed. Under degradation a cell's measurements may cover
    /// fewer batches than requested — consult `health`.
    pub cells: Vec<Option<Measurements>>,
    /// Whether any shard failed to complete.
    pub degraded: bool,
    /// Whether the sweep was cancelled mid-flight.
    pub cancelled: bool,
    /// Whether the sweep deadline expired mid-flight.
    pub deadline_expired: bool,
    /// Per-shard terminal states.
    pub health: Vec<ShardHealth>,
}

/// Left-folds batch snapshots into one accumulator, in order —
/// the executor's fold shape (invalid snapshots fold as empty; the
/// coordinator validated them already).
fn fold_accum(batches: &[BatchSnapshot]) -> IndicatorAccum {
    let mut acc = IndicatorAccum::new();
    for snap in batches {
        if let Ok(batch) = IndicatorAccum::from_snapshot(&snap.indicators) {
            acc.merge(&batch);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversify_attack::campaign::CampaignSimulator;
    use diversify_core::exec::{campaign_plan, MeasurementsCollector};
    use diversify_core::pipeline::Pipeline;
    use diversify_des::exec::{Executor, RetryPolicy};
    use diversify_des::faults::{silence_injected_panics, FaultKind, FaultPlan};
    use diversify_scada::scope::ScopeSystem;
    use std::time::Duration;

    const SEED: u64 = 0xC0DE;
    const BATCH_SIZE: u32 = 3;
    const CAMPAIGN: CampaignConfig = CampaignConfig {
        max_ticks: 120,
        detection_stops_attack: false,
    };

    fn service_options() -> ServiceOptions {
        ServiceOptions {
            sweep: SweepOptions {
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(10),
                ..SweepOptions::default()
            },
            ..ServiceOptions::default()
        }
    }

    fn request(batches: u32) -> IndicatorRequest {
        IndicatorRequest::fixed(
            ScopeConfig::default(),
            ThreatModel::stuxnet_like(),
            CAMPAIGN,
            batches,
            BATCH_SIZE,
            SEED,
        )
    }

    fn reference(batches: u32) -> Measurements {
        let scope = ScopeConfig::default();
        let system = ScopeSystem::build(&scope);
        let sim = CampaignSimulator::new(system.network(), ThreatModel::stuxnet_like(), CAMPAIGN);
        let plan = campaign_plan(batches, BATCH_SIZE, SEED);
        Executor::default().run_ws(
            &plan,
            || sim.workspace(),
            |ws, rep| sim.run_into(ws, rep.seed),
            &MeasurementsCollector,
        )
    }

    fn assert_identical(merged: &Measurements, reference: &Measurements) {
        assert_eq!(
            serde_json::to_string(&merged.summary).unwrap(),
            serde_json::to_string(&reference.summary).unwrap()
        );
        assert_eq!(merged.batch_p_success, reference.batch_p_success);
        assert_eq!(merged.batch_compromised, reference.batch_compromised);
    }

    #[test]
    fn repeat_requests_replay_from_the_memo_store() {
        let service = IndicatorService::in_process(2, service_options());
        let first = service.request(&request(4));
        assert!(!first.degraded);
        assert!(first.target_met);
        assert!(!first.from_cache);
        assert_eq!(first.new_replications, 4 * BATCH_SIZE);
        assert_identical(first.measurements.as_ref().unwrap(), &reference(4));

        let replay = service.request(&request(4));
        assert!(replay.from_cache);
        assert_eq!(replay.new_replications, 0);
        assert_eq!(replay.replications, 4 * BATCH_SIZE);
        assert_identical(
            replay.measurements.as_ref().unwrap(),
            first.measurements.as_ref().unwrap(),
        );
    }

    #[test]
    fn nearby_request_tops_up_only_the_missing_batches() {
        let service = IndicatorService::in_process(2, service_options());
        let shallow = service.request(&request(2));
        assert_eq!(shallow.new_replications, 2 * BATCH_SIZE);
        assert_identical(shallow.measurements.as_ref().unwrap(), &reference(2));

        // Same cell, deeper: only batches 2..4 run; the merged result is
        // still bit-identical to a from-scratch 4-batch run.
        let deep = service.request(&request(4));
        assert_eq!(deep.new_replications, 2 * BATCH_SIZE);
        assert!(!deep.from_cache);
        assert_identical(deep.measurements.as_ref().unwrap(), &reference(4));

        // A shallower repeat serves the prefix from the store.
        let prefix = service.request(&request(3));
        assert!(prefix.from_cache);
        assert_eq!(prefix.new_replications, 0);
        assert_identical(prefix.measurements.as_ref().unwrap(), &reference(3));
    }

    #[test]
    fn concurrent_duplicates_coalesce_onto_one_computation() {
        let service = Arc::new(IndicatorService::in_process(2, service_options()));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let service = Arc::clone(&service);
                std::thread::spawn(move || service.request(&request(3)))
            })
            .collect();
        let responses: Vec<IndicatorResponse> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every caller gets the leader's answer: had any duplicate
        // computed on its own it would have hit the memo store and
        // reported `from_cache` instead.
        for response in &responses {
            assert!(!response.from_cache);
            assert_eq!(response.new_replications, 3 * BATCH_SIZE);
            assert_identical(response.measurements.as_ref().unwrap(), &reference(3));
        }
    }

    #[test]
    fn precision_goal_doubles_batches_until_met_or_capped() {
        let service = IndicatorService::in_process(2, service_options());
        // A goal no finite run can meet: the service doubles 2 → 4 and
        // stops at the cap with an honest `target_met = false`. (The
        // floor is two batches: this cell's first batch happens to have
        // zero compromised-ratio variance, which would satisfy any
        // relative goal vacuously.)
        let unreachable = IndicatorRequest {
            goal: Some(PrecisionGoal {
                response: PrecisionResponse::CompromisedRatio,
                level: 0.95,
                relative_half_width: 1e-12,
            }),
            max_batches: 4,
            ..request(2)
        };
        let response = service.request(&unreachable);
        assert!(!response.target_met);
        assert!(!response.degraded);
        assert_eq!(response.replications, 4 * BATCH_SIZE);
        assert!(response.precision.is_some());
        assert_identical(response.measurements.as_ref().unwrap(), &reference(4));

        // A trivially loose goal is met at the requested floor — served
        // entirely from the batches the unreachable goal banked.
        let loose = IndicatorRequest {
            goal: Some(PrecisionGoal {
                response: PrecisionResponse::CompromisedRatio,
                level: 0.95,
                relative_half_width: 1e6,
            }),
            max_batches: 4,
            ..request(2)
        };
        let response = service.request(&loose);
        assert!(response.target_met);
        assert!(response.from_cache);
        assert_eq!(response.new_replications, 0);
        assert_eq!(response.replications, 2 * BATCH_SIZE);
        assert_identical(response.measurements.as_ref().unwrap(), &reference(2));
    }

    #[test]
    fn exhausted_shard_degrades_to_the_clean_prefix() {
        silence_injected_panics();
        // Global replication 4 (batch 1) panics on every attempt and the
        // worker never retries: the shard exhausts its coordinator
        // attempts and quarantines. The response serves batch 0, flags
        // degradation, and the poisoned run is never memoized.
        let faults = Arc::new(FaultPlan::none(6).with_fault(4, FaultKind::Panic));
        let service = IndicatorService::in_process_with(
            1,
            |_| WorkerOptions {
                retry: RetryPolicy::none(),
                faults: Some(Arc::clone(&faults)),
                ..WorkerOptions::default()
            },
            service_options(),
        );
        let response = service.request(&request(2));
        assert!(response.degraded);
        assert!(!response.target_met);
        assert_eq!(response.replications, BATCH_SIZE);
        assert_identical(response.measurements.as_ref().unwrap(), &reference(1));
        assert!(response
            .health
            .iter()
            .any(|h| matches!(h.state, crate::coordinator::ShardState::Quarantined { .. })));

        // The degraded result was not memoized: a repeat starts from
        // scratch (and degrades the same way) instead of replaying a
        // poisoned entry as clean.
        let repeat = service.request(&request(2));
        assert!(repeat.degraded);
        assert_identical(
            repeat.measurements.as_ref().unwrap(),
            response.measurements.as_ref().unwrap(),
        );
    }

    #[test]
    fn sweep_doe_is_bit_identical_to_the_pipeline() {
        let config = PipelineConfig {
            batches: 2,
            batch_size: 2,
            campaign: CAMPAIGN,
            seed: SEED,
            ..PipelineConfig::default()
        };
        let local = Pipeline::new(config.clone())
            .try_doe_measurements()
            .unwrap();
        let service = IndicatorService::in_process(3, service_options());
        let sweep = service.sweep_doe(&config);
        assert!(!sweep.degraded);
        assert_eq!(sweep.cells.len(), local.measurements.len());
        for (served, local) in sweep.cells.iter().zip(&local.measurements) {
            assert_identical(served.as_ref().unwrap(), local);
        }
    }
}
