//! # diversify-serve
//!
//! A fault-tolerant sharded indicator service over the campaign
//! measurement engine: a coordinator shards a sweep's design points
//! over supervised workers behind a [`Channel`]
//! abstraction, retries failed shards with capped exponential backoff,
//! and degrades gracefully to partial results plus a health table when
//! workers stay broken — never a hang, never a poisoned merge.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::disallowed_methods))]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod channel;
pub mod coordinator;
pub mod protocol;
pub mod service;
pub mod wire;
pub mod worker;

pub use channel::{loopback_pair, Channel, ChannelError, LoopbackChannel, TcpChannel};
pub use coordinator::{
    merge_batches, Coordinator, ShardHealth, ShardState, SweepOptions, SweepReport,
};
pub use protocol::{BatchSnapshot, ShardOutcome, ShardSpec};
pub use service::{
    DoeSweep, IndicatorRequest, IndicatorResponse, IndicatorService, PrecisionGoal, ServiceOptions,
};
pub use worker::{run_worker, WorkerOptions};
