//! The coordinator: shard supervision, retry, and graceful degradation.
//!
//! A [`Coordinator`] owns one [`Channel`] per
//! worker and deals [`ShardSpec`] leases over them. Supervision is
//! lease-based: a running shard must heartbeat within
//! [`SweepOptions::heartbeat_timeout`] or its worker is declared dead
//! and the shard is re-dealt. Because every shard keeps its global
//! `namespace ^ index` seed schedule (see
//! [`ReplicationPlan::with_first_batch`]), a re-dealt shard recomputes
//! bit-identical batches on any worker — merged results are executor-,
//! placement-, and failure-history-invariant.
//!
//! Failure handling is graduated:
//!
//! 1. a shard that made *progress* (a clean prefix of full batches) has
//!    the prefix accepted and only the remainder re-dealt, with its
//!    attempt counter reset;
//! 2. a shard that failed outright retries with capped exponential
//!    backoff and deterministic reassignment;
//! 3. a shard that exhausts [`SweepOptions::max_shard_attempts`] is
//!    quarantined, and the sweep degrades to partial results plus a
//!    per-shard health table — never a hang, never a poisoned merge.

use crate::channel::Channel;
use crate::protocol::{BatchSnapshot, FromWorker, ShardOutcome, ShardSpec, ToWorker};
use crate::wire::{decode_message, encode_message};
use diversify_attack::campaign::CampaignStats;
use diversify_core::exec::{Collector, MeasurementsAccum, MeasurementsCollector};
use diversify_core::indicators::IndicatorAccum;
use diversify_des::exec::{CancelToken, ReplicationPlan};
use diversify_stats::StatsError;
use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

/// Supervision tuning for one sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// How long a leased shard may go silent before its worker is
    /// declared dead. Generous by default: CI runners may have a
    /// single core, so a busy worker thread can be starved for a while.
    pub heartbeat_timeout: Duration,
    /// Per-worker receive poll while supervising.
    pub poll_timeout: Duration,
    /// Failed attempts after which a shard is quarantined.
    pub max_shard_attempts: u32,
    /// First retry delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Ceiling on the retry delay.
    pub backoff_cap: Duration,
    /// How long to wait for in-flight shards to drain after a cancel
    /// or deadline before declaring them lost.
    pub drain_grace: Duration,
    /// Wall-clock bound on the whole sweep.
    pub deadline: Option<Duration>,
    /// Cooperative cancel: when triggered, in-flight shards are told to
    /// stop at their next batch boundary and the sweep winds down.
    pub cancel: Option<CancelToken>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            heartbeat_timeout: Duration::from_secs(5),
            poll_timeout: Duration::from_millis(2),
            max_shard_attempts: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            drain_grace: Duration::from_secs(2),
            deadline: None,
            cancel: None,
        }
    }
}

/// How a shard ended, in the sweep's health table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardState {
    /// Every batch landed clean.
    Completed,
    /// The shard exhausted its attempts; `message` is the last failure.
    Quarantined {
        /// The final failure, stringified.
        message: String,
    },
    /// The sweep was cancelled before the shard finished.
    Cancelled,
    /// The sweep deadline expired before the shard finished.
    DeadlineExpired,
}

/// One row of the sweep's per-shard health table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    /// The shard id.
    pub shard: u32,
    /// The design cell the shard belongs to.
    pub cell: u32,
    /// Failed attempts consumed (0 for a first-try success).
    pub attempts: u32,
    /// Terminal state.
    pub state: ShardState,
}

/// The outcome of a sweep: every accepted batch plus the health table.
#[derive(Debug, Clone)]
pub struct SweepReport {
    batches: BTreeMap<(u32, u32), BatchSnapshot>,
    /// Per-shard terminal states, in shard order.
    pub health: Vec<ShardHealth>,
    /// Whether the sweep was cancelled mid-flight.
    pub cancelled: bool,
    /// Whether the sweep deadline expired mid-flight.
    pub deadline_expired: bool,
}

impl SweepReport {
    /// Whether any shard failed to complete — the report's results are
    /// partial and must not be memoized.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.health.iter().any(|h| h.state != ShardState::Completed)
    }

    /// The accepted batches of one design cell, in global batch order.
    #[must_use]
    pub fn cell_batches(&self, cell: u32) -> Vec<BatchSnapshot> {
        self.batches
            .range((cell, 0)..=(cell, u32::MAX))
            .map(|(_, snap)| *snap)
            .collect()
    }

    /// Merges one cell's accepted batches into
    /// [`Measurements`](diversify_core::runner::Measurements),
    /// reproducing the executor's fold shape (see [`merge_batches`]).
    pub fn merge_cell(
        &self,
        cell: u32,
    ) -> Result<Option<diversify_core::runner::Measurements>, StatsError> {
        merge_batches(&self.cell_batches(cell))
    }
}

/// Left-folds validated per-batch snapshots, in order, into the
/// [`Measurements`](diversify_core::runner::Measurements) a local run
/// would produce. This reproduces the executor's exact fold tree — one
/// [`IndicatorAccum::merge`] per batch, batch contents pre-folded in
/// replication order by the worker — so the result is bit-identical to
/// an unsharded run of the same batches, wherever each batch actually
/// ran. Returns `Ok(None)` for an empty batch list.
pub fn merge_batches(
    batches: &[BatchSnapshot],
) -> Result<Option<diversify_core::runner::Measurements>, StatsError> {
    let Some(first) = batches.first() else {
        return Ok(None);
    };
    let mut indicators = IndicatorAccum::new();
    let mut records = Vec::with_capacity(batches.len());
    for snap in batches {
        let batch_accum = IndicatorAccum::from_snapshot(&snap.indicators)?;
        indicators.merge(&batch_accum);
        records.push(snap.record);
    }
    let accum = MeasurementsAccum::from_parts(indicators, records);
    // `finish` only reads the plan for a sanity bound on batch count;
    // seeds do not matter here.
    let plan = ReplicationPlan::try_new(batches.len() as u32, first.record.count.max(1), 0)
        .map_err(|_| StatsError::InvalidParameter {
            what: "batch list does not form a plan",
        })?;
    Ok(Some(Collector::<CampaignStats>::finish(
        &MeasurementsCollector,
        &plan,
        accum,
    )))
}

/// The longest clean prefix of `outcome.batches` consistent with
/// `spec`: consecutive global batch ids from the shard's first batch,
/// every batch full (its whole batch size folded — a partial batch
/// would poison bit-identity), counters self-consistent, moments
/// finite and rebuildable. Anything after the first violation is
/// discarded; a violating *first* batch means zero progress.
fn clean_prefix(spec: &ShardSpec, outcome: &ShardOutcome) -> usize {
    let mut accepted = 0usize;
    for snap in outcome.batches.iter().take(spec.plan.batches as usize) {
        let expected = spec.plan.first_batch + accepted as u32;
        let record = snap.record;
        let full = record.batch == expected
            && record.count == spec.plan.batch_size
            && record.successes <= record.count
            && record.compromised_sum.is_finite()
            && snap.indicators.success.trials == u64::from(record.count)
            && snap.indicators.compromised.count == u64::from(record.count)
            && snap.indicators.compromised.mean.is_finite()
            && snap.indicators.compromised.m2.is_finite()
            && IndicatorAccum::from_snapshot(&snap.indicators).is_ok();
        if !full {
            break;
        }
        accepted += 1;
    }
    accepted
}

/// A shard waiting to run (again).
#[derive(Debug)]
struct Task {
    spec: ShardSpec,
    attempts: u32,
    not_before: Instant,
    last_error: String,
}

enum SlotState {
    Idle,
    Busy { task: Box<Task>, lease: Instant },
    Dead,
}

struct WorkerSlot {
    channel: Box<dyn Channel>,
    state: SlotState,
}

/// Why a sweep is winding down early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WindDown {
    Cancelled,
    DeadlineExpired,
}

/// The sharded-sweep supervisor. See the module docs for the
/// supervision model.
pub struct Coordinator {
    workers: Vec<WorkerSlot>,
    options: SweepOptions,
}

impl Coordinator {
    /// Builds a coordinator over one channel per worker.
    #[must_use]
    pub fn new(channels: Vec<Box<dyn Channel>>, options: SweepOptions) -> Self {
        Coordinator {
            workers: channels
                .into_iter()
                .map(|channel| WorkerSlot {
                    channel,
                    state: SlotState::Idle,
                })
                .collect(),
            options,
        }
    }

    /// Workers not yet declared dead.
    #[must_use]
    pub fn live_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| !matches!(w.state, SlotState::Dead))
            .count()
    }

    /// Tells every live worker to drain and exit. Called on drop too;
    /// explicit calls just make shutdown observable.
    pub fn shutdown(&mut self) {
        let frame = encode_message(&ToWorker::Shutdown);
        for slot in &mut self.workers {
            if !matches!(slot.state, SlotState::Dead) {
                let _ = slot.channel.send(&frame);
            }
        }
    }

    /// Runs `shards` to terminal states and reports. Shard ids must be
    /// unique within the call. Always returns — every shard ends
    /// `Completed`, `Quarantined`, `Cancelled`, or `DeadlineExpired`.
    pub fn run_sweep(&mut self, shards: Vec<ShardSpec>) -> SweepReport {
        let started = Instant::now();
        let mut pending: VecDeque<Task> = shards
            .into_iter()
            .map(|spec| Task {
                spec,
                attempts: 0,
                not_before: started,
                last_error: String::new(),
            })
            .collect();
        let mut batches: BTreeMap<(u32, u32), BatchSnapshot> = BTreeMap::new();
        let mut health: BTreeMap<u32, ShardHealth> = BTreeMap::new();
        let mut wind_down: Option<WindDown> = None;
        let mut drain_deadline = started;

        loop {
            let now = Instant::now();

            if wind_down.is_none() {
                let cancelled = self
                    .options
                    .cancel
                    .as_ref()
                    .is_some_and(CancelToken::is_cancelled);
                let expired = self
                    .options
                    .deadline
                    .is_some_and(|d| now.duration_since(started) >= d);
                if cancelled || expired {
                    wind_down = Some(if cancelled {
                        WindDown::Cancelled
                    } else {
                        WindDown::DeadlineExpired
                    });
                    drain_deadline = now + self.options.drain_grace;
                    for slot in &mut self.workers {
                        if let SlotState::Busy { task, .. } = &slot.state {
                            let frame = encode_message(&ToWorker::Cancel {
                                shard: task.spec.shard,
                            });
                            let _ = slot.channel.send(&frame);
                        }
                    }
                }
            }

            if let Some(kind) = wind_down {
                for task in pending.drain(..) {
                    resolve_wind_down(&mut health, task, kind);
                }
            } else {
                self.assign_ready(&mut pending, now);
                // With every worker dead, nothing pending can ever run.
                if self.live_workers() == 0 {
                    for mut task in pending.drain(..) {
                        if task.last_error.is_empty() {
                            task.last_error = "no live workers".to_owned();
                        }
                        resolve_quarantined(&mut health, task);
                    }
                }
            }

            let busy = self
                .workers
                .iter()
                .filter(|w| matches!(w.state, SlotState::Busy { .. }))
                .count();
            if pending.is_empty() && busy == 0 {
                break;
            }
            if wind_down.is_some() && now >= drain_deadline {
                // Still-leased shards are filed below, after the loop.
                break;
            }

            self.poll_workers(&mut pending, &mut batches, &mut health, wind_down);
            self.expire_leases(&mut pending, &mut health, wind_down);
        }

        // Any shard still leased when the loop broke (drain deadline)
        // resolves to the wind-down state.
        for slot in &mut self.workers {
            if !matches!(slot.state, SlotState::Busy { .. }) {
                continue;
            }
            if let SlotState::Busy { task, .. } =
                std::mem::replace(&mut slot.state, SlotState::Idle)
            {
                match wind_down {
                    Some(kind) => resolve_wind_down(&mut health, *task, kind),
                    None => resolve_quarantined(&mut health, *task),
                }
            }
        }

        SweepReport {
            batches,
            health: health.into_values().collect(),
            cancelled: wind_down == Some(WindDown::Cancelled),
            deadline_expired: wind_down == Some(WindDown::DeadlineExpired),
        }
    }

    /// Deals ready pending tasks to idle live workers.
    fn assign_ready(&mut self, pending: &mut VecDeque<Task>, now: Instant) {
        for slot in &mut self.workers {
            if !matches!(slot.state, SlotState::Idle) {
                continue;
            }
            let Some(pos) = pending.iter().position(|t| t.not_before <= now) else {
                break;
            };
            let Some(task) = pending.remove(pos) else {
                break;
            };
            let frame = encode_message(&ToWorker::Run {
                spec: task.spec.clone(),
            });
            match slot.channel.send(&frame) {
                Ok(()) => {
                    slot.state = SlotState::Busy {
                        task: Box::new(task),
                        lease: now + self.options.heartbeat_timeout,
                    };
                }
                Err(e) => {
                    slot.state = SlotState::Dead;
                    pending.push_back(bounced(task, format!("send failed: {e}")));
                }
            }
        }
    }

    /// Drains every live worker's channel once and reacts to messages.
    fn poll_workers(
        &mut self,
        pending: &mut VecDeque<Task>,
        batches: &mut BTreeMap<(u32, u32), BatchSnapshot>,
        health: &mut BTreeMap<u32, ShardHealth>,
        wind_down: Option<WindDown>,
    ) {
        let poll = self.options.poll_timeout;
        let heartbeat = self.options.heartbeat_timeout;
        let max_attempts = self.options.max_shard_attempts;
        let backoff = (self.options.backoff_base, self.options.backoff_cap);
        for slot in &mut self.workers {
            if matches!(slot.state, SlotState::Dead) {
                continue;
            }
            let frame = match slot.channel.recv_timeout(poll) {
                Ok(Some(frame)) => frame,
                Ok(None) => continue,
                Err(e) => {
                    // Channel loss: the worker is gone; re-deal its
                    // lease.
                    if let SlotState::Busy { task, .. } =
                        std::mem::replace(&mut slot.state, SlotState::Dead)
                    {
                        requeue(
                            pending,
                            health,
                            bounced(*task, format!("channel lost: {e}")),
                            max_attempts,
                            backoff,
                            wind_down,
                        );
                    }
                    continue;
                }
            };
            let msg = match decode_message::<FromWorker>(&frame) {
                Ok(msg) => msg,
                Err(e) => {
                    // A frame that fails its checksum or schema means
                    // the transport is corrupting data; stop trusting
                    // this worker entirely.
                    if let SlotState::Busy { task, .. } =
                        std::mem::replace(&mut slot.state, SlotState::Dead)
                    {
                        requeue(
                            pending,
                            health,
                            bounced(*task, format!("corrupt frame: {e}")),
                            max_attempts,
                            backoff,
                            wind_down,
                        );
                    }
                    continue;
                }
            };
            let SlotState::Busy { task, lease } = &mut slot.state else {
                // Idle workers only ever produce stale messages.
                continue;
            };
            match msg {
                FromWorker::Heartbeat { shard } if shard == task.spec.shard => {
                    *lease = Instant::now() + heartbeat;
                }
                FromWorker::Done { outcome } if outcome.shard == task.spec.shard => {
                    let SlotState::Busy { task, .. } =
                        std::mem::replace(&mut slot.state, SlotState::Idle)
                    else {
                        unreachable!("matched Busy above");
                    };
                    settle_done(
                        pending,
                        batches,
                        health,
                        *task,
                        &outcome,
                        max_attempts,
                        backoff,
                        wind_down,
                    );
                }
                FromWorker::Failed { shard, message } if shard == task.spec.shard => {
                    let SlotState::Busy { task, .. } =
                        std::mem::replace(&mut slot.state, SlotState::Idle)
                    else {
                        unreachable!("matched Busy above");
                    };
                    requeue(
                        pending,
                        health,
                        bounced(*task, message),
                        max_attempts,
                        backoff,
                        wind_down,
                    );
                }
                // Stale ids from a previous lease of this worker.
                FromWorker::Heartbeat { .. }
                | FromWorker::Done { .. }
                | FromWorker::Failed { .. } => {}
            }
        }
    }

    /// Declares workers whose lease ran out dead and re-deals their
    /// shards.
    fn expire_leases(
        &mut self,
        pending: &mut VecDeque<Task>,
        health: &mut BTreeMap<u32, ShardHealth>,
        wind_down: Option<WindDown>,
    ) {
        let now = Instant::now();
        let max_attempts = self.options.max_shard_attempts;
        let backoff = (self.options.backoff_base, self.options.backoff_cap);
        for slot in &mut self.workers {
            let SlotState::Busy { lease, task } = &slot.state else {
                continue;
            };
            if now < *lease {
                continue;
            }
            let cancel_frame = encode_message(&ToWorker::Cancel {
                shard: task.spec.shard,
            });
            let _ = slot.channel.send(&cancel_frame);
            if let SlotState::Busy { task, .. } =
                std::mem::replace(&mut slot.state, SlotState::Dead)
            {
                requeue(
                    pending,
                    health,
                    bounced(*task, "heartbeat lease expired".to_owned()),
                    max_attempts,
                    backoff,
                    wind_down,
                );
            }
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A task coming back from a failure, error message updated and
/// attempt counter bumped.
fn bounced(mut task: Task, message: String) -> Task {
    task.attempts += 1;
    task.last_error = message;
    task
}

/// Files a failed task: back into the queue with backoff, or into
/// quarantine when its attempts are spent (or the sweep is winding
/// down).
fn requeue(
    pending: &mut VecDeque<Task>,
    health: &mut BTreeMap<u32, ShardHealth>,
    mut task: Task,
    max_attempts: u32,
    (base, cap): (Duration, Duration),
    wind_down: Option<WindDown>,
) {
    if let Some(kind) = wind_down {
        resolve_wind_down(health, task, kind);
        return;
    }
    if task.attempts >= max_attempts {
        resolve_quarantined(health, task);
        return;
    }
    let exponent = task.attempts.saturating_sub(1).min(16);
    let delay = base
        .checked_mul(1u32 << exponent)
        .map_or(cap, |d| d.min(cap));
    task.not_before = Instant::now() + delay;
    pending.push_back(task);
}

/// Accepts a `Done` report: file the clean prefix, then complete,
/// requeue the remainder, or count a failed attempt.
#[allow(clippy::too_many_arguments)]
fn settle_done(
    pending: &mut VecDeque<Task>,
    batches: &mut BTreeMap<(u32, u32), BatchSnapshot>,
    health: &mut BTreeMap<u32, ShardHealth>,
    mut task: Task,
    outcome: &ShardOutcome,
    max_attempts: u32,
    backoff: (Duration, Duration),
    wind_down: Option<WindDown>,
) {
    let accepted = clean_prefix(&task.spec, outcome);
    for snap in &outcome.batches[..accepted] {
        // First write wins: a shard rerun is bit-identical by
        // construction, so late duplicates carry no new information.
        batches
            .entry((task.spec.cell, snap.record.batch))
            .or_insert(*snap);
    }
    if accepted as u32 == task.spec.plan.batches {
        health.insert(
            task.spec.shard,
            ShardHealth {
                shard: task.spec.shard,
                cell: task.spec.cell,
                attempts: task.attempts,
                state: ShardState::Completed,
            },
        );
        return;
    }
    task.spec.plan.first_batch += accepted as u32;
    task.spec.plan.batches -= accepted as u32;
    if accepted > 0 {
        // Progress: a truncated-but-clean report (budget, cancel) is
        // not a failure; the remainder continues fresh.
        task.attempts = 0;
        task.last_error.clear();
        if let Some(kind) = wind_down {
            resolve_wind_down(health, task, kind);
            return;
        }
        task.not_before = Instant::now();
        pending.push_back(task);
    } else {
        requeue(
            pending,
            health,
            bounced(
                task,
                format!("no usable batches (outcome: {:?})", outcome.outcome),
            ),
            max_attempts,
            backoff,
            wind_down,
        );
    }
}

fn resolve_quarantined(health: &mut BTreeMap<u32, ShardHealth>, task: Task) {
    health.insert(
        task.spec.shard,
        ShardHealth {
            shard: task.spec.shard,
            cell: task.spec.cell,
            attempts: task.attempts,
            state: ShardState::Quarantined {
                message: task.last_error,
            },
        },
    );
}

fn resolve_wind_down(health: &mut BTreeMap<u32, ShardHealth>, task: Task, kind: WindDown) {
    health.insert(
        task.spec.shard,
        ShardHealth {
            shard: task.spec.shard,
            cell: task.spec.cell,
            attempts: task.attempts,
            state: match kind {
                WindDown::Cancelled => ShardState::Cancelled,
                WindDown::DeadlineExpired => ShardState::DeadlineExpired,
            },
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::loopback_pair;
    use crate::protocol::{BudgetSpec, PlanSpec};
    use crate::worker::{run_worker, WorkerOptions};
    use diversify_attack::campaign::{CampaignConfig, CampaignSimulator, ThreatModel};
    use diversify_core::exec::{campaign_plan, MeasurementsCollector};
    use diversify_core::runner::Measurements;
    use diversify_des::exec::Executor;
    use diversify_des::faults::{silence_injected_panics, FaultKind, FaultPlan};
    use diversify_scada::scope::{ScopeConfig, ScopeSystem};
    use std::sync::Arc;
    use std::thread::JoinHandle;

    const SEED: u64 = 0xC0DE;
    const BATCH_SIZE: u32 = 3;
    const CAMPAIGN: CampaignConfig = CampaignConfig {
        max_ticks: 120,
        detection_stops_attack: false,
    };

    fn spawn_workers(options: Vec<WorkerOptions>) -> (Vec<Box<dyn Channel>>, Vec<JoinHandle<()>>) {
        let mut channels: Vec<Box<dyn Channel>> = Vec::new();
        let mut handles = Vec::new();
        for worker_options in options {
            let (coordinator_side, worker_side) = loopback_pair();
            handles.push(std::thread::spawn(move || {
                run_worker(worker_side, &worker_options);
            }));
            channels.push(Box::new(coordinator_side));
        }
        (channels, handles)
    }

    fn shard(id: u32, first_batch: u32, batches: u32) -> ShardSpec {
        ShardSpec {
            cell: 0,
            shard: id,
            scope: ScopeConfig::default(),
            threat: ThreatModel::stuxnet_like(),
            campaign: CAMPAIGN,
            plan: PlanSpec {
                batches,
                batch_size: BATCH_SIZE,
                master_seed: SEED,
                namespace: diversify_core::exec::CAMPAIGN_STREAM_NAMESPACE,
                first_batch,
            },
            budget: BudgetSpec::default(),
        }
    }

    fn reference(batches: u32) -> Measurements {
        let scope = ScopeConfig::default();
        let system = ScopeSystem::build(&scope);
        let sim = CampaignSimulator::new(system.network(), ThreatModel::stuxnet_like(), CAMPAIGN);
        let plan = campaign_plan(batches, BATCH_SIZE, SEED);
        Executor::default().run_ws(
            &plan,
            || sim.workspace(),
            |ws, rep| sim.run_into(ws, rep.seed),
            &MeasurementsCollector,
        )
    }

    fn assert_identical(merged: &Measurements, reference: &Measurements) {
        assert_eq!(
            serde_json::to_string(&merged.summary).unwrap(),
            serde_json::to_string(&reference.summary).unwrap()
        );
        assert_eq!(merged.batch_p_success, reference.batch_p_success);
        assert_eq!(merged.batch_compromised, reference.batch_compromised);
    }

    fn sweep_options() -> SweepOptions {
        SweepOptions {
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(10),
            ..SweepOptions::default()
        }
    }

    #[test]
    fn sharded_sweep_merges_bit_identically_to_a_local_run() {
        let (channels, handles) =
            spawn_workers(vec![WorkerOptions::default(), WorkerOptions::default()]);
        let mut coordinator = Coordinator::new(channels, sweep_options());
        let report = coordinator.run_sweep(vec![shard(0, 0, 2), shard(1, 2, 2)]);
        assert!(!report.is_degraded());
        let merged = report.merge_cell(0).unwrap().unwrap();
        assert_identical(&merged, &reference(4));
        coordinator.shutdown();
        drop(coordinator);
        for handle in handles {
            handle.join().unwrap();
        }
    }

    #[test]
    fn transient_worker_panics_retry_to_identical_results() {
        silence_injected_panics();
        // Replication 4 (global) panics once per arm on worker 0; the
        // re-dealt shard runs clean because the fault is transient.
        let faults = Arc::new(
            FaultPlan::none(12)
                .with_fault(4, FaultKind::Panic)
                .transient(1),
        );
        let faulty = WorkerOptions {
            faults: Some(Arc::clone(&faults)),
            ..WorkerOptions::default()
        };
        let (channels, _handles) = spawn_workers(vec![faulty]);
        let mut coordinator = Coordinator::new(channels, sweep_options());
        let report = coordinator.run_sweep(vec![shard(0, 0, 4)]);
        assert!(!report.is_degraded(), "health: {:?}", report.health);
        // The shard made progress (batch 0), so the retry is not
        // counted against it.
        assert_eq!(report.health[0].state, ShardState::Completed);
        let merged = report.merge_cell(0).unwrap().unwrap();
        assert_identical(&merged, &reference(4));
    }

    #[test]
    fn persistent_failure_quarantines_and_degrades_gracefully() {
        silence_injected_panics();
        // Replication 7 always panics on every worker: batch 2 can
        // never complete anywhere.
        let plan = || {
            Some(Arc::new(
                FaultPlan::none(12).with_fault(7, FaultKind::Panic),
            ))
        };
        let (channels, _handles) = spawn_workers(vec![
            WorkerOptions {
                faults: plan(),
                ..WorkerOptions::default()
            },
            WorkerOptions {
                faults: plan(),
                ..WorkerOptions::default()
            },
        ]);
        let mut coordinator = Coordinator::new(channels, sweep_options());
        let report = coordinator.run_sweep(vec![shard(0, 0, 4)]);
        assert!(report.is_degraded());
        let health = &report.health[0];
        assert!(
            matches!(health.state, ShardState::Quarantined { .. }),
            "state: {:?}",
            health.state
        );
        // The clean prefix (batches 0 and 1) still merged bit-exactly.
        let merged = report.merge_cell(0).unwrap().unwrap();
        assert_identical(&merged, &reference(2));
    }

    #[test]
    fn dropped_channel_reassigns_the_shard_elsewhere() {
        // Worker 0's channel severs on its very first send (the first
        // heartbeat); the shard must land on worker 1 bit-identically.
        let (mut channels, _handles) =
            spawn_workers(vec![WorkerOptions::default(), WorkerOptions::default()]);
        let chaos = Arc::new(FaultPlan::none(1).with_fault(0, FaultKind::Panic));
        let first = channels.remove(0);
        drop(first);
        let (coordinator_side, worker_side) = loopback_pair();
        let worker_side = worker_side.with_send_faults(chaos);
        let worker_options = WorkerOptions::default();
        std::thread::spawn(move || run_worker(worker_side, &worker_options));
        channels.insert(0, Box::new(coordinator_side));
        let mut coordinator = Coordinator::new(channels, sweep_options());
        let report = coordinator.run_sweep(vec![shard(0, 0, 3)]);
        assert!(!report.is_degraded(), "health: {:?}", report.health);
        assert_eq!(coordinator.live_workers(), 1);
        let merged = report.merge_cell(0).unwrap().unwrap();
        assert_identical(&merged, &reference(3));
    }

    #[test]
    fn corrupted_frames_dethrone_the_worker_not_the_sweep() {
        // Worker 0 corrupts its second send; the coordinator must stop
        // trusting it and re-deal, still finishing bit-identically.
        let chaos = Arc::new(FaultPlan::none(2).with_fault(1, FaultKind::CorruptOutput));
        let (coordinator_side, worker_side) = loopback_pair();
        let worker_side = worker_side.with_send_faults(chaos);
        let corrupt_options = WorkerOptions::default();
        std::thread::spawn(move || run_worker(worker_side, &corrupt_options));
        let (mut channels, _handles) = spawn_workers(vec![WorkerOptions::default()]);
        channels.insert(0, Box::new(coordinator_side));
        let mut coordinator = Coordinator::new(channels, sweep_options());
        let report = coordinator.run_sweep(vec![shard(0, 0, 3)]);
        assert!(!report.is_degraded(), "health: {:?}", report.health);
        let merged = report.merge_cell(0).unwrap().unwrap();
        assert_identical(&merged, &reference(3));
    }

    #[test]
    fn cancel_token_stops_the_sweep_with_typed_state() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let (channels, _handles) = spawn_workers(vec![WorkerOptions::default()]);
        let mut coordinator = Coordinator::new(
            channels,
            SweepOptions {
                cancel: Some(cancel),
                ..sweep_options()
            },
        );
        let report = coordinator.run_sweep(vec![shard(0, 0, 2), shard(1, 2, 2)]);
        assert!(report.cancelled);
        assert!(report.is_degraded());
        assert!(report
            .health
            .iter()
            .all(|h| h.state == ShardState::Cancelled));
    }

    #[test]
    fn deadline_bounds_the_sweep() {
        // A worker armed with a fault that sleeps far longer than the
        // sweep deadline: the sweep must return promptly and typed.
        let faults =
            Arc::new(FaultPlan::none(3).with_fault(0, FaultKind::Slow { micros: 30_000_000 }));
        let (channels, _handles) = spawn_workers(vec![WorkerOptions {
            faults: Some(faults),
            ..WorkerOptions::default()
        }]);
        let mut coordinator = Coordinator::new(
            channels,
            SweepOptions {
                deadline: Some(Duration::from_millis(200)),
                drain_grace: Duration::from_millis(100),
                ..sweep_options()
            },
        );
        let started = Instant::now();
        let report = coordinator.run_sweep(vec![shard(0, 0, 1)]);
        assert!(started.elapsed() < Duration::from_secs(10));
        assert!(report.deadline_expired);
        assert_eq!(report.health[0].state, ShardState::DeadlineExpired);
    }

    #[test]
    fn no_workers_means_immediate_quarantine_not_a_hang() {
        let mut coordinator = Coordinator::new(Vec::new(), sweep_options());
        let report = coordinator.run_sweep(vec![shard(0, 0, 2)]);
        assert!(report.is_degraded());
        assert!(matches!(
            report.health[0].state,
            ShardState::Quarantined { .. }
        ));
    }
}
