//! The coordinator↔worker message vocabulary.
//!
//! Every type here is a plain serde-derived DTO: the wire carries
//! per-*batch* indicator snapshots (never pre-merged shard accumulators)
//! because the Chan/Welford merge is not associative in `f64` — only a
//! coordinator-side left-fold in global batch order reproduces the
//! executor's exact fold tree and keeps merged indicators bit-identical
//! to a single-process run. See [`crate::coordinator`].

use diversify_attack::campaign::{CampaignConfig, ThreatModel};
use diversify_core::exec::BatchRecord;
use diversify_core::indicators::IndicatorSnapshot;
use diversify_des::exec::{Budget, BudgetOutcome, CancelToken, PlanError, ReplicationPlan};
use diversify_scada::scope::ScopeConfig;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A [`ReplicationPlan`] in wire form. `first_batch` is what makes a
/// spec a *shard*: seeds derive from global replication indices, so a
/// shard rerun on any worker is bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanSpec {
    /// Batches in this shard.
    pub batches: u32,
    /// Replications per batch.
    pub batch_size: u32,
    /// The sweep's master seed.
    pub master_seed: u64,
    /// Seed-stream namespace.
    pub namespace: u64,
    /// Global index of the shard's first batch.
    pub first_batch: u32,
}

impl PlanSpec {
    /// Captures a plan's wire form.
    #[must_use]
    pub fn from_plan(plan: &ReplicationPlan) -> Self {
        PlanSpec {
            batches: plan.batches(),
            batch_size: plan.batch_size(),
            master_seed: plan.master_seed(),
            namespace: plan.namespace(),
            first_batch: plan.first_batch(),
        }
    }

    /// Rebuilds the plan, validating the spec's arithmetic (a hostile
    /// or corrupted spec must not panic the worker).
    pub fn to_plan(self) -> Result<ReplicationPlan, PlanError> {
        ReplicationPlan::try_new(self.batches, self.batch_size, self.master_seed)?
            .with_namespace(self.namespace)
            .try_with_first_batch(self.first_batch)
    }
}

/// A worker-side [`Budget`] in wire form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BudgetSpec {
    /// Replication ceiling, if any.
    pub max_replications: Option<u32>,
    /// Wall-clock deadline in milliseconds, if any.
    pub deadline_ms: Option<u64>,
}

impl BudgetSpec {
    /// Materializes the budget, wiring in the worker's cancel token so
    /// a coordinator-side cancel stops the shard at the next batch
    /// boundary.
    #[must_use]
    pub fn to_budget(self, cancel: &CancelToken) -> Budget {
        let mut budget = Budget::unlimited().with_cancel(cancel);
        if let Some(max) = self.max_replications {
            budget = budget.with_max_replications(max);
        }
        if let Some(ms) = self.deadline_ms {
            budget = budget.with_deadline(Duration::from_millis(ms));
        }
        budget
    }
}

/// One unit of work: measure one design cell's shard of batches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Index of the design cell this shard belongs to.
    pub cell: u32,
    /// Coordinator-assigned shard id, unique within a sweep.
    pub shard: u32,
    /// The plant configuration to simulate.
    pub scope: ScopeConfig,
    /// The threat model to run against it.
    pub threat: ThreatModel,
    /// Campaign horizon and detection policy.
    pub campaign: CampaignConfig,
    /// The shard's slice of the cell's replication plan.
    pub plan: PlanSpec,
    /// Execution budget for this lease.
    pub budget: BudgetSpec,
}

/// One batch's results: ANOVA counters plus the indicator moments of
/// exactly that batch's replications, in wire form.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchSnapshot {
    /// Per-batch counters (global batch index).
    pub record: BatchRecord,
    /// Indicator moments over the batch's completed replications.
    pub indicators: IndicatorSnapshot,
}

/// A replication that exhausted its retry attempts on the worker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardFailure {
    /// Global replication index.
    pub index: u32,
    /// Attempts consumed.
    pub attempts: u32,
    /// Stringified cause of the last attempt's failure.
    pub message: String,
}

/// Wire form of [`BudgetOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutcomeCode {
    /// The shard ran every batch.
    Completed,
    /// The replication ceiling cut the shard short.
    ReplicationBudget,
    /// The wall-clock deadline expired mid-shard.
    DeadlineExpired,
    /// The coordinator cancelled the shard.
    Cancelled,
}

impl From<BudgetOutcome> for OutcomeCode {
    fn from(outcome: BudgetOutcome) -> Self {
        match outcome {
            // Fixed shard plans have no precision target or stop rule;
            // those outcomes collapse to plain completion.
            BudgetOutcome::Completed | BudgetOutcome::PrecisionMet | BudgetOutcome::RuleCapped => {
                OutcomeCode::Completed
            }
            BudgetOutcome::ReplicationBudget => OutcomeCode::ReplicationBudget,
            BudgetOutcome::DeadlineExpired => OutcomeCode::DeadlineExpired,
            BudgetOutcome::Cancelled => OutcomeCode::Cancelled,
        }
    }
}

/// A worker's report for one shard lease: whatever clean prefix of
/// batches it finished, plus why it stopped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardOutcome {
    /// The shard id this outcome answers.
    pub shard: u32,
    /// Batch-sized rounds executed.
    pub rounds: u32,
    /// Replications attempted.
    pub attempted: u32,
    /// Replications that completed and folded.
    pub completed: u32,
    /// Why the shard stopped.
    pub outcome: OutcomeCode,
    /// Per-batch results in batch order.
    pub batches: Vec<BatchSnapshot>,
    /// Replications that exhausted retries.
    pub failures: Vec<ShardFailure>,
}

/// Coordinator → worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum ToWorker {
    /// Lease a shard to this worker.
    Run {
        /// The work.
        spec: ShardSpec,
    },
    /// Stop the named in-flight shard at the next batch boundary.
    Cancel {
        /// The shard to stop.
        shard: u32,
    },
    /// Drain and exit.
    Shutdown,
}

/// Worker → coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FromWorker {
    /// Liveness beacon while a shard runs; refreshes the lease.
    Heartbeat {
        /// The shard being worked.
        shard: u32,
    },
    /// The lease's result (possibly a truncated clean prefix).
    Done {
        /// The report.
        outcome: ShardOutcome,
    },
    /// The shard execution itself blew up (panic, invalid spec).
    Failed {
        /// The shard that failed.
        shard: u32,
        /// What happened.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_message, encode_message};

    fn sample_spec() -> ShardSpec {
        ShardSpec {
            cell: 3,
            shard: 7,
            scope: ScopeConfig::default(),
            threat: ThreatModel::stuxnet_like(),
            campaign: CampaignConfig {
                max_ticks: 240,
                detection_stops_attack: true,
            },
            plan: PlanSpec {
                batches: 2,
                batch_size: 4,
                master_seed: 0xD1CE,
                namespace: 0x4E_0000,
                first_batch: 6,
            },
            budget: BudgetSpec {
                max_replications: Some(8),
                deadline_ms: Some(5_000),
            },
        }
    }

    #[test]
    fn shard_spec_round_trips_over_the_wire() {
        let msg = ToWorker::Run {
            spec: sample_spec(),
        };
        let frame = encode_message(&msg);
        let back: ToWorker = decode_message(&frame).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn plan_spec_round_trips_through_a_plan() {
        let spec = sample_spec().plan;
        let plan = spec.to_plan().unwrap();
        assert_eq!(PlanSpec::from_plan(&plan), spec);
        assert_eq!(plan.first_replication(), 24);
    }

    #[test]
    fn hostile_plan_spec_is_a_typed_error() {
        let bad = PlanSpec {
            batches: u32::MAX,
            batch_size: u32::MAX,
            master_seed: 0,
            namespace: 0,
            first_batch: u32::MAX,
        };
        assert!(bad.to_plan().is_err());
    }

    #[test]
    fn outcome_codes_collapse_adaptive_variants() {
        assert_eq!(
            OutcomeCode::from(BudgetOutcome::PrecisionMet),
            OutcomeCode::Completed
        );
        assert_eq!(
            OutcomeCode::from(BudgetOutcome::Cancelled),
            OutcomeCode::Cancelled
        );
    }
}
