//! The SCoPE data-center cooling system — the paper's case study, rebuilt
//! as a parameterized, fully closed-loop model.
//!
//! The real system is the cooling plant of the SCoPE computing facility at
//! the Federico II University of Naples; the paper models its
//! *control/monitoring nodes and PLCs*. This module builds:
//!
//! * the **network topology**: office workstations (corporate zone), HMI +
//!   historian + engineering workstation (control-center zone), field
//!   gateways and one PLC per CRAC unit (field zone);
//! * the **physical plant** ([`crate::physics::CoolingPlant`]);
//! * the **control loops**: each PLC reads its rack-group temperature
//!   sensor, runs the proportional cooling program and commands its CRAC
//!   fan actuator.

use crate::components::ComponentProfile;
use crate::device::{Actuator, ActuatorKind, MeasuredQuantity, Sensor};
use crate::network::{NodeId, NodeRole, ScadaNetwork, Zone};
use crate::physics::{CoolingPlant, CracParams, RackParams};
use crate::plc::{cooling_control_program, Plc};
use diversify_des::{RngStream, StreamId};
use serde::{Deserialize, Serialize};

/// Configuration of the SCoPE-like system.
///
/// Serializable so a plant configuration can cross a wire (the serve
/// crate ships it to shard workers) and key content-addressed caches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScopeConfig {
    /// Number of server racks.
    pub racks: usize,
    /// Number of CRAC units (each with its own PLC).
    pub cracs: usize,
    /// Number of corporate office workstations.
    pub office_workstations: usize,
    /// Temperature setpoint, °C.
    pub setpoint: f64,
    /// Alarm threshold, °C.
    pub alarm_threshold: f64,
    /// Control period, seconds.
    pub control_period: f64,
    /// Baseline component profile applied to every node.
    pub baseline_profile: ComponentProfile,
    /// Master seed for sensor noise.
    pub seed: u64,
}

impl Default for ScopeConfig {
    fn default() -> Self {
        ScopeConfig {
            racks: 8,
            cracs: 4,
            office_workstations: 3,
            setpoint: 25.0,
            alarm_threshold: 35.0,
            control_period: 5.0,
            baseline_profile: ComponentProfile::default(),
            seed: 0xC001,
        }
    }
}

/// The assembled system: topology plus the indices tying network nodes to
/// plant equipment.
#[derive(Debug)]
pub struct ScopeSystem {
    config: ScopeConfig,
    network: ScadaNetwork,
    /// PLC node ids, one per CRAC.
    plc_nodes: Vec<NodeId>,
    /// HMI node id.
    hmi: NodeId,
    /// Historian node id.
    historian: NodeId,
    /// Engineering workstation node id.
    engineering: NodeId,
    /// Office workstation node ids.
    office: Vec<NodeId>,
}

impl ScopeSystem {
    /// Builds the topology for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` has zero racks or CRACs.
    #[must_use]
    pub fn build(config: &ScopeConfig) -> Self {
        assert!(
            config.racks > 0 && config.cracs > 0,
            "non-empty plant required"
        );
        let p = config.baseline_profile;
        let mut net = ScadaNetwork::new();

        // Corporate zone.
        let office: Vec<NodeId> = (0..config.office_workstations)
            .map(|i| {
                net.add_node(
                    format!("office-{i}"),
                    NodeRole::OfficeWorkstation,
                    Zone::Corporate,
                    p,
                )
            })
            .collect();

        // Control-center zone.
        let hmi = net.add_node("hmi", NodeRole::Hmi, Zone::ControlCenter, p);
        let historian = net.add_node("historian", NodeRole::Historian, Zone::ControlCenter, p);
        let engineering = net.add_node(
            "engineering",
            NodeRole::EngineeringWorkstation,
            Zone::ControlCenter,
            p,
        );
        net.connect(hmi, historian);
        net.connect(hmi, engineering);
        net.connect(historian, engineering);
        for &o in &office {
            net.connect(o, historian); // business reporting path
        }
        for w in office.windows(2) {
            net.connect(w[0], w[1]); // office LAN chain
        }

        // Field zone: a gateway per pair of CRACs, PLCs behind gateways.
        let gateway_count = config.cracs.div_ceil(2);
        let gateways: Vec<NodeId> = (0..gateway_count)
            .map(|i| {
                let g = net.add_node(
                    format!("gateway-{i}"),
                    NodeRole::FieldGateway,
                    Zone::Field,
                    p,
                );
                net.connect(hmi, g);
                net.connect(engineering, g);
                g
            })
            .collect();
        let plc_nodes: Vec<NodeId> = (0..config.cracs)
            .map(|i| {
                let plc = net.add_node(format!("plc-{i}"), NodeRole::Plc, Zone::Field, p);
                net.connect(gateways[i / 2], plc);
                plc
            })
            .collect();

        ScopeSystem {
            config: config.clone(),
            network: net,
            plc_nodes,
            hmi,
            historian,
            engineering,
            office,
        }
    }

    /// The network topology.
    #[must_use]
    pub fn network(&self) -> &ScadaNetwork {
        &self.network
    }

    /// Mutable topology access (diversity placement rewrites profiles).
    pub fn network_mut(&mut self) -> &mut ScadaNetwork {
        &mut self.network
    }

    /// The configuration this system was built from.
    #[must_use]
    pub fn config(&self) -> &ScopeConfig {
        &self.config
    }

    /// PLC node ids, in CRAC order.
    #[must_use]
    pub fn plc_nodes(&self) -> &[NodeId] {
        &self.plc_nodes
    }

    /// The HMI node.
    #[must_use]
    pub fn hmi(&self) -> NodeId {
        self.hmi
    }

    /// The historian node.
    #[must_use]
    pub fn historian(&self) -> NodeId {
        self.historian
    }

    /// The engineering workstation node.
    #[must_use]
    pub fn engineering(&self) -> NodeId {
        self.engineering
    }

    /// Office workstation nodes.
    #[must_use]
    pub fn office(&self) -> &[NodeId] {
        &self.office
    }

    /// Instantiates the runtime (plant + PLCs + devices) for this system.
    #[must_use]
    pub fn into_runtime(self) -> ScopeRuntime {
        ScopeRuntime::new(self)
    }
}

/// The live closed-loop system: plant physics plus per-CRAC control loops.
#[derive(Debug)]
pub struct ScopeRuntime {
    system: ScopeSystem,
    plant: CoolingPlant,
    plcs: Vec<Plc>,
    sensors: Vec<Sensor>,
    actuators: Vec<Actuator>,
    /// Racks assigned to each CRAC's sensor (round-robin partition).
    rack_groups: Vec<Vec<usize>>,
    rng: RngStream,
    elapsed: f64,
}

impl ScopeRuntime {
    fn new(system: ScopeSystem) -> Self {
        let cfg = system.config.clone();
        let plant = CoolingPlant::new(
            vec![RackParams::default(); cfg.racks],
            vec![CracParams::default(); cfg.cracs],
        );
        let mut plcs = Vec::with_capacity(cfg.cracs);
        let mut sensors = Vec::with_capacity(cfg.cracs);
        let mut actuators = Vec::with_capacity(cfg.cracs);
        let mut rack_groups = vec![Vec::new(); cfg.cracs];
        for (rack, group) in (0..cfg.racks).map(|r| (r, r % cfg.cracs)) {
            rack_groups[group].push(rack);
        }
        for i in 0..cfg.cracs {
            let profile = *system.network.profile(system.plc_nodes[i]);
            let mut plc = Plc::new(i as u8 + 1, profile.plc_firmware);
            plc.install_program(cooling_control_program());
            plc.set_holding(0, (cfg.setpoint * 10.0) as u16)
                .expect("register 0 exists");
            plc.set_holding(3, (cfg.alarm_threshold * 10.0) as u16)
                .expect("register 3 exists");
            plcs.push(plc);
            sensors.push(Sensor::new(
                profile.sensor,
                MeasuredQuantity::Temperature,
                0.2,
            ));
            actuators.push(Actuator::new(ActuatorKind::Fan, 5.0, 40.0, 500.0));
        }
        ScopeRuntime {
            system,
            plant,
            plcs,
            sensors,
            actuators,
            rack_groups,
            rng: RngStream::new(cfg.seed, StreamId(0x5C0)),
            elapsed: 0.0,
        }
    }

    /// The underlying system (topology + config).
    #[must_use]
    pub fn system(&self) -> &ScopeSystem {
        &self.system
    }

    /// The physical plant.
    #[must_use]
    pub fn plant(&self) -> &CoolingPlant {
        &self.plant
    }

    /// Mutable plant access (fault injection: water loss, ambient spikes).
    pub fn plant_mut(&mut self) -> &mut CoolingPlant {
        &mut self.plant
    }

    /// The PLC controlling CRAC `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn plc(&self, i: usize) -> &Plc {
        &self.plcs[i]
    }

    /// Mutable PLC access (attack payload delivery).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn plc_mut(&mut self, i: usize) -> &mut Plc {
        &mut self.plcs[i]
    }

    /// The temperature sensor of CRAC group `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sensor_mut(&mut self, i: usize) -> &mut Sensor {
        &mut self.sensors[i]
    }

    /// The fan actuator of CRAC `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn actuator(&self, i: usize) -> &Actuator {
        &self.actuators[i]
    }

    /// Elapsed plant time, seconds.
    #[must_use]
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Highest rack temperature.
    #[must_use]
    pub fn max_rack_temperature(&self) -> f64 {
        self.plant.max_rack_temperature()
    }

    /// Number of tripped racks.
    #[must_use]
    pub fn tripped_count(&self) -> usize {
        self.plant.tripped_count()
    }

    /// Whether any PLC currently raises its over-temperature alarm.
    #[must_use]
    pub fn any_alarm(&self) -> bool {
        self.plcs.iter().any(|p| p.coil(0).unwrap_or(false))
    }

    /// Runs one control period: sense → scan → actuate → integrate plant.
    pub fn step_control_period(&mut self) {
        let period = self.system.config.control_period;
        for i in 0..self.plcs.len() {
            // Sense: group temperature = max over assigned racks.
            let group_temp = self.rack_groups[i]
                .iter()
                .map(|&r| self.plant.rack_temperature(r))
                .fold(f64::NEG_INFINITY, f64::max);
            let reading = self.sensors[i].read(group_temp, &mut self.rng);
            self.plcs[i]
                .set_input(0, Sensor::to_register(reading))
                .expect("input register 0 exists");
            // Scan the control program.
            self.plcs[i].scan().expect("validated program");
            // Actuate.
            let command = f64::from(self.plcs[i].holding(2).expect("register 2 exists"));
            let position = self.actuators[i].step(command, period);
            self.plant.set_fan_fraction(i, position / 100.0);
        }
        // Integrate plant physics at 1 s within the control period.
        self.plant.run_for(period, 1.0);
        self.elapsed += period;
    }

    /// Runs the closed loop for `duration` seconds of plant time.
    pub fn run_for(&mut self, duration: f64) {
        let mut t = 0.0;
        while t < duration {
            self.step_control_period();
            t += self.system.config.control_period;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plc::sabotage_program;

    #[test]
    fn default_topology_shape() {
        let sys = ScopeSystem::build(&ScopeConfig::default());
        let net = sys.network();
        // 3 office + hmi + historian + engineering + 2 gateways + 4 plcs = 12.
        assert_eq!(net.node_count(), 12);
        assert_eq!(sys.plc_nodes().len(), 4);
        assert_eq!(net.nodes_with_role(NodeRole::Plc).len(), 4);
        assert_eq!(net.nodes_in_zone(Zone::Corporate).len(), 3);
        // Everything reachable from an office workstation (flat routing;
        // firewalls act probabilistically in the attack layer).
        assert_eq!(net.reachable(sys.office()[0]).len(), 12);
    }

    #[test]
    fn closed_loop_holds_temperature() {
        let sys = ScopeSystem::build(&ScopeConfig::default());
        let mut rt = sys.into_runtime();
        rt.run_for(2.0 * 3600.0);
        assert!(
            rt.max_rack_temperature() < 45.0,
            "max {}",
            rt.max_rack_temperature()
        );
        assert_eq!(rt.tripped_count(), 0);
        // Fans actually spun up.
        assert!((0..4).any(|i| rt.actuator(i).position() > 10.0));
    }

    #[test]
    fn sabotaged_plcs_overheat_the_room() {
        let sys = ScopeSystem::build(&ScopeConfig::default());
        let mut rt = sys.into_runtime();
        rt.run_for(600.0); // reach steady operation
        for i in 0..4 {
            rt.plc_mut(i).install_program(sabotage_program());
        }
        rt.run_for(4.0 * 3600.0);
        assert!(
            rt.tripped_count() > 0,
            "sabotage should trip racks, max temp {}",
            rt.max_rack_temperature()
        );
        // The sabotage program also suppresses the PLC alarm coils.
        assert!(!rt.any_alarm());
    }

    #[test]
    fn partial_sabotage_is_less_damaging() {
        let build = || ScopeSystem::build(&ScopeConfig::default()).into_runtime();
        let mut full = build();
        let mut half = build();
        full.run_for(600.0);
        half.run_for(600.0);
        for i in 0..4 {
            full.plc_mut(i).install_program(sabotage_program());
        }
        for i in 0..2 {
            half.plc_mut(i).install_program(sabotage_program());
        }
        full.run_for(3600.0);
        half.run_for(3600.0);
        assert!(full.max_rack_temperature() > half.max_rack_temperature());
    }

    #[test]
    fn spoofed_sensor_masks_overheating() {
        let sys = ScopeSystem::build(&ScopeConfig::default());
        let mut rt = sys.into_runtime();
        rt.run_for(600.0);
        // Spoof every sensor at a cool 22 °C; fans wind down; plant heats.
        for i in 0..4 {
            rt.sensor_mut(i).compromise(22.0);
        }
        rt.run_for(2.0 * 3600.0);
        assert!(rt.max_rack_temperature() > 40.0);
        // Alarms stay silent because PLCs see the spoofed value.
        assert!(!rt.any_alarm());
    }

    #[test]
    fn water_loss_fault_injection() {
        let sys = ScopeSystem::build(&ScopeConfig::default());
        let mut rt = sys.into_runtime();
        rt.run_for(600.0);
        rt.plant_mut().water_availability = 0.0;
        rt.run_for(2.0 * 3600.0);
        assert!(
            rt.max_rack_temperature() > 40.0,
            "no chilled water → overheating"
        );
    }

    #[test]
    fn custom_config_scales_topology() {
        let cfg = ScopeConfig {
            racks: 16,
            cracs: 8,
            office_workstations: 5,
            ..ScopeConfig::default()
        };
        let sys = ScopeSystem::build(&cfg);
        // 5 office + 3 control + 4 gateways + 8 plcs = 20.
        assert_eq!(sys.network().node_count(), 20);
        assert_eq!(sys.plc_nodes().len(), 8);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_cracs_rejected() {
        let cfg = ScopeConfig {
            cracs: 0,
            ..ScopeConfig::default()
        };
        let _ = ScopeSystem::build(&cfg);
    }
}
