//! Fleet-scale plant-family generator.
//!
//! The paper's case study is one plant with tens of nodes; the roadmap
//! north-star is indicator queries over production fleets of 10^5–10^6
//! devices. This module grows the SCoPE plant shape into a **tiered
//! fleet**: `plants → substations → field devices`, deterministically
//! randomized from a seed so any size from 10^2 to 10^6 nodes can be
//! regenerated bit-for-bit.
//!
//! Each plant mirrors the SCoPE layout — an office chain (corporate
//! zone), an HMI/historian/engineering triangle (control-center zone),
//! and per-substation field gateways fronting PLC stars (field zone).
//! Substation PLC counts are jittered around the configured mean and
//! plants are joined in a historian WAN ring, so generated fleets are a
//! *family* of related-but-distinct topologies rather than one stamped
//! pattern.
//!
//! ```
//! use diversify_scada::fleet::{FleetConfig, FleetSystem};
//!
//! let fleet = FleetSystem::build(&FleetConfig::sized(1_000, 7));
//! let n = fleet.network().node_count();
//! assert!((900..=1_100).contains(&n));
//! // Same seed, same fleet.
//! let again = FleetSystem::build(&FleetConfig::sized(1_000, 7));
//! assert_eq!(again.network().node_count(), n);
//! ```

use crate::components::ComponentProfile;
use crate::network::{NodeId, NodeRole, ScadaNetwork, Zone};
use diversify_des::{RngStream, StreamId};

/// RNG stream id for fleet topology generation.
const FLEET_STREAM: StreamId = StreamId(0xF1EE);

/// Configuration of a tiered plant fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of plants in the fleet.
    pub plants: usize,
    /// Substations (field gateways) per plant.
    pub substations_per_plant: usize,
    /// Mean PLCs per substation (jittered ±1 per substation).
    pub plcs_per_substation: usize,
    /// Office workstations per plant.
    pub offices_per_plant: usize,
    /// Master seed for the topology jitter.
    pub seed: u64,
    /// Baseline component profile applied to every node.
    pub baseline_profile: ComponentProfile,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            plants: 1,
            substations_per_plant: 10,
            plcs_per_substation: 8,
            offices_per_plant: 2,
            seed: 0xF1EE7,
            baseline_profile: ComponentProfile::default(),
        }
    }
}

impl FleetConfig {
    /// A configuration whose generated fleet has approximately
    /// `target_nodes` nodes (within a few percent — substation PLC
    /// counts are seed-jittered). Valid from about 10^2 up to 10^6
    /// nodes: small targets shrink to a single plant, large targets add
    /// ~95-node plants.
    ///
    /// # Panics
    ///
    /// Panics if `target_nodes` is zero.
    #[must_use]
    pub fn sized(target_nodes: usize, seed: u64) -> Self {
        assert!(target_nodes > 0, "fleet must have at least one node");
        let base = FleetConfig {
            seed,
            ..FleetConfig::default()
        };
        // Split the target across ~95-node plants, then refit the
        // substation count so plants × plant-size lands on the target.
        let per_plant = base.nodes_per_plant_estimate();
        let plants = (target_nodes / per_plant).max(1);
        let overhead = base.offices_per_plant + 3;
        let per_substation = 1 + base.plcs_per_substation;
        let plant_target = target_nodes / plants;
        let substations =
            (plant_target.saturating_sub(overhead) + per_substation / 2) / per_substation;
        FleetConfig {
            plants,
            substations_per_plant: substations.max(1),
            ..base
        }
    }

    /// Expected node count of one plant (before jitter).
    #[must_use]
    pub fn nodes_per_plant_estimate(&self) -> usize {
        self.offices_per_plant + 3 + self.substations_per_plant * (1 + self.plcs_per_substation)
    }

    /// Expected node count of the whole fleet (before jitter).
    #[must_use]
    pub fn node_estimate(&self) -> usize {
        self.plants * self.nodes_per_plant_estimate()
    }
}

/// Node ids of one generated plant.
#[derive(Debug, Clone)]
pub struct PlantNodes {
    /// Office workstations (corporate zone).
    pub offices: Vec<NodeId>,
    /// Operator HMI.
    pub hmi: NodeId,
    /// Process historian (WAN ring endpoint).
    pub historian: NodeId,
    /// Engineering workstation.
    pub engineering: NodeId,
    /// Field gateways, one per substation.
    pub gateways: Vec<NodeId>,
    /// PLCs, grouped per substation in gateway order.
    pub plcs: Vec<NodeId>,
}

/// A generated fleet: the network plus per-plant node indexes.
#[derive(Debug, Clone)]
pub struct FleetSystem {
    config: FleetConfig,
    network: ScadaNetwork,
    plants: Vec<PlantNodes>,
}

impl FleetSystem {
    /// Generates the fleet for `config`. Deterministic: identical
    /// configurations (including the seed) yield identical networks.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero plants or substations.
    #[must_use]
    pub fn build(config: &FleetConfig) -> Self {
        assert!(
            config.plants > 0 && config.substations_per_plant > 0,
            "non-empty fleet required"
        );
        let p = config.baseline_profile;
        let mut rng = RngStream::new(config.seed, FLEET_STREAM);
        let mut net = ScadaNetwork::new();
        let mut plants = Vec::with_capacity(config.plants);

        for plant in 0..config.plants {
            // Corporate zone: office LAN chain, reporting into the
            // historian below.
            let offices: Vec<NodeId> = (0..config.offices_per_plant)
                .map(|i| {
                    net.add_node(
                        format!("p{plant}-office-{i}"),
                        NodeRole::OfficeWorkstation,
                        Zone::Corporate,
                        p,
                    )
                })
                .collect();
            for w in offices.windows(2) {
                net.connect(w[0], w[1]);
            }

            // Control-center zone: the SCoPE triangle.
            let hmi = net.add_node(
                format!("p{plant}-hmi"),
                NodeRole::Hmi,
                Zone::ControlCenter,
                p,
            );
            let historian = net.add_node(
                format!("p{plant}-historian"),
                NodeRole::Historian,
                Zone::ControlCenter,
                p,
            );
            let engineering = net.add_node(
                format!("p{plant}-engineering"),
                NodeRole::EngineeringWorkstation,
                Zone::ControlCenter,
                p,
            );
            net.connect(hmi, historian);
            net.connect(hmi, engineering);
            net.connect(historian, engineering);
            for &o in &offices {
                net.connect(o, historian);
            }

            // Field zone: per substation, a gateway fronting a PLC star.
            // PLC counts jitter ±1 around the configured mean so plants
            // differ; every gateway keeps supervisory links to the HMI
            // and the engineering workstation (project downloads).
            let mut gateways = Vec::with_capacity(config.substations_per_plant);
            let mut plcs = Vec::new();
            for sub in 0..config.substations_per_plant {
                let gw = net.add_node(
                    format!("p{plant}-gw-{sub}"),
                    NodeRole::FieldGateway,
                    Zone::Field,
                    p,
                );
                net.connect(hmi, gw);
                net.connect(engineering, gw);
                let jitter = rng.index(3); // 0, 1 or 2 → -1, 0 or +1
                let count = (config.plcs_per_substation + jitter)
                    .saturating_sub(1)
                    .max(1);
                for i in 0..count {
                    let plc = net.add_node(
                        format!("p{plant}-plc-{sub}-{i}"),
                        NodeRole::Plc,
                        Zone::Field,
                        p,
                    );
                    net.connect(gw, plc);
                    plcs.push(plc);
                }
                gateways.push(gw);
            }
            // Occasional redundant backbone between adjacent substations.
            for pair in gateways.windows(2) {
                if rng.bernoulli(0.3) {
                    net.connect(pair[0], pair[1]);
                }
            }

            plants.push(PlantNodes {
                offices,
                hmi,
                historian,
                engineering,
                gateways,
                plcs,
            });
        }

        // Fleet WAN: historian ring (closed only when it adds a new edge).
        for pair in plants.windows(2) {
            net.connect(pair[0].historian, pair[1].historian);
        }
        if plants.len() > 2 {
            net.connect(plants[plants.len() - 1].historian, plants[0].historian);
        }

        FleetSystem {
            config: config.clone(),
            network: net,
            plants,
        }
    }

    /// The generated network.
    #[must_use]
    pub fn network(&self) -> &ScadaNetwork {
        &self.network
    }

    /// Mutable network access (diversity placement rewrites profiles).
    pub fn network_mut(&mut self) -> &mut ScadaNetwork {
        &mut self.network
    }

    /// The configuration this fleet was generated from.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Per-plant node indexes, in generation order.
    #[must_use]
    pub fn plants(&self) -> &[PlantNodes] {
        &self.plants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_fleet_matches_estimate_closely() {
        let cfg = FleetConfig::default();
        let fleet = FleetSystem::build(&cfg);
        let n = fleet.network().node_count();
        let est = cfg.node_estimate();
        // Jitter is ±1 PLC per substation.
        assert!(n.abs_diff(est) <= cfg.plants * cfg.substations_per_plant);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = FleetConfig::sized(2_000, 42);
        let a = FleetSystem::build(&cfg);
        let b = FleetSystem::build(&cfg);
        assert_eq!(a.network().node_count(), b.network().node_count());
        assert_eq!(a.network().link_count(), b.network().link_count());
        for id in a.network().node_ids() {
            assert_eq!(a.network().neighbors(id), b.network().neighbors(id));
            assert_eq!(a.network().role(id), b.network().role(id));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FleetSystem::build(&FleetConfig::sized(2_000, 1));
        let b = FleetSystem::build(&FleetConfig::sized(2_000, 2));
        // Same tier counts, different jitter → different link/node totals
        // (overwhelmingly likely; both are deterministic).
        assert!(
            a.network().node_count() != b.network().node_count()
                || a.network().link_count() != b.network().link_count()
        );
    }

    #[test]
    fn sized_hits_targets_across_four_decades() {
        for &target in &[100usize, 1_000, 10_000, 100_000] {
            let fleet = FleetSystem::build(&FleetConfig::sized(target, 9));
            let n = fleet.network().node_count();
            let err = n.abs_diff(target) as f64 / target as f64;
            assert!(
                err < 0.15,
                "sized({target}) produced {n} nodes ({err:.0} rel err)"
            );
        }
    }

    #[test]
    fn fleet_is_connected_and_zoned() {
        let fleet = FleetSystem::build(&FleetConfig::sized(1_000, 3));
        let net = fleet.network();
        let entry = fleet.plants()[0].offices[0];
        assert_eq!(net.reachable(entry).len(), net.node_count());
        assert!(!net.nodes_in_zone(Zone::Corporate).is_empty());
        assert!(!net.nodes_in_zone(Zone::ControlCenter).is_empty());
        assert!(!net.nodes_in_zone(Zone::Field).is_empty());
        // Every plant contributes an entry point and PLCs.
        for plant in fleet.plants() {
            assert!(net.role(plant.offices[0]).is_entry_point());
            assert!(!plant.plcs.is_empty());
        }
    }

    #[test]
    fn plc_population_dominates_at_scale() {
        let fleet = FleetSystem::build(&FleetConfig::sized(10_000, 5));
        let net = fleet.network();
        let plcs = net.nodes_with_role(NodeRole::Plc).len();
        assert!(
            plcs * 2 > net.node_count(),
            "field devices should be the majority: {plcs} of {}",
            net.node_count()
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_plants_rejected() {
        let cfg = FleetConfig {
            plants: 0,
            ..FleetConfig::default()
        };
        let _ = FleetSystem::build(&cfg);
    }
}
