//! Diversifiable HW/SW component classes and variants.
//!
//! The paper proposes diversifying *"the variety of monitoring and control
//! hardware/software components (e.g., sensors, actuators, OSs, PLCs
//! management tools)"*. Each enum below is one **component class**; its
//! variants are the alternatives an operator could deploy. Every variant
//! carries an **attack-resilience score** in `[0, 1]`: the probability
//! that a generic exploit step against that component class *fails* on
//! this variant. Scores are synthetic (the paper itself derives them from
//! attack history, honeypots *or sensitivity analysis* — we use the latter
//! and sweep them in experiment R5).

use crate::protocol::dialect::ProtocolDialect;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Operating system deployed on control/monitoring nodes.
///
/// Stuxnet's Windows zero-days motivate the spread of scores: the worm
/// model's node-compromise stages are far more effective against the
/// legacy-Windows monoculture than against hardened or non-Windows
/// variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum OsVariant {
    /// Legacy Windows workstation OS (the Stuxnet target environment).
    WindowsLegacy,
    /// Patched/modern Windows.
    WindowsModern,
    /// General-purpose Linux distribution.
    Linux,
    /// Hardened minimal RTOS build.
    HardenedRtos,
}

impl OsVariant {
    /// All variants, for catalogs and DoE factor levels.
    pub const ALL: [OsVariant; 4] = [
        OsVariant::WindowsLegacy,
        OsVariant::WindowsModern,
        OsVariant::Linux,
        OsVariant::HardenedRtos,
    ];

    /// Attack-resilience score in `[0, 1]`.
    #[must_use]
    pub fn resilience(self) -> f64 {
        match self {
            OsVariant::WindowsLegacy => 0.10,
            OsVariant::WindowsModern => 0.45,
            OsVariant::Linux => 0.60,
            OsVariant::HardenedRtos => 0.90,
        }
    }
}

/// PLC firmware family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum PlcFirmware {
    /// The dominant vendor's stock firmware (Stuxnet's reprogramming
    /// target).
    VendorAStock,
    /// The dominant vendor's firmware with signed-logic updates.
    VendorASigned,
    /// A second vendor's firmware (different toolchain, different bugs).
    VendorB,
    /// Formally verified safety-certified firmware.
    Verified,
}

impl PlcFirmware {
    /// All variants.
    pub const ALL: [PlcFirmware; 4] = [
        PlcFirmware::VendorAStock,
        PlcFirmware::VendorASigned,
        PlcFirmware::VendorB,
        PlcFirmware::Verified,
    ];

    /// Attack-resilience score in `[0, 1]`.
    #[must_use]
    pub fn resilience(self) -> f64 {
        match self {
            PlcFirmware::VendorAStock => 0.05,
            PlcFirmware::VendorASigned => 0.55,
            PlcFirmware::VendorB => 0.50,
            PlcFirmware::Verified => 0.95,
        }
    }
}

/// Perimeter / zone-boundary firewall policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum FirewallPolicy {
    /// Flat network, permit-all (common brownfield reality).
    Permissive,
    /// Zone separation with service allow-lists.
    Standard,
    /// Unidirectional gateway / data diode toward the field network.
    Strict,
}

impl FirewallPolicy {
    /// All variants.
    pub const ALL: [FirewallPolicy; 3] = [
        FirewallPolicy::Permissive,
        FirewallPolicy::Standard,
        FirewallPolicy::Strict,
    ];

    /// Probability that a lateral-movement attempt across this boundary is
    /// blocked.
    #[must_use]
    pub fn block_probability(self) -> f64 {
        match self {
            FirewallPolicy::Permissive => 0.02,
            FirewallPolicy::Standard => 0.55,
            FirewallPolicy::Strict => 0.92,
        }
    }
}

/// Field-sensor vendor/family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum SensorVendor {
    /// Commodity sensor with no signal authentication.
    Commodity,
    /// Sensor with plausibility self-checks.
    SelfChecking,
    /// Authenticated sensor (signed measurements).
    Authenticated,
}

impl SensorVendor {
    /// All variants.
    pub const ALL: [SensorVendor; 3] = [
        SensorVendor::Commodity,
        SensorVendor::SelfChecking,
        SensorVendor::Authenticated,
    ];

    /// Probability that a spoofed measurement is detected per monitoring
    /// interval.
    #[must_use]
    pub fn spoof_detection(self) -> f64 {
        match self {
            SensorVendor::Commodity => 0.01,
            SensorVendor::SelfChecking => 0.25,
            SensorVendor::Authenticated => 0.80,
        }
    }
}

/// Historian / HMI software stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum HistorianStack {
    /// The dominant commercial SCADA suite (Stuxnet exploited its
    /// hard-coded database credentials).
    CommercialSuite,
    /// An alternative commercial stack.
    AlternativeSuite,
    /// An open-source stack with anomaly detection plug-ins.
    OpenTelemetry,
}

impl HistorianStack {
    /// All variants.
    pub const ALL: [HistorianStack; 3] = [
        HistorianStack::CommercialSuite,
        HistorianStack::AlternativeSuite,
        HistorianStack::OpenTelemetry,
    ];

    /// Probability that anomalous control traffic is flagged per
    /// monitoring interval.
    #[must_use]
    pub fn anomaly_detection(self) -> f64 {
        match self {
            HistorianStack::CommercialSuite => 0.05,
            HistorianStack::AlternativeSuite => 0.15,
            HistorianStack::OpenTelemetry => 0.40,
        }
    }
}

/// The component classes a diversity configuration can vary — the paper's
/// experimental *factors*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum ComponentClass {
    /// Node operating system.
    OperatingSystem,
    /// PLC firmware family.
    PlcFirmware,
    /// Fieldbus protocol dialect.
    ProtocolDialect,
    /// Zone-boundary firewall policy.
    Firewall,
    /// Field-sensor vendor.
    Sensor,
    /// Historian/HMI stack.
    Historian,
}

impl ComponentClass {
    /// All component classes, in canonical (DoE factor) order.
    pub const ALL: [ComponentClass; 6] = [
        ComponentClass::OperatingSystem,
        ComponentClass::PlcFirmware,
        ComponentClass::ProtocolDialect,
        ComponentClass::Firewall,
        ComponentClass::Sensor,
        ComponentClass::Historian,
    ];

    /// Short display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ComponentClass::OperatingSystem => "OS",
            ComponentClass::PlcFirmware => "PLC-FW",
            ComponentClass::ProtocolDialect => "Protocol",
            ComponentClass::Firewall => "Firewall",
            ComponentClass::Sensor => "Sensor",
            ComponentClass::Historian => "Historian",
        }
    }
}

impl fmt::Display for ComponentClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The full component configuration of one node — which variant of each
/// relevant class it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ComponentProfile {
    /// Operating system of the node (for field devices: of its gateway).
    pub os: OsVariant,
    /// Firmware, for PLC nodes (ignored elsewhere but kept uniform so
    /// profiles are comparable).
    pub plc_firmware: PlcFirmware,
    /// Fieldbus dialect spoken by the node.
    pub dialect: ProtocolDialect,
    /// Firewall policy enforced at the node's zone boundary.
    pub firewall: FirewallPolicy,
    /// Sensor vendor (for sensing nodes).
    pub sensor: SensorVendor,
    /// Historian stack (for historian/HMI nodes).
    pub historian: HistorianStack,
}

impl Default for ComponentProfile {
    /// The homogeneous "monoculture" baseline the paper argues against:
    /// every node runs the most widespread — and weakest — variant.
    fn default() -> Self {
        ComponentProfile {
            os: OsVariant::WindowsLegacy,
            plc_firmware: PlcFirmware::VendorAStock,
            dialect: ProtocolDialect::Classic,
            firewall: FirewallPolicy::Permissive,
            sensor: SensorVendor::Commodity,
            historian: HistorianStack::CommercialSuite,
        }
    }
}

impl ComponentProfile {
    /// The strongest variant of every class — the "fortress" corner used
    /// as the +1 level in DoE screening.
    #[must_use]
    pub fn hardened() -> Self {
        ComponentProfile {
            os: OsVariant::HardenedRtos,
            plc_firmware: PlcFirmware::Verified,
            dialect: ProtocolDialect::Authenticated,
            firewall: FirewallPolicy::Strict,
            sensor: SensorVendor::Authenticated,
            historian: HistorianStack::OpenTelemetry,
        }
    }

    /// A combined resilience score: mean of the class scores, in `[0,1]`.
    #[must_use]
    pub fn resilience(&self) -> f64 {
        (self.os.resilience()
            + self.plc_firmware.resilience()
            + self.dialect.resilience()
            + self.firewall.block_probability()
            + self.sensor.spoof_detection()
            + self.historian.anomaly_detection())
            / 6.0
    }

    /// How many of the six classes differ between two profiles — the
    /// pairwise diversity distance.
    #[must_use]
    pub fn distance(&self, other: &ComponentProfile) -> u32 {
        u32::from(self.os != other.os)
            + u32::from(self.plc_firmware != other.plc_firmware)
            + u32::from(self.dialect != other.dialect)
            + u32::from(self.firewall != other.firewall)
            + u32::from(self.sensor != other.sensor)
            + u32::from(self.historian != other.historian)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resilience_scores_in_unit_interval() {
        for v in OsVariant::ALL {
            assert!((0.0..=1.0).contains(&v.resilience()));
        }
        for v in PlcFirmware::ALL {
            assert!((0.0..=1.0).contains(&v.resilience()));
        }
        for v in FirewallPolicy::ALL {
            assert!((0.0..=1.0).contains(&v.block_probability()));
        }
        for v in SensorVendor::ALL {
            assert!((0.0..=1.0).contains(&v.spoof_detection()));
        }
        for v in HistorianStack::ALL {
            assert!((0.0..=1.0).contains(&v.anomaly_detection()));
        }
    }

    #[test]
    fn hardened_variants_beat_defaults() {
        let weak = ComponentProfile::default();
        let strong = ComponentProfile::hardened();
        assert!(strong.resilience() > weak.resilience() + 0.3);
    }

    #[test]
    fn monoculture_baseline_is_weakest_os() {
        let base = ComponentProfile::default();
        assert_eq!(base.os, OsVariant::WindowsLegacy);
        for v in OsVariant::ALL {
            assert!(v.resilience() >= base.os.resilience());
        }
    }

    #[test]
    fn distance_counts_differing_classes() {
        let a = ComponentProfile::default();
        assert_eq!(a.distance(&a), 0);
        let mut b = a;
        b.os = OsVariant::Linux;
        assert_eq!(a.distance(&b), 1);
        let h = ComponentProfile::hardened();
        assert_eq!(a.distance(&h), 6);
    }

    #[test]
    fn class_labels_unique() {
        let labels: std::collections::HashSet<&str> =
            ComponentClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), ComponentClass::ALL.len());
    }

    #[test]
    fn profiles_serialize_round_trip() {
        let p = ComponentProfile::hardened();
        let json = serde_json::to_string(&p).unwrap();
        let back: ComponentProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
