//! Error type for the SCADA substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by protocol codecs, PLC execution and system assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScadaError {
    /// A frame was too short or structurally malformed.
    MalformedFrame {
        /// What was wrong.
        what: &'static str,
    },
    /// A frame checksum / authentication tag did not verify.
    IntegrityFailure,
    /// A frame used a function code the decoder does not understand.
    UnknownFunction {
        /// The raw function code byte.
        code: u8,
    },
    /// A frame was encoded in a different protocol dialect.
    DialectMismatch,
    /// A register or coil address was out of the device's address space.
    AddressOutOfRange {
        /// The offending address.
        address: u16,
    },
    /// A PLC program exceeded its per-scan instruction budget.
    ScanBudgetExceeded,
    /// A PLC program referenced an invalid register.
    BadProgram {
        /// Description of the defect.
        what: &'static str,
    },
    /// System assembly referenced an unknown node.
    UnknownNode {
        /// The node index.
        index: usize,
    },
}

impl fmt::Display for ScadaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScadaError::MalformedFrame { what } => write!(f, "malformed frame: {what}"),
            ScadaError::IntegrityFailure => write!(f, "frame integrity check failed"),
            ScadaError::UnknownFunction { code } => {
                write!(f, "unknown function code 0x{code:02x}")
            }
            ScadaError::DialectMismatch => write!(f, "frame encoded in a different dialect"),
            ScadaError::AddressOutOfRange { address } => {
                write!(f, "address {address} out of range")
            }
            ScadaError::ScanBudgetExceeded => write!(f, "plc scan instruction budget exceeded"),
            ScadaError::BadProgram { what } => write!(f, "bad plc program: {what}"),
            ScadaError::UnknownNode { index } => write!(f, "unknown node index {index}"),
        }
    }
}

impl Error for ScadaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_display() {
        let errs = [
            ScadaError::MalformedFrame { what: "short" },
            ScadaError::IntegrityFailure,
            ScadaError::UnknownFunction { code: 0x99 },
            ScadaError::DialectMismatch,
            ScadaError::AddressOutOfRange { address: 9999 },
            ScadaError::ScanBudgetExceeded,
            ScadaError::BadProgram { what: "nope" },
            ScadaError::UnknownNode { index: 4 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_bounds() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<ScadaError>();
    }
}
