//! Thermal model of a data-center cooling plant.
//!
//! A lumped-parameter explicit-Euler model, deliberately simple but with
//! the causal structure that matters for attack experiments:
//!
//! ```text
//!  IT load (kW) ──► rack air temperature ──► room temperature
//!                        ▲                        │
//!                        │ cooling                │
//!  CRAC fans ◄── PLC ◄── sensors ◄────────────────┘
//!      │
//!  chilled-water loop (chiller + pump)
//! ```
//!
//! Disabling CRAC fans (the sabotage payload) makes rack temperatures
//! climb toward the adiabatic limit; the *device impairment* attack goal
//! corresponds to racks exceeding their thermal trip point.

use serde::{Deserialize, Serialize};

/// Parameters of one server rack (a lumped thermal mass).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackParams {
    /// IT heat load, kW.
    pub heat_load_kw: f64,
    /// Thermal capacitance, kJ/°C.
    pub capacitance: f64,
    /// Temperature above which the rack trips / hardware is damaged, °C.
    pub trip_temperature: f64,
}

impl Default for RackParams {
    fn default() -> Self {
        RackParams {
            heat_load_kw: 12.0,
            capacitance: 400.0,
            trip_temperature: 45.0,
        }
    }
}

/// Parameters of one CRAC (computer-room air conditioner) unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CracParams {
    /// Cooling capacity at 100 % fan and nominal chilled-water supply, kW.
    pub capacity_kw: f64,
    /// Chilled-water supply temperature, °C.
    pub water_supply_temp: f64,
}

impl Default for CracParams {
    fn default() -> Self {
        CracParams {
            capacity_kw: 35.0,
            water_supply_temp: 7.0,
        }
    }
}

/// State of one rack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackState {
    /// Rack outlet air temperature, °C.
    pub temperature: f64,
    /// Whether the rack has exceeded its trip temperature at any point.
    pub tripped: bool,
}

/// The cooling plant: `n` racks cooled by `m` CRAC units through a shared
/// room-air node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoolingPlant {
    rack_params: Vec<RackParams>,
    crac_params: Vec<CracParams>,
    racks: Vec<RackState>,
    /// Shared room air temperature, °C.
    room_temperature: f64,
    /// Outside ambient temperature, °C.
    pub ambient: f64,
    /// Per-CRAC fan fraction (0..=1) applied by actuators each step.
    fan_fractions: Vec<f64>,
    /// Chilled-water availability 0..=1 (pump/chiller health).
    pub water_availability: f64,
    elapsed: f64,
}

impl CoolingPlant {
    /// Creates a plant with the given rack and CRAC parameter sets,
    /// starting in a comfortable equilibrium-ish state (all temperatures
    /// at 24 °C).
    #[must_use]
    pub fn new(rack_params: Vec<RackParams>, crac_params: Vec<CracParams>) -> Self {
        let racks = vec![
            RackState {
                temperature: 24.0,
                tripped: false,
            };
            rack_params.len()
        ];
        let n_crac = crac_params.len();
        CoolingPlant {
            rack_params,
            crac_params,
            racks,
            room_temperature: 24.0,
            ambient: 30.0,
            fan_fractions: vec![0.5; n_crac],
            water_availability: 1.0,
            elapsed: 0.0,
        }
    }

    /// Number of racks.
    #[must_use]
    pub fn rack_count(&self) -> usize {
        self.racks.len()
    }

    /// Number of CRAC units.
    #[must_use]
    pub fn crac_count(&self) -> usize {
        self.crac_params.len()
    }

    /// Current temperature of rack `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn rack_temperature(&self, i: usize) -> f64 {
        self.racks[i].temperature
    }

    /// Highest rack temperature.
    #[must_use]
    pub fn max_rack_temperature(&self) -> f64 {
        self.racks
            .iter()
            .map(|r| r.temperature)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Room air temperature.
    #[must_use]
    pub fn room_temperature(&self) -> f64 {
        self.room_temperature
    }

    /// Whether rack `i` has ever tripped.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn rack_tripped(&self, i: usize) -> bool {
        self.racks[i].tripped
    }

    /// Number of tripped racks.
    #[must_use]
    pub fn tripped_count(&self) -> usize {
        self.racks.iter().filter(|r| r.tripped).count()
    }

    /// Sets the fan fraction (0..=1) of CRAC `i` — called by the actuator
    /// layer each control period.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_fan_fraction(&mut self, i: usize, fraction: f64) {
        self.fan_fractions[i] = fraction.clamp(0.0, 1.0);
    }

    /// The current fan fraction of CRAC `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn fan_fraction(&self, i: usize) -> f64 {
        self.fan_fractions[i]
    }

    /// Total plant heat load, kW.
    #[must_use]
    pub fn total_heat_load(&self) -> f64 {
        self.rack_params.iter().map(|r| r.heat_load_kw).sum()
    }

    /// Total cooling power currently delivered, kW.
    #[must_use]
    pub fn cooling_power(&self) -> f64 {
        self.crac_params
            .iter()
            .zip(&self.fan_fractions)
            .map(|(c, &f)| {
                // Capacity derates as room air approaches the water supply
                // temperature (no approach → no heat transfer).
                let approach = (self.room_temperature - c.water_supply_temp).max(0.0);
                let derate = (approach / 17.0).min(1.0); // nominal approach 17 °C
                c.capacity_kw * f * derate * self.water_availability
            })
            .sum()
    }

    /// Simulated time elapsed, seconds.
    #[must_use]
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Advances the plant by `dt` seconds (explicit Euler).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn step(&mut self, dt: f64) {
        assert!(dt > 0.0, "dt must be positive");
        let cooling = self.cooling_power();
        let heat = self.total_heat_load();
        // Room air: heated by racks (via coupling), cooled by CRACs, leaks
        // toward ambient.
        let room_capacitance = 800.0; // kJ/°C
        let rack_coupling = 0.8; // kW/°C per rack
        let leak = 0.15; // kW/°C to ambient
        let mut room_flux = -cooling + leak * (self.ambient - self.room_temperature);
        for (rack, params) in self.racks.iter_mut().zip(&self.rack_params) {
            // Rack: heated by IT load, cooled toward room air.
            let to_room = rack_coupling * (rack.temperature - self.room_temperature);
            let d_rack = (params.heat_load_kw - to_room) / params.capacitance;
            rack.temperature += d_rack * dt;
            room_flux += to_room;
            if rack.temperature >= params.trip_temperature {
                rack.tripped = true;
            }
        }
        // Avoid double counting: the IT heat reaches the room through the
        // rack coupling; `heat` is used only for the energy-balance
        // assertion below.
        debug_assert!(heat >= 0.0);
        self.room_temperature += room_flux / room_capacitance * dt;
        self.elapsed += dt;
    }

    /// Runs the plant for `duration` seconds with a fixed internal step.
    pub fn run_for(&mut self, duration: f64, dt: f64) {
        let mut t = 0.0;
        while t < duration {
            let step = dt.min(duration - t);
            self.step(step.max(1e-6));
            t += step;
        }
    }
}

/// Builds a plant with `racks` identical racks and `cracs` identical CRAC
/// units using default parameters.
#[must_use]
pub fn uniform_plant(racks: usize, cracs: usize) -> CoolingPlant {
    CoolingPlant::new(
        vec![RackParams::default(); racks],
        vec![CracParams::default(); cracs],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plant_reaches_safe_equilibrium_with_cooling() {
        let mut p = uniform_plant(4, 2);
        // 4 × 12 kW = 48 kW load; 2 × 35 kW capacity at full fan covers it.
        for i in 0..p.crac_count() {
            p.set_fan_fraction(i, 1.0);
        }
        p.run_for(4.0 * 3600.0, 1.0);
        assert!(
            p.max_rack_temperature() < 45.0,
            "max temp {}",
            p.max_rack_temperature()
        );
        assert_eq!(p.tripped_count(), 0);
    }

    #[test]
    fn fans_off_overheats_racks() {
        let mut p = uniform_plant(4, 2);
        for i in 0..p.crac_count() {
            p.set_fan_fraction(i, 0.0);
        }
        p.run_for(4.0 * 3600.0, 1.0);
        assert!(
            p.max_rack_temperature() > 45.0,
            "max temp {}",
            p.max_rack_temperature()
        );
        assert_eq!(p.tripped_count(), 4, "all racks trip without cooling");
    }

    #[test]
    fn water_loss_degrades_cooling() {
        let mut with_water = uniform_plant(4, 2);
        let mut without = uniform_plant(4, 2);
        for i in 0..2 {
            with_water.set_fan_fraction(i, 1.0);
            without.set_fan_fraction(i, 1.0);
        }
        without.water_availability = 0.0;
        with_water.run_for(3600.0, 1.0);
        without.run_for(3600.0, 1.0);
        assert!(without.max_rack_temperature() > with_water.max_rack_temperature() + 3.0);
    }

    #[test]
    fn trip_latches() {
        let mut p = uniform_plant(1, 1);
        p.set_fan_fraction(0, 0.0);
        p.run_for(6.0 * 3600.0, 1.0);
        assert!(p.rack_tripped(0));
        // Restore cooling; trip stays latched.
        p.set_fan_fraction(0, 1.0);
        p.run_for(3600.0, 1.0);
        assert!(p.rack_tripped(0));
    }

    #[test]
    fn cooling_power_scales_with_fans() {
        let mut p = uniform_plant(2, 2);
        p.set_fan_fraction(0, 1.0);
        p.set_fan_fraction(1, 1.0);
        let full = p.cooling_power();
        p.set_fan_fraction(0, 0.5);
        p.set_fan_fraction(1, 0.5);
        let half = p.cooling_power();
        assert!((half - full / 2.0).abs() < 1e-9);
    }

    #[test]
    fn accessors_consistent() {
        let p = uniform_plant(3, 2);
        assert_eq!(p.rack_count(), 3);
        assert_eq!(p.crac_count(), 2);
        assert_eq!(p.total_heat_load(), 36.0);
        assert_eq!(p.rack_temperature(0), 24.0);
        assert_eq!(p.room_temperature(), 24.0);
        assert_eq!(p.elapsed(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dt_rejected() {
        uniform_plant(1, 1).step(0.0);
    }

    #[test]
    fn euler_is_stable_at_one_second_step() {
        let mut p = uniform_plant(8, 4);
        for i in 0..4 {
            p.set_fan_fraction(i, 0.8);
        }
        p.run_for(24.0 * 3600.0, 1.0);
        // No numerical explosion.
        assert!(p.max_rack_temperature().is_finite());
        assert!(p.max_rack_temperature() > 0.0);
        assert!(p.max_rack_temperature() < 200.0);
    }
}
