//! # diversify-scada
//!
//! The SCADA substrate of the *Diversify!* (DSN 2013) reproduction: every
//! monitoring-and-control component the paper's case study mentions, built
//! from scratch and instrumented for attack-impact experiments.
//!
//! * [`protocol`] — a Modbus-like fieldbus protocol (frames, function
//!   codes, exceptions) together with **diversified wire dialects**: the
//!   concrete mechanism by which protocol diversity breaks exploit
//!   portability.
//! * [`components`] — the HW/SW component classes the paper proposes to
//!   diversify (operating systems, PLC firmware, firewall policies, sensor
//!   vendors, historian stacks) with per-variant attack-resilience scores.
//! * [`plc`] — programmable logic controllers: register/coil image, a
//!   small instruction-list interpreter and a cyclic scan executive.
//! * [`device`] — field devices: temperature/flow/pressure sensors and
//!   fan/valve/pump actuators, with fault/impairment states.
//! * [`physics`] — the data-center cooling plant (racks → room air → CRAC
//!   units → chilled-water loop) as an explicit-Euler thermal model.
//! * [`network`] — the plant network: structure-of-arrays node state and
//!   a CSR topology (flat neighbor array, precomputed role/zone indexes)
//!   serving reachability and the centrality analysis used for
//!   *strategic* diversity placement.
//! * [`scope`] — a parameterized model of the SCoPE data-center cooling
//!   system (the paper's case study): builds the full topology and wires
//!   PLC control loops to the thermal model.
//! * [`fleet`] — a tiered plant-family generator (plants → substations →
//!   field devices), deterministically seed-randomized and valid from
//!   10^2 to 10^6 nodes, for fleet-scale campaign studies.
//!
//! ## Quick start
//!
//! ```
//! use diversify_scada::scope::{ScopeConfig, ScopeSystem};
//!
//! let system = ScopeSystem::build(&ScopeConfig::default());
//! assert!(system.network().node_count() > 10);
//! // Run the closed control loop for an hour of plant time: temperatures
//! // stay in the safe band.
//! let mut plant = system.into_runtime();
//! plant.run_for(3600.0);
//! assert!(plant.max_rack_temperature() < 45.0);
//! ```

#![warn(missing_docs)]
// The unwrap/expect ban (clippy.toml `disallowed-methods`) is the
// fault-tolerance discipline of `diversify-des`/`diversify-core`; this
// crate predates it and is exercised through those hardened seams.
#![allow(clippy::disallowed_methods)]

pub mod components;
pub mod device;
pub mod error;
pub mod fleet;
pub mod network;
pub mod physics;
pub mod plc;
pub mod protocol;
pub mod scope;

pub use components::{
    ComponentClass, ComponentProfile, FirewallPolicy, HistorianStack, OsVariant, PlcFirmware,
    SensorVendor,
};
pub use error::ScadaError;
pub use fleet::{FleetConfig, FleetSystem};
pub use network::{LinkId, NodeId, NodeRole, ScadaNetwork, Topology, Zone};
pub use protocol::dialect::ProtocolDialect;
