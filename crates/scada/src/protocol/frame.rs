//! Dialect-independent protocol data units (PDUs).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Function codes of the fieldbus protocol (a Modbus-compatible subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum FunctionCode {
    /// Read a contiguous block of coils (discrete outputs).
    ReadCoils = 0x01,
    /// Read discrete inputs.
    ReadDiscreteInputs = 0x02,
    /// Read holding registers.
    ReadHoldingRegisters = 0x03,
    /// Read input registers.
    ReadInputRegisters = 0x04,
    /// Write a single coil.
    WriteSingleCoil = 0x05,
    /// Write a single holding register.
    WriteSingleRegister = 0x06,
    /// Write multiple holding registers.
    WriteMultipleRegisters = 0x10,
    /// Vendor-specific: download a new logic program to the PLC. This is
    /// the function Stuxnet-style payloads abuse.
    DownloadLogic = 0x5A,
}

impl FunctionCode {
    /// Parses a raw function-code byte.
    #[must_use]
    pub fn from_byte(b: u8) -> Option<FunctionCode> {
        match b {
            0x01 => Some(FunctionCode::ReadCoils),
            0x02 => Some(FunctionCode::ReadDiscreteInputs),
            0x03 => Some(FunctionCode::ReadHoldingRegisters),
            0x04 => Some(FunctionCode::ReadInputRegisters),
            0x05 => Some(FunctionCode::WriteSingleCoil),
            0x06 => Some(FunctionCode::WriteSingleRegister),
            0x10 => Some(FunctionCode::WriteMultipleRegisters),
            0x5A => Some(FunctionCode::DownloadLogic),
            _ => None,
        }
    }

    /// The raw byte value.
    #[must_use]
    pub fn as_byte(self) -> u8 {
        self as u8
    }

    /// Whether this function mutates device state.
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(
            self,
            FunctionCode::WriteSingleCoil
                | FunctionCode::WriteSingleRegister
                | FunctionCode::WriteMultipleRegisters
                | FunctionCode::DownloadLogic
        )
    }
}

/// Protocol exception codes returned in error responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum ExceptionCode {
    /// The function code is not supported.
    IllegalFunction = 0x01,
    /// The data address is invalid for the device.
    IllegalDataAddress = 0x02,
    /// The request payload value is invalid.
    IllegalDataValue = 0x03,
    /// The device failed while executing the request.
    DeviceFailure = 0x04,
    /// The request was rejected by an access-control check (dialect C).
    AccessDenied = 0x0A,
}

impl ExceptionCode {
    /// Parses a raw exception byte.
    #[must_use]
    pub fn from_byte(b: u8) -> Option<ExceptionCode> {
        match b {
            0x01 => Some(ExceptionCode::IllegalFunction),
            0x02 => Some(ExceptionCode::IllegalDataAddress),
            0x03 => Some(ExceptionCode::IllegalDataValue),
            0x04 => Some(ExceptionCode::DeviceFailure),
            0x0A => Some(ExceptionCode::AccessDenied),
            _ => None,
        }
    }
}

impl fmt::Display for ExceptionCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExceptionCode::IllegalFunction => "illegal function",
            ExceptionCode::IllegalDataAddress => "illegal data address",
            ExceptionCode::IllegalDataValue => "illegal data value",
            ExceptionCode::DeviceFailure => "device failure",
            ExceptionCode::AccessDenied => "access denied",
        };
        f.write_str(s)
    }
}

/// A request PDU.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Request {
    /// Read `count` coils starting at `address`.
    ReadCoils {
        /// First coil address.
        address: u16,
        /// Number of coils (1..=2000).
        count: u16,
    },
    /// Read `count` holding registers starting at `address`.
    ReadHoldingRegisters {
        /// First register address.
        address: u16,
        /// Number of registers (1..=125).
        count: u16,
    },
    /// Read `count` input registers starting at `address`.
    ReadInputRegisters {
        /// First register address.
        address: u16,
        /// Number of registers (1..=125).
        count: u16,
    },
    /// Set a single coil.
    WriteSingleCoil {
        /// Coil address.
        address: u16,
        /// Desired state.
        value: bool,
    },
    /// Write a single holding register.
    WriteSingleRegister {
        /// Register address.
        address: u16,
        /// New value.
        value: u16,
    },
    /// Write several holding registers.
    WriteMultipleRegisters {
        /// First register address.
        address: u16,
        /// Values to write.
        values: Vec<u16>,
    },
    /// Replace the PLC logic program (vendor extension, abused by the
    /// Stuxnet-like payload).
    DownloadLogic {
        /// Opaque program image.
        image: Vec<u8>,
    },
}

impl Request {
    /// The function code of this request.
    #[must_use]
    pub fn function(&self) -> FunctionCode {
        match self {
            Request::ReadCoils { .. } => FunctionCode::ReadCoils,
            Request::ReadHoldingRegisters { .. } => FunctionCode::ReadHoldingRegisters,
            Request::ReadInputRegisters { .. } => FunctionCode::ReadInputRegisters,
            Request::WriteSingleCoil { .. } => FunctionCode::WriteSingleCoil,
            Request::WriteSingleRegister { .. } => FunctionCode::WriteSingleRegister,
            Request::WriteMultipleRegisters { .. } => FunctionCode::WriteMultipleRegisters,
            Request::DownloadLogic { .. } => FunctionCode::DownloadLogic,
        }
    }
}

/// A response PDU.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Response {
    /// Coil states, one bool per requested coil.
    Coils(Vec<bool>),
    /// Register values.
    Registers(Vec<u16>),
    /// Acknowledgement of a write.
    WriteAck {
        /// Echoed address.
        address: u16,
        /// Number of items written.
        count: u16,
    },
    /// Logic download accepted.
    LogicAccepted,
    /// Protocol exception.
    Exception {
        /// The function that failed.
        function: FunctionCode,
        /// Why it failed.
        code: ExceptionCode,
    },
}

impl Response {
    /// Whether this response signals an exception.
    #[must_use]
    pub fn is_exception(&self) -> bool {
        matches!(self, Response::Exception { .. })
    }
}

/// Either kind of PDU, used by the generic dialect codecs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pdu {
    /// A request PDU.
    Request(Request),
    /// A response PDU.
    Response(Response),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_code_round_trip() {
        for code in [
            FunctionCode::ReadCoils,
            FunctionCode::ReadDiscreteInputs,
            FunctionCode::ReadHoldingRegisters,
            FunctionCode::ReadInputRegisters,
            FunctionCode::WriteSingleCoil,
            FunctionCode::WriteSingleRegister,
            FunctionCode::WriteMultipleRegisters,
            FunctionCode::DownloadLogic,
        ] {
            assert_eq!(FunctionCode::from_byte(code.as_byte()), Some(code));
        }
        assert_eq!(FunctionCode::from_byte(0x7F), None);
    }

    #[test]
    fn write_classification() {
        assert!(FunctionCode::WriteSingleCoil.is_write());
        assert!(FunctionCode::DownloadLogic.is_write());
        assert!(!FunctionCode::ReadCoils.is_write());
        assert!(!FunctionCode::ReadInputRegisters.is_write());
    }

    #[test]
    fn exception_round_trip_and_display() {
        for code in [
            ExceptionCode::IllegalFunction,
            ExceptionCode::IllegalDataAddress,
            ExceptionCode::IllegalDataValue,
            ExceptionCode::DeviceFailure,
            ExceptionCode::AccessDenied,
        ] {
            assert_eq!(ExceptionCode::from_byte(code as u8), Some(code));
            assert!(!code.to_string().is_empty());
        }
        assert_eq!(ExceptionCode::from_byte(0xFF), None);
    }

    #[test]
    fn request_function_mapping() {
        let r = Request::WriteSingleRegister {
            address: 10,
            value: 99,
        };
        assert_eq!(r.function(), FunctionCode::WriteSingleRegister);
        let d = Request::DownloadLogic { image: vec![1, 2] };
        assert_eq!(d.function(), FunctionCode::DownloadLogic);
    }

    #[test]
    fn response_exception_flag() {
        assert!(Response::Exception {
            function: FunctionCode::ReadCoils,
            code: ExceptionCode::IllegalDataAddress
        }
        .is_exception());
        assert!(!Response::Coils(vec![true]).is_exception());
    }
}
