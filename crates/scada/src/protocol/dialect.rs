//! Diversified wire dialects.
//!
//! All dialects carry the same PDUs (see [`crate::protocol::codec`]) but
//! differ in framing — header magic, byte order, integrity mechanism. The
//! point of the diversification is that a *payload crafted for one dialect
//! is rejected by endpoints speaking another*, which converts protocol
//! diversity directly into attack-propagation resistance (experiment R7).

use crate::error::ScadaError;
use crate::protocol::codec::{decode_pdu, encode_pdu};
use crate::protocol::frame::Pdu;
use serde::{Deserialize, Serialize};

/// A wire dialect of the fieldbus protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum ProtocolDialect {
    /// The classic open dialect: plain header, no integrity protection
    /// (Modbus/TCP-like).
    Classic,
    /// Adds a 16-bit additive checksum and flips multi-byte fields to
    /// little-endian.
    Checksummed,
    /// XOR-obfuscated body with a rolling key derived from the header —
    /// not cryptographically strong, but wire-incompatible.
    Obfuscated,
    /// Authenticated dialect: 64-bit keyed tag (FNV-based MAC stand-in)
    /// over the body; endpoints reject unauthenticated frames.
    Authenticated,
}

impl ProtocolDialect {
    /// All dialects, in canonical order.
    pub const ALL: [ProtocolDialect; 4] = [
        ProtocolDialect::Classic,
        ProtocolDialect::Checksummed,
        ProtocolDialect::Obfuscated,
        ProtocolDialect::Authenticated,
    ];

    /// The dialect's header magic byte.
    #[must_use]
    fn magic(self) -> u8 {
        match self {
            ProtocolDialect::Classic => 0xA0,
            ProtocolDialect::Checksummed => 0xB1,
            ProtocolDialect::Obfuscated => 0xC2,
            ProtocolDialect::Authenticated => 0xD3,
        }
    }

    /// Attack-resilience score used in component profiles: the probability
    /// that a generic protocol-level exploit step fails against endpoints
    /// speaking this dialect.
    #[must_use]
    pub fn resilience(self) -> f64 {
        match self {
            ProtocolDialect::Classic => 0.05,
            ProtocolDialect::Checksummed => 0.30,
            ProtocolDialect::Obfuscated => 0.45,
            ProtocolDialect::Authenticated => 0.85,
        }
    }

    /// Encodes a PDU into a wire frame of this dialect.
    #[must_use]
    pub fn encode(self, pdu: &Pdu, key: u64) -> Vec<u8> {
        let body = encode_pdu(pdu);
        let mut out = Vec::with_capacity(body.len() + 12);
        out.push(self.magic());
        out.push(body.len() as u8);
        out.push((body.len() >> 8) as u8);
        match self {
            ProtocolDialect::Classic => {
                out.extend_from_slice(&body);
            }
            ProtocolDialect::Checksummed => {
                // Little-endian byte-swapped body + additive checksum.
                let swapped = swap_pairs(&body);
                let sum = additive_checksum(&swapped);
                out.extend_from_slice(&swapped);
                out.extend_from_slice(&sum.to_le_bytes());
            }
            ProtocolDialect::Obfuscated => {
                let mut k = self.magic() ^ (body.len() as u8);
                for &b in &body {
                    let enc = b ^ k;
                    out.push(enc);
                    k = k.wrapping_mul(31).wrapping_add(7);
                }
            }
            ProtocolDialect::Authenticated => {
                out.extend_from_slice(&body);
                let tag = keyed_tag(&body, key);
                out.extend_from_slice(&tag.to_be_bytes());
            }
        }
        out
    }

    /// Decodes a wire frame of this dialect.
    ///
    /// # Errors
    ///
    /// * [`ScadaError::DialectMismatch`] if the frame's magic byte belongs
    ///   to a different dialect (or is unknown);
    /// * [`ScadaError::IntegrityFailure`] if the checksum/tag fails
    ///   (including authenticated frames under a wrong `key`);
    /// * [`ScadaError::MalformedFrame`] for structural defects.
    pub fn decode(self, frame: &[u8], key: u64) -> Result<Pdu, ScadaError> {
        if frame.len() < 3 {
            return Err(ScadaError::MalformedFrame { what: "too short" });
        }
        if frame[0] != self.magic() {
            return Err(ScadaError::DialectMismatch);
        }
        let len = frame[1] as usize | ((frame[2] as usize) << 8);
        let rest = &frame[3..];
        let body: Vec<u8> = match self {
            ProtocolDialect::Classic => {
                if rest.len() != len {
                    return Err(ScadaError::MalformedFrame {
                        what: "length field mismatch",
                    });
                }
                rest.to_vec()
            }
            ProtocolDialect::Checksummed => {
                if rest.len() != len + 2 {
                    return Err(ScadaError::MalformedFrame {
                        what: "length field mismatch",
                    });
                }
                let (swapped, sum_bytes) = rest.split_at(len);
                let expect = u16::from_le_bytes([sum_bytes[0], sum_bytes[1]]);
                if additive_checksum(swapped) != expect {
                    return Err(ScadaError::IntegrityFailure);
                }
                swap_pairs(swapped)
            }
            ProtocolDialect::Obfuscated => {
                if rest.len() != len {
                    return Err(ScadaError::MalformedFrame {
                        what: "length field mismatch",
                    });
                }
                let mut k = self.magic() ^ (len as u8);
                let mut body = Vec::with_capacity(len);
                for &b in rest {
                    body.push(b ^ k);
                    k = k.wrapping_mul(31).wrapping_add(7);
                }
                body
            }
            ProtocolDialect::Authenticated => {
                if rest.len() != len + 8 {
                    return Err(ScadaError::MalformedFrame {
                        what: "length field mismatch",
                    });
                }
                let (body, tag_bytes) = rest.split_at(len);
                let expect =
                    u64::from_be_bytes(tag_bytes.try_into().expect("split guarantees 8 bytes"));
                if keyed_tag(body, key) != expect {
                    return Err(ScadaError::IntegrityFailure);
                }
                body.to_vec()
            }
        };
        decode_pdu(&body)
    }

    /// Detects the dialect of a raw frame from its magic byte.
    #[must_use]
    pub fn detect(frame: &[u8]) -> Option<ProtocolDialect> {
        let magic = *frame.first()?;
        ProtocolDialect::ALL
            .into_iter()
            .find(|d| d.magic() == magic)
    }
}

impl std::fmt::Display for ProtocolDialect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProtocolDialect::Classic => "classic",
            ProtocolDialect::Checksummed => "checksummed",
            ProtocolDialect::Obfuscated => "obfuscated",
            ProtocolDialect::Authenticated => "authenticated",
        };
        f.write_str(s)
    }
}

/// Swaps adjacent byte pairs (a cheap big↔little-endian shuffle; odd tail
/// byte is kept in place).
fn swap_pairs(bytes: &[u8]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    for chunk in out.chunks_exact_mut(2) {
        chunk.swap(0, 1);
    }
    out
}

/// 16-bit additive checksum.
fn additive_checksum(bytes: &[u8]) -> u16 {
    bytes
        .iter()
        .fold(0u16, |acc, &b| acc.wrapping_add(u16::from(b)))
}

/// FNV-1a based keyed tag (a stand-in for a MAC; the experiments need
/// wire-incompatibility and key-dependence, not cryptographic strength).
fn keyed_tag(bytes: &[u8], key: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ key;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ key.rotate_left(17)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::frame::Request;

    fn sample_pdu() -> Pdu {
        Pdu::Request(Request::WriteMultipleRegisters {
            address: 40_001,
            values: vec![0x1234, 0xABCD, 7],
        })
    }

    #[test]
    fn every_dialect_round_trips() {
        for d in ProtocolDialect::ALL {
            let frame = d.encode(&sample_pdu(), 42);
            let back = d.decode(&frame, 42).unwrap();
            assert_eq!(back, sample_pdu(), "dialect {d}");
        }
    }

    #[test]
    fn cross_dialect_frames_rejected() {
        for enc in ProtocolDialect::ALL {
            for dec in ProtocolDialect::ALL {
                if enc == dec {
                    continue;
                }
                let frame = enc.encode(&sample_pdu(), 1);
                assert!(
                    matches!(dec.decode(&frame, 1), Err(ScadaError::DialectMismatch)),
                    "{enc} frame accepted by {dec} decoder"
                );
            }
        }
    }

    #[test]
    fn authenticated_rejects_wrong_key() {
        let d = ProtocolDialect::Authenticated;
        let frame = d.encode(&sample_pdu(), 0xAAAA);
        assert!(matches!(
            d.decode(&frame, 0xBBBB),
            Err(ScadaError::IntegrityFailure)
        ));
        assert!(d.decode(&frame, 0xAAAA).is_ok());
    }

    #[test]
    fn checksummed_detects_corruption() {
        let d = ProtocolDialect::Checksummed;
        let mut frame = d.encode(&sample_pdu(), 0);
        let idx = frame.len() / 2;
        frame[idx] ^= 0xFF;
        let out = d.decode(&frame, 0);
        assert!(out.is_err(), "corrupted frame accepted: {out:?}");
    }

    #[test]
    fn obfuscated_body_differs_from_classic() {
        let classic = ProtocolDialect::Classic.encode(&sample_pdu(), 0);
        let obf = ProtocolDialect::Obfuscated.encode(&sample_pdu(), 0);
        // Bodies (past the 3-byte header) must differ even for equal PDUs.
        assert_ne!(&classic[3..], &obf[3..]);
    }

    #[test]
    fn detect_identifies_dialects() {
        for d in ProtocolDialect::ALL {
            let frame = d.encode(&sample_pdu(), 9);
            assert_eq!(ProtocolDialect::detect(&frame), Some(d));
        }
        assert_eq!(ProtocolDialect::detect(&[0x00]), None);
        assert_eq!(ProtocolDialect::detect(&[]), None);
    }

    #[test]
    fn resilience_ordering_matches_mechanism_strength() {
        assert!(ProtocolDialect::Classic.resilience() < ProtocolDialect::Checksummed.resilience());
        assert!(
            ProtocolDialect::Checksummed.resilience() < ProtocolDialect::Obfuscated.resilience()
        );
        assert!(
            ProtocolDialect::Obfuscated.resilience() < ProtocolDialect::Authenticated.resilience()
        );
    }

    #[test]
    fn truncated_frames_rejected_by_all() {
        for d in ProtocolDialect::ALL {
            let frame = d.encode(&sample_pdu(), 3);
            for cut in 0..frame.len() {
                assert!(d.decode(&frame[..cut], 3).is_err(), "{d} cut {cut}");
            }
        }
    }
}
