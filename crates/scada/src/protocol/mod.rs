//! The fieldbus protocol: a Modbus-like request/response codec plus
//! diversified wire dialects.
//!
//! The reproduction hint for this paper singles out *protocol-variant
//! diversification* as the feasible concrete mechanism. The design splits
//! cleanly:
//!
//! * [`frame`] — dialect-independent protocol data units ([`frame::Request`],
//!   [`frame::Response`], function codes, exceptions);
//! * [`codec`] — the *semantic* byte encoding of PDUs (shared by all
//!   dialects);
//! * [`dialect`] — the *wire* encodings. Each [`dialect::ProtocolDialect`]
//!   wraps the same PDU bytes differently (header layout, byte order,
//!   checksum, authentication tag). A decoder rejects frames produced by a
//!   different dialect — which is exactly why an exploit payload crafted
//!   for one dialect does not traverse a segment speaking another.

pub mod codec;
pub mod dialect;
pub mod frame;

pub use codec::{decode_pdu, encode_pdu};
pub use dialect::ProtocolDialect;
pub use frame::{ExceptionCode, FunctionCode, Pdu, Request, Response};
