//! Semantic PDU byte encoding, shared by every wire dialect.
//!
//! The encoding mirrors Modbus: one function-code byte followed by a
//! function-specific body. Exception responses set the high bit of the
//! function code.

use crate::error::ScadaError;
use crate::protocol::frame::{ExceptionCode, FunctionCode, Pdu, Request, Response};
use bytes::{Buf, BufMut, BytesMut};

/// Maximum registers in one read/write request (per the Modbus spec).
pub const MAX_REGISTERS: u16 = 125;
/// Maximum coils in one read request.
pub const MAX_COILS: u16 = 2000;
/// Maximum logic-image bytes in a download request.
pub const MAX_LOGIC_IMAGE: usize = 4096;

/// Encodes a PDU into bytes (without any dialect framing).
///
/// The direction is implicit in the caller's dialect framing; requests and
/// responses self-describe through a leading direction byte so the pair
/// `(encode_pdu, decode_pdu)` round-trips unambiguously.
#[must_use]
pub fn encode_pdu(pdu: &Pdu) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(16);
    match pdu {
        Pdu::Request(req) => {
            buf.put_u8(0x00); // direction: request
            encode_request(req, &mut buf);
        }
        Pdu::Response(resp) => {
            buf.put_u8(0x01); // direction: response
            encode_response(resp, &mut buf);
        }
    }
    buf.to_vec()
}

fn encode_request(req: &Request, buf: &mut BytesMut) {
    buf.put_u8(req.function().as_byte());
    match req {
        Request::ReadCoils { address, count }
        | Request::ReadHoldingRegisters { address, count }
        | Request::ReadInputRegisters { address, count } => {
            buf.put_u16(*address);
            buf.put_u16(*count);
        }
        Request::WriteSingleCoil { address, value } => {
            buf.put_u16(*address);
            buf.put_u16(if *value { 0xFF00 } else { 0x0000 });
        }
        Request::WriteSingleRegister { address, value } => {
            buf.put_u16(*address);
            buf.put_u16(*value);
        }
        Request::WriteMultipleRegisters { address, values } => {
            buf.put_u16(*address);
            buf.put_u16(values.len() as u16);
            buf.put_u8((values.len() * 2) as u8);
            for v in values {
                buf.put_u16(*v);
            }
        }
        Request::DownloadLogic { image } => {
            buf.put_u16(image.len() as u16);
            buf.put_slice(image);
        }
    }
}

fn encode_response(resp: &Response, buf: &mut BytesMut) {
    match resp {
        Response::Coils(bits) => {
            buf.put_u8(FunctionCode::ReadCoils.as_byte());
            buf.put_u16(bits.len() as u16);
            let mut byte = 0u8;
            for (i, &b) in bits.iter().enumerate() {
                if b {
                    byte |= 1 << (i % 8);
                }
                if i % 8 == 7 {
                    buf.put_u8(byte);
                    byte = 0;
                }
            }
            if bits.len() % 8 != 0 {
                buf.put_u8(byte);
            }
        }
        Response::Registers(values) => {
            buf.put_u8(FunctionCode::ReadHoldingRegisters.as_byte());
            buf.put_u16(values.len() as u16);
            for v in values {
                buf.put_u16(*v);
            }
        }
        Response::WriteAck { address, count } => {
            buf.put_u8(FunctionCode::WriteSingleRegister.as_byte());
            buf.put_u16(*address);
            buf.put_u16(*count);
        }
        Response::LogicAccepted => {
            buf.put_u8(FunctionCode::DownloadLogic.as_byte());
        }
        Response::Exception { function, code } => {
            buf.put_u8(function.as_byte() | 0x80);
            buf.put_u8(*code as u8);
        }
    }
}

/// Decodes a PDU previously produced by [`encode_pdu`].
///
/// # Errors
///
/// Returns [`ScadaError::MalformedFrame`] for truncated or inconsistent
/// bodies and [`ScadaError::UnknownFunction`] for unrecognized codes.
pub fn decode_pdu(bytes: &[u8]) -> Result<Pdu, ScadaError> {
    let mut buf = bytes;
    if buf.remaining() < 2 {
        return Err(ScadaError::MalformedFrame { what: "too short" });
    }
    let direction = buf.get_u8();
    match direction {
        0x00 => decode_request(&mut buf).map(Pdu::Request),
        0x01 => decode_response(&mut buf).map(Pdu::Response),
        _ => Err(ScadaError::MalformedFrame {
            what: "bad direction byte",
        }),
    }
}

fn need(buf: &&[u8], n: usize) -> Result<(), ScadaError> {
    if buf.remaining() < n {
        Err(ScadaError::MalformedFrame {
            what: "truncated body",
        })
    } else {
        Ok(())
    }
}

fn decode_request(buf: &mut &[u8]) -> Result<Request, ScadaError> {
    let code = buf.get_u8();
    let function = FunctionCode::from_byte(code).ok_or(ScadaError::UnknownFunction { code })?;
    match function {
        FunctionCode::ReadCoils => {
            need(buf, 4)?;
            let address = buf.get_u16();
            let count = buf.get_u16();
            if count == 0 || count > MAX_COILS {
                return Err(ScadaError::MalformedFrame {
                    what: "coil count out of range",
                });
            }
            Ok(Request::ReadCoils { address, count })
        }
        FunctionCode::ReadDiscreteInputs => Err(ScadaError::UnknownFunction { code }),
        FunctionCode::ReadHoldingRegisters | FunctionCode::ReadInputRegisters => {
            need(buf, 4)?;
            let address = buf.get_u16();
            let count = buf.get_u16();
            if count == 0 || count > MAX_REGISTERS {
                return Err(ScadaError::MalformedFrame {
                    what: "register count out of range",
                });
            }
            Ok(if function == FunctionCode::ReadHoldingRegisters {
                Request::ReadHoldingRegisters { address, count }
            } else {
                Request::ReadInputRegisters { address, count }
            })
        }
        FunctionCode::WriteSingleCoil => {
            need(buf, 4)?;
            let address = buf.get_u16();
            let raw = buf.get_u16();
            let value = match raw {
                0xFF00 => true,
                0x0000 => false,
                _ => {
                    return Err(ScadaError::MalformedFrame {
                        what: "bad coil value encoding",
                    })
                }
            };
            Ok(Request::WriteSingleCoil { address, value })
        }
        FunctionCode::WriteSingleRegister => {
            need(buf, 4)?;
            let address = buf.get_u16();
            let value = buf.get_u16();
            Ok(Request::WriteSingleRegister { address, value })
        }
        FunctionCode::WriteMultipleRegisters => {
            need(buf, 5)?;
            let address = buf.get_u16();
            let count = buf.get_u16() as usize;
            let byte_count = buf.get_u8() as usize;
            if count == 0 || count > MAX_REGISTERS as usize || byte_count != count * 2 {
                return Err(ScadaError::MalformedFrame {
                    what: "write-multiple header inconsistent",
                });
            }
            need(buf, byte_count)?;
            let values = (0..count).map(|_| buf.get_u16()).collect();
            Ok(Request::WriteMultipleRegisters { address, values })
        }
        FunctionCode::DownloadLogic => {
            need(buf, 2)?;
            let len = buf.get_u16() as usize;
            if len > MAX_LOGIC_IMAGE {
                return Err(ScadaError::MalformedFrame {
                    what: "logic image too large",
                });
            }
            need(buf, len)?;
            let image = buf[..len].to_vec();
            buf.advance(len);
            Ok(Request::DownloadLogic { image })
        }
    }
}

fn decode_response(buf: &mut &[u8]) -> Result<Response, ScadaError> {
    let code = buf.get_u8();
    if code & 0x80 != 0 {
        let function =
            FunctionCode::from_byte(code & 0x7F).ok_or(ScadaError::UnknownFunction { code })?;
        need(buf, 1)?;
        let ex = buf.get_u8();
        let code = ExceptionCode::from_byte(ex).ok_or(ScadaError::MalformedFrame {
            what: "unknown exception code",
        })?;
        return Ok(Response::Exception { function, code });
    }
    let function = FunctionCode::from_byte(code).ok_or(ScadaError::UnknownFunction { code })?;
    match function {
        FunctionCode::ReadCoils => {
            need(buf, 2)?;
            let count = buf.get_u16() as usize;
            if count > MAX_COILS as usize {
                return Err(ScadaError::MalformedFrame {
                    what: "coil count out of range",
                });
            }
            let bytes_needed = count.div_ceil(8);
            need(buf, bytes_needed)?;
            let mut bits = Vec::with_capacity(count);
            for i in 0..count {
                let byte = buf[i / 8];
                bits.push(byte & (1 << (i % 8)) != 0);
            }
            buf.advance(bytes_needed);
            Ok(Response::Coils(bits))
        }
        FunctionCode::ReadHoldingRegisters => {
            need(buf, 2)?;
            let count = buf.get_u16() as usize;
            if count > MAX_REGISTERS as usize {
                return Err(ScadaError::MalformedFrame {
                    what: "register count out of range",
                });
            }
            need(buf, count * 2)?;
            Ok(Response::Registers(
                (0..count).map(|_| buf.get_u16()).collect(),
            ))
        }
        FunctionCode::WriteSingleRegister => {
            need(buf, 4)?;
            let address = buf.get_u16();
            let count = buf.get_u16();
            Ok(Response::WriteAck { address, count })
        }
        FunctionCode::DownloadLogic => Ok(Response::LogicAccepted),
        _ => Err(ScadaError::UnknownFunction { code }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(pdu: Pdu) {
        let bytes = encode_pdu(&pdu);
        let back = decode_pdu(&bytes).unwrap();
        assert_eq!(pdu, back);
    }

    #[test]
    fn requests_round_trip() {
        round_trip(Pdu::Request(Request::ReadCoils {
            address: 7,
            count: 13,
        }));
        round_trip(Pdu::Request(Request::ReadHoldingRegisters {
            address: 100,
            count: 125,
        }));
        round_trip(Pdu::Request(Request::ReadInputRegisters {
            address: 0,
            count: 1,
        }));
        round_trip(Pdu::Request(Request::WriteSingleCoil {
            address: 3,
            value: true,
        }));
        round_trip(Pdu::Request(Request::WriteSingleCoil {
            address: 3,
            value: false,
        }));
        round_trip(Pdu::Request(Request::WriteSingleRegister {
            address: 42,
            value: 0xBEEF,
        }));
        round_trip(Pdu::Request(Request::WriteMultipleRegisters {
            address: 10,
            values: vec![1, 2, 3, 65535],
        }));
        round_trip(Pdu::Request(Request::DownloadLogic {
            image: vec![0xDE, 0xAD, 0xBE, 0xEF],
        }));
    }

    #[test]
    fn responses_round_trip() {
        round_trip(Pdu::Response(Response::Coils(vec![
            true, false, true, true, false, false, true, false, true,
        ])));
        round_trip(Pdu::Response(Response::Registers(vec![0, 1, 0xFFFF])));
        round_trip(Pdu::Response(Response::WriteAck {
            address: 5,
            count: 2,
        }));
        round_trip(Pdu::Response(Response::LogicAccepted));
        round_trip(Pdu::Response(Response::Exception {
            function: FunctionCode::WriteSingleRegister,
            code: ExceptionCode::IllegalDataAddress,
        }));
    }

    #[test]
    fn truncated_frames_rejected() {
        let bytes = encode_pdu(&Pdu::Request(Request::WriteMultipleRegisters {
            address: 10,
            values: vec![1, 2, 3],
        }));
        for cut in 1..bytes.len() {
            assert!(
                decode_pdu(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn zero_counts_rejected() {
        // Hand-craft a read request with count 0.
        let bytes = [0x00, 0x03, 0x00, 0x00, 0x00, 0x00];
        assert!(decode_pdu(&bytes).is_err());
    }

    #[test]
    fn oversized_counts_rejected() {
        let bytes = [0x00, 0x03, 0x00, 0x00, 0x01, 0x00]; // 256 registers
        assert!(decode_pdu(&bytes).is_err());
    }

    #[test]
    fn bad_direction_rejected() {
        assert!(decode_pdu(&[0x07, 0x03]).is_err());
    }

    #[test]
    fn unknown_function_rejected() {
        assert!(matches!(
            decode_pdu(&[0x00, 0x77, 0, 0, 0, 1]),
            Err(ScadaError::UnknownFunction { code: 0x77 })
        ));
    }

    #[test]
    fn bad_coil_encoding_rejected() {
        // WriteSingleCoil with a value that is neither 0xFF00 nor 0x0000.
        let bytes = [0x00, 0x05, 0x00, 0x01, 0x12, 0x34];
        assert!(decode_pdu(&bytes).is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(decode_pdu(&[]).is_err());
        assert!(decode_pdu(&[0x00]).is_err());
    }
}
